//! Property suite for the shared scan kernels (`storage::kernels`): seeded
//! deterministic loops compare every kernel against the scalar per-point
//! expression it replaced, across degenerate inputs (empty lanes, a single
//! point, chunk-seam lengths, boundary-touching rectangles, zero radii,
//! duplicate points) — and a conformance sweep asserts that the
//! kernel-filtered query paths of **every** index family still return
//! exactly the answers the scalar visitors returned before the SoA rewrite.
//!
//! The kernels promise bit-compatibility with the scalar code (no FMA
//! contraction, same compare expressions), so every distance assertion here
//! is on raw bits, not within an epsilon.

use common::{brute_force, QueryContext};
use datagen::{generate, queries, Distribution};
use geom::{Point, Rect};
use registry::{build_index, IndexConfig, IndexKind};
use storage::kernels::{self, CHUNK};

/// Deterministic 64-bit LCG so the property loops replay identically on
/// every run and platform (no `rand` dependency in the contract tests).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[0, 1)`, 53 mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Random lanes with occasional duplicate points, so boundary cases where
/// several lanes share exact coordinates are exercised.
fn lanes(rng: &mut Lcg, n: usize) -> (Vec<f64>, Vec<f64>, Vec<u64>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && rng.next_usize(8) == 0 {
            let j = rng.next_usize(i);
            xs.push(xs[j]);
            ys.push(ys[j]);
        } else {
            xs.push(rng.next_f64());
            ys.push(rng.next_f64());
        }
    }
    let ids = (0..n as u64).collect();
    (xs, ys, ids)
}

/// Lengths that straddle the chunk seams: empty, single, one under/at/over
/// a mask word, and a multi-chunk length with a ragged tail.
const LENGTHS: [usize; 8] = [0, 1, 2, 63, 64, 65, 100, 2 * CHUNK + 7];

#[test]
fn rect_mask_matches_scalar_containment() {
    let mut rng = Lcg(0xA5A5_0001);
    for &n in LENGTHS.iter().filter(|&&n| n <= CHUNK) {
        for round in 0..40 {
            let (xs, ys, _) = lanes(&mut rng, n);
            let rect = if round % 4 == 0 && n > 0 {
                // Boundary-touching: build the rect FROM sampled points so
                // its edges coincide exactly with lane values (inclusive
                // containment must keep them).
                let a = rng.next_usize(n);
                let b = rng.next_usize(n);
                Rect::new(
                    xs[a].min(xs[b]),
                    ys[a].min(ys[b]),
                    xs[a].max(xs[b]),
                    ys[a].max(ys[b]),
                )
            } else if round % 7 == 0 {
                // Degenerate/empty rectangle: nothing may match.
                Rect::new(0.5, 0.5, 0.4, 0.4)
            } else {
                let (x0, y0) = (rng.next_f64(), rng.next_f64());
                let (x1, y1) = (rng.next_f64(), rng.next_f64());
                Rect::new(x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1))
            };
            let mask = kernels::rect_mask(&xs, &ys, &rect);
            for i in 0..n {
                let expect = rect.contains(&Point::new(xs[i], ys[i]));
                assert_eq!(
                    mask >> i & 1 == 1,
                    expect,
                    "rect_mask lane {i} of {n} disagrees with Rect::contains"
                );
            }
            // No ghost bits past the lane count.
            if n < CHUNK {
                assert_eq!(mask >> n, 0, "rect_mask set bits past lane {n}");
            }
        }
    }
}

#[test]
fn within_mask_matches_scalar_distance_test() {
    let mut rng = Lcg(0xA5A5_0002);
    for &n in LENGTHS.iter().filter(|&&n| n <= CHUNK) {
        for round in 0..40 {
            let (xs, ys, _) = lanes(&mut rng, n);
            let (cx, cy) = (rng.next_f64(), rng.next_f64());
            let r_sq = match round % 5 {
                // Zero radius: only exact coincidences match.
                0 => 0.0,
                // Radius exactly the distance to one sampled point, so the
                // inclusive `<=` boundary is exercised with a live lane.
                1 if n > 0 => {
                    let j = rng.next_usize(n);
                    Point::new(xs[j], ys[j]).dist_sq(&Point::new(cx, cy))
                }
                _ => rng.next_f64() * 0.02,
            };
            let mask = kernels::within_mask(&xs, &ys, cx, cy, r_sq);
            for i in 0..n {
                let dx = xs[i] - cx;
                let dy = ys[i] - cy;
                assert_eq!(
                    mask >> i & 1 == 1,
                    dx * dx + dy * dy <= r_sq,
                    "within_mask lane {i} of {n} disagrees at r_sq={r_sq}"
                );
            }
            if n < CHUNK {
                assert_eq!(mask >> n, 0, "within_mask set bits past lane {n}");
            }
        }
    }
}

#[test]
fn dist_sq_into_is_bitwise_identical_to_scalar() {
    let mut rng = Lcg(0xA5A5_0003);
    for &n in &LENGTHS {
        let (xs, ys, _) = lanes(&mut rng, n);
        let (cx, cy) = (rng.next_f64(), rng.next_f64());
        let c = Point::new(cx, cy);
        let mut out = vec![f64::NAN; n];
        kernels::dist_sq_into(&xs, &ys, cx, cy, &mut out);
        for i in 0..n {
            let scalar = Point::new(xs[i], ys[i]).dist_sq(&c);
            assert_eq!(
                out[i].to_bits(),
                scalar.to_bits(),
                "dist_sq_into lane {i} of {n} is not bit-identical"
            );
        }
    }
}

#[test]
fn min_dist_sq_matches_branchy_reference_in_all_nine_regions() {
    // Scalar reference: the classic branch chain the branchless form
    // replaced.
    fn branchy(rect: &Rect, x: f64, y: f64) -> f64 {
        let dx = if x < rect.min_x {
            rect.min_x - x
        } else if x > rect.max_x {
            x - rect.max_x
        } else {
            0.0
        };
        let dy = if y < rect.min_y {
            rect.min_y - y
        } else if y > rect.max_y {
            y - rect.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    let rect = Rect::new(0.3, 0.4, 0.6, 0.7);
    // One probe in each of the nine regions around/inside the rectangle,
    // plus probes exactly ON each edge and corner.
    let probes = [
        (0.1, 0.2),
        (0.45, 0.2),
        (0.9, 0.2),
        (0.1, 0.55),
        (0.45, 0.55), // inside: must be exactly 0.0
        (0.9, 0.55),
        (0.1, 0.9),
        (0.45, 0.9),
        (0.9, 0.9),
        (0.3, 0.55),
        (0.6, 0.55),
        (0.45, 0.4),
        (0.45, 0.7),
        (0.3, 0.4),
        (0.6, 0.7),
    ];
    for &(x, y) in &probes {
        assert_eq!(
            kernels::min_dist_sq(&rect, x, y).to_bits(),
            branchy(&rect, x, y).to_bits(),
            "MINDIST differs at ({x}, {y})"
        );
    }
    assert_eq!(kernels::min_dist_sq(&rect, 0.45, 0.55), 0.0);

    // And a seeded sweep for good measure.
    let mut rng = Lcg(0xA5A5_0004);
    for _ in 0..500 {
        let (x, y) = (rng.next_f64() * 2.0 - 0.5, rng.next_f64() * 2.0 - 0.5);
        assert_eq!(
            kernels::min_dist_sq(&rect, x, y).to_bits(),
            branchy(&rect, x, y).to_bits()
        );
    }
}

#[test]
fn mbr_of_matches_expand_fold() {
    assert!(kernels::mbr_of(&[], &[]).is_empty());

    let mut rng = Lcg(0xA5A5_0005);
    for &n in LENGTHS.iter().filter(|&&n| n > 0) {
        let (xs, ys, _) = lanes(&mut rng, n);
        let got = kernels::mbr_of(&xs, &ys);
        let mut expect = Rect::empty();
        for i in 0..n {
            expect.expand_to_point(Point::new(xs[i], ys[i]));
        }
        assert_eq!(got, expect, "mbr_of differs from expand fold at n={n}");
    }

    // All-identical lanes: a degenerate point-rectangle.
    let xs = vec![0.25; 10];
    let ys = vec![0.75; 10];
    assert_eq!(kernels::mbr_of(&xs, &ys), Rect::new(0.25, 0.75, 0.25, 0.75));
}

#[test]
fn chunked_filters_emit_scalar_answers_in_lane_order() {
    let mut rng = Lcg(0xA5A5_0006);
    for &n in &LENGTHS {
        let (xs, ys, ids) = lanes(&mut rng, n);
        let rect = Rect::new(0.2, 0.2, 0.7, 0.7);
        let (cx, cy) = (0.4, 0.6);
        let c = Point::new(cx, cy);
        let r_sq = 0.01;

        // for_each_in_rect == scalar filter, in ascending lane order.
        let mut got = Vec::new();
        kernels::for_each_in_rect(&xs, &ys, &ids, &rect, |p| got.push(p.id));
        let expect: Vec<u64> = (0..n)
            .filter(|&i| rect.contains(&Point::new(xs[i], ys[i])))
            .map(|i| ids[i])
            .collect();
        assert_eq!(got, expect, "for_each_in_rect differs at n={n}");

        // for_each_within == scalar filter, distances bit-identical.
        let mut got = Vec::new();
        kernels::for_each_within(&xs, &ys, &ids, cx, cy, r_sq, |p, d| {
            assert_eq!(
                d.to_bits(),
                p.dist_sq(&c).to_bits(),
                "for_each_within handed back a recomputed-differently distance"
            );
            got.push(p.id);
        });
        let expect: Vec<u64> = (0..n)
            .filter(|&i| Point::new(xs[i], ys[i]).dist_sq(&c) <= r_sq)
            .map(|i| ids[i])
            .collect();
        assert_eq!(got, expect, "for_each_within differs at n={n}");

        // for_each_dist_sq visits every lane once, in order, bit-identical.
        let mut visited = Vec::new();
        kernels::for_each_dist_sq(&xs, &ys, &ids, cx, cy, |p, d| {
            assert_eq!(d.to_bits(), p.dist_sq(&c).to_bits());
            visited.push(p.id);
        });
        assert_eq!(visited, ids, "for_each_dist_sq skipped or reordered lanes");
    }
}

#[test]
fn probes_within_matches_scalar_mindist_filter() {
    let mut rng = Lcg(0xA5A5_0007);
    let rect = Rect::new(0.3, 0.3, 0.6, 0.6);
    for &n in &LENGTHS {
        let probes: Vec<Point> = (0..n)
            .map(|i| Point::with_id(rng.next_f64(), rng.next_f64(), i as u64))
            .collect();
        for r_sq in [0.0, 0.005, 0.5] {
            let mut out = vec![Point::new(9.0, 9.0)]; // must be cleared
            kernels::probes_within(&probes, &rect, r_sq, &mut out);
            let expect: Vec<u64> = probes
                .iter()
                .filter(|q| kernels::min_dist_sq(&rect, q.x, q.y) <= r_sq)
                .map(|q| q.id)
                .collect();
            let got: Vec<u64> = out.iter().map(|q| q.id).collect();
            assert_eq!(got, expect, "probes_within differs at n={n} r_sq={r_sq}");
        }
    }
}

/// Conformance invariant over the whole registry: with every query path now
/// routed through the kernel filters, each index family must return exactly
/// the answers the scalar per-point visitors produced before the rewrite —
/// brute force stands in as that scalar oracle.  Distance-range answers are
/// exact for EVERY family; window answers are exact for the families that
/// document exactness and sound (no false positives) for the rest.
#[test]
fn kernel_filtered_query_paths_match_scalar_oracle_for_every_kind() {
    let data = generate(Distribution::skewed_default(), 1_800, 97);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 12, 17);
    let centers = queries::range_query_centers(&data, 12, 19);

    for kind in IndexKind::all_with_sharded() {
        let index = build_index(kind, &data, &IndexConfig::fast());
        let mut cx = QueryContext::new();

        for w in &windows {
            let got = index.window_query(w, &mut cx);
            for p in &got {
                assert!(
                    w.contains(p),
                    "{} kernel window filter leaked a false positive",
                    kind.name()
                );
            }
            if kind.exact_windows() {
                let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
                let mut truth: Vec<u64> = brute_force::window_query(&data, w)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                ids.sort_unstable();
                truth.sort_unstable();
                assert_eq!(
                    ids,
                    truth,
                    "{} window answer drifted from the scalar oracle",
                    kind.name()
                );
            }
        }

        for c in &centers {
            for radius in [0.0, 0.02, 0.05] {
                let mut ids: Vec<u64> = index
                    .range_query(c, radius, &mut cx)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                let mut truth: Vec<u64> = brute_force::range_query(&data, c, radius)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                ids.sort_unstable();
                truth.sort_unstable();
                assert_eq!(
                    ids,
                    truth,
                    "{} range answer drifted from the scalar oracle at r={radius}",
                    kind.name()
                );
            }
        }
    }
}
