//! Partial-rebuild **equivalence properties**: after an arbitrary seeded
//! insert/delete sequence, a twin maintained by [`rebuild_partial`] must
//! answer every query class identically to a twin given a full
//! [`rebuild`] over the same live set — partial maintenance may never
//! change an answer, only reclaim accumulated drift.
//!
//! Three layers are held to the property:
//!
//! * trait-level twins for the exact kinds (RSMIa and its sharded
//!   composition, which routes the maintenance protocol through the
//!   engine's shard aggregation) across all five query classes;
//! * concrete [`Rsmi`] twins through the `*_exact` variants, so the
//!   approximate kind is also held to strict equality on the classes
//!   where it has an exact mode;
//! * widened error bounds stay **sound** (`bounds_violations() == 0`)
//!   under seeded adversarial duplicate inserts, and a partial pass
//!   reclaims all accumulated widening.

use common::{brute_force, MaintenanceBudget, QueryContext, SpatialIndex};
use datagen::{generate, Distribution};
use geom::{Point, Rect};
use registry::{build_index, BaseKind, IndexConfig, IndexKind};
use rsmi::Rsmi;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// One pre-materialised churn op, so every twin replays the exact same
/// sequence.
#[derive(Clone, Copy)]
enum Op {
    Ins(Point),
    Del(Point),
}

/// Generates a seeded 60/40 insert/delete sequence against an evolving
/// live set and returns (ops, final live set, first few deleted points).
/// Deletes never pick id 0: that id is the location-wildcard delete, a
/// separate contract with its own server-side fallback.
fn churn_ops(data: &[Point], n_ops: usize, seed: u64) -> (Vec<Op>, Vec<Point>, Vec<Point>) {
    let mut live: Vec<Point> = data.to_vec();
    let mut ops = Vec::with_capacity(n_ops);
    let mut dead = Vec::new();
    let mut state = seed ^ 0xA5A5_5A5A;
    let mut next_id = 1_000_000 + seed * 10_000;
    while ops.len() < n_ops {
        if lcg(&mut state) % 10 < 6 || live.len() < 10 {
            let anchor = live[(lcg(&mut state) as usize) % live.len()];
            let jitter = |s: u64| (s % 1_000) as f64 / 1_000_000.0 - 0.0005;
            let p = Point::with_id(
                (anchor.x + jitter(lcg(&mut state))).clamp(0.0, 1.0),
                (anchor.y + jitter(lcg(&mut state))).clamp(0.0, 1.0),
                next_id,
            );
            next_id += 1;
            live.push(p);
            ops.push(Op::Ins(p));
        } else {
            let i = (lcg(&mut state) as usize) % live.len();
            if live[i].id == 0 {
                continue;
            }
            let victim = live.swap_remove(i);
            if dead.len() < 16 {
                dead.push(victim);
            }
            ops.push(Op::Del(victim));
        }
    }
    (ops, live, dead)
}

fn sorted_ids(pts: &[Point]) -> Vec<u64> {
    let mut ids: Vec<u64> = pts.iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

/// The query battery: point (live and dead), window, kNN, range and
/// distance join, each compared twin-vs-twin and against the brute-force
/// oracle over the live set.
fn assert_all_classes_equal(
    partial: &dyn SpatialIndex,
    full: &dyn SpatialIndex,
    live: &[Point],
    dead: &[Point],
) {
    let mut cx = QueryContext::new();
    assert_eq!(partial.len(), live.len());
    assert_eq!(full.len(), live.len());

    // Point: every live point findable in both, every deleted one gone.
    for p in live {
        let a = partial.point_query(p, &mut cx).map(|f| f.id);
        let b = full.point_query(p, &mut cx).map(|f| f.id);
        assert_eq!(a, b, "point answer diverged at {p:?}");
        assert_eq!(a, Some(p.id), "live point {p:?} lost");
    }
    for p in dead {
        assert_eq!(partial.point_query(p, &mut cx), None, "dead {p:?} found");
        assert_eq!(full.point_query(p, &mut cx), None, "dead {p:?} found");
    }

    // Window.
    for (cx_c, cy_c, side) in [
        (0.25, 0.25, 0.2),
        (0.5, 0.5, 0.3),
        (0.75, 0.4, 0.15),
        (0.4, 0.8, 0.25),
    ] {
        let w = Rect::centered(cx_c, cy_c, side, side);
        let a = sorted_ids(&partial.window_query(&w, &mut cx));
        let b = sorted_ids(&full.window_query(&w, &mut cx));
        let truth = sorted_ids(&brute_force::window_query(live, &w));
        assert_eq!(a, b, "window {w:?} diverged between twins");
        assert_eq!(a, truth, "window {w:?} diverged from oracle");
    }

    // kNN (ids are unique so the (distance, id) order is total).
    for i in 0..8 {
        let q = live[(i * 97) % live.len()];
        let a: Vec<u64> = partial
            .knn_query(&q, 10, &mut cx)
            .iter()
            .map(|p| p.id)
            .collect();
        let b: Vec<u64> = full
            .knn_query(&q, 10, &mut cx)
            .iter()
            .map(|p| p.id)
            .collect();
        let truth: Vec<u64> = brute_force::knn_query(live, &q, 10)
            .iter()
            .map(|p| p.id)
            .collect();
        assert_eq!(a, b, "kNN at {q:?} diverged between twins");
        assert_eq!(a, truth, "kNN at {q:?} diverged from oracle");
    }

    // Range.
    for i in 0..6 {
        let c = live[(i * 131) % live.len()];
        let a = sorted_ids(&partial.range_query(&c, 0.05, &mut cx));
        let b = sorted_ids(&full.range_query(&c, 0.05, &mut cx));
        let truth = sorted_ids(&brute_force::range_query(live, &c, 0.05));
        assert_eq!(a, b, "range at {c:?} diverged between twins");
        assert_eq!(a, truth, "range at {c:?} diverged from oracle");
    }

    // Distance join against a small probe-side index.
    let probes: Vec<Point> = (0..40).map(|i| live[(i * 53) % live.len()]).collect();
    let other = build_index(IndexKind::Grid, &probes, &IndexConfig::fast());
    let pair_ids = |pairs: Vec<(Point, Point)>| {
        let mut v: Vec<(u64, u64)> = pairs.iter().map(|(l, r)| (l.id, r.id)).collect();
        v.sort_unstable();
        v
    };
    let a = pair_ids(partial.distance_join(other.as_ref(), 0.03, &mut cx));
    let b = pair_ids(full.distance_join(other.as_ref(), 0.03, &mut cx));
    assert_eq!(a, b, "distance-join pairs diverged between twins");
}

/// Trait-level property: for the exact kinds, any churn sequence followed
/// by `rebuild_partial` answers all five query classes identically to the
/// same sequence followed by a full `rebuild`.
#[test]
fn partial_twin_matches_full_rebuild_twin_for_exact_kinds() {
    for kind in [IndexKind::Rsmia, BaseKind::Rsmia.sharded()] {
        for seed in [3u64, 5, 9] {
            let data = generate(Distribution::skewed_default(), 900, seed * 7 + 1);
            let (ops, live, dead) = churn_ops(&data, 300, seed);

            let cfg = IndexConfig::fast();
            let mut partial = build_index(kind, &data, &cfg);
            let mut full = build_index(kind, &data, &cfg);
            for op in &ops {
                match *op {
                    Op::Ins(p) => {
                        partial.insert(p);
                        full.insert(p);
                    }
                    Op::Del(p) => {
                        assert!(partial.delete(&p), "{kind:?}/{seed}: delete missed");
                        assert!(full.delete(&p));
                    }
                }
            }

            let outcome = partial.rebuild_partial(&MaintenanceBudget::default());
            assert!(!outcome.full_rebuild, "{kind:?} fell back to full");
            assert_eq!(
                outcome.subtrees_deferred, 0,
                "unbounded budget deferred work"
            );
            full.rebuild();

            // The default budget retrains every drifted subtree: all
            // accumulated drift is reclaimed.
            let stats = partial.maintenance_stats().expect("maintenance support");
            assert_eq!(
                stats.ops_since_train, 0,
                "{kind:?}/{seed}: drift left behind"
            );
            assert_eq!(stats.stale_subtrees, 0);
            assert_eq!(stats.widened_below + stats.widened_above, 0);

            assert_all_classes_equal(partial.as_ref(), full.as_ref(), &live, &dead);
        }
    }
}

/// Concrete-RSMI property: the approximate kind is held to the same
/// equivalence through its `*_exact` query variants, so the partial pass
/// is proven not to change even the answers the trait surface reports
/// only approximately.
#[test]
fn partial_twin_matches_full_rebuild_twin_on_rsmi_exact_variants() {
    for seed in [11u64, 21] {
        let data = generate(Distribution::skewed_default(), 800, seed + 40);
        let (ops, live, dead) = churn_ops(&data, 260, seed);

        let cfg = IndexConfig::fast().rsmi_config();
        let mut partial = Rsmi::build(data.clone(), cfg);
        let mut full = Rsmi::build(data.clone(), cfg);
        for op in &ops {
            match *op {
                Op::Ins(p) => {
                    partial.insert(p);
                    full.insert(p);
                }
                Op::Del(p) => {
                    assert!(partial.delete(&p));
                    assert!(full.delete(&p));
                }
            }
        }
        let outcome = partial.rebuild_partial(&MaintenanceBudget::default());
        assert!(!outcome.full_rebuild);
        full.rebuild();
        assert_eq!(partial.bounds_violations(), 0);

        let mut cx = QueryContext::new();
        for p in &live {
            assert_eq!(
                partial.point_query(p, &mut cx).map(|f| f.id),
                Some(p.id),
                "live point lost after partial pass"
            );
        }
        for p in &dead {
            assert_eq!(partial.point_query(p, &mut cx), None);
        }
        for (cx_c, cy_c, side) in [(0.3, 0.3, 0.25), (0.6, 0.7, 0.15)] {
            let w = Rect::centered(cx_c, cy_c, side, side);
            let a = sorted_ids(&partial.window_query_exact(&w, &mut cx));
            let b = sorted_ids(&full.window_query_exact(&w, &mut cx));
            let truth = sorted_ids(&brute_force::window_query(&live, &w));
            assert_eq!(a, b, "exact window diverged between twins");
            assert_eq!(a, truth, "exact window diverged from oracle");
        }
        for i in 0..6 {
            let q = live[(i * 89) % live.len()];
            let a: Vec<u64> = partial
                .knn_query_exact(&q, 10, &mut cx)
                .iter()
                .map(|p| p.id)
                .collect();
            let b: Vec<u64> = full
                .knn_query_exact(&q, 10, &mut cx)
                .iter()
                .map(|p| p.id)
                .collect();
            assert_eq!(a, b, "exact kNN diverged between twins");
        }
        for i in 0..4 {
            let c = live[(i * 113) % live.len()];
            let collect = |idx: &Rsmi, cx: &mut QueryContext| {
                let mut out = Vec::new();
                idx.range_query_exact_visit(&c, 0.05, cx, &mut |p| out.push(*p));
                sorted_ids(&out)
            };
            let truth = sorted_ids(&brute_force::range_query(&live, &c, 0.05));
            let a = collect(&partial, &mut cx);
            let b = collect(&full, &mut cx);
            assert_eq!(a, b, "exact range diverged");
            assert_eq!(a, truth);
        }
        let probes: Vec<Point> = (0..30).map(|i| live[(i * 41) % live.len()]).collect();
        let join_pairs = |idx: &Rsmi, cx: &mut QueryContext| {
            let mut v: Vec<(u64, u64)> = Vec::new();
            idx.distance_join_probes_visit(&probes, 0.03, cx, &mut |l, r| {
                v.push((l.id, r.id));
            });
            v.sort_unstable();
            v
        };
        let a = join_pairs(&partial, &mut cx);
        let b = join_pairs(&full, &mut cx);
        assert_eq!(a, b, "join pairs diverged");
    }
}

/// Soundness under adversarial churn: batches of exact-duplicate inserts
/// (the worst case for a leaf model's error bounds) must keep every
/// stored point reachable purely through bound widening, and a partial
/// pass must then reclaim all of the widening without changing answers.
#[test]
fn widened_bounds_stay_sound_under_adversarial_duplicate_inserts() {
    // A regular grid trains tight leaf models (narrow predicted ranges),
    // and a small block capacity makes chains fill quickly — the setting
    // where an insert burst must actually widen bounds to stay sound.
    let side = 30usize;
    let grid: Vec<Point> = (0..side * side)
        .map(|i| {
            Point::with_id(
                ((i / side) as f64 + 0.5) / side as f64,
                ((i % side) as f64 + 0.5) / side as f64,
                i as u64,
            )
        })
        .collect();
    let cfg = IndexConfig::fast()
        .with_block_capacity(16)
        .rsmi_config()
        .with_partition_threshold(300);

    let mut any_widened = false;
    for seed in [31u64, 47, 59] {
        let mut index = Rsmi::build(grid.clone(), cfg);
        let mut cx = QueryContext::new();
        let mut state = seed;
        // A mid-grid anchor, away from the id-0 corner.
        let hot_idx = 200 + (lcg(&mut state) as usize) % 500;
        let hot = grid[hot_idx];

        // Free slots around the hot point's blocks: delete a run of its
        // neighbours in build order.
        let mut live: Vec<Point> = grid.clone();
        for v in grid
            .iter()
            .skip(hot_idx - 10)
            .take(20)
            .filter(|v| v.id != hot.id)
        {
            assert!(index.delete(v), "seed {seed}: ring victim not found");
            live.retain(|q| !(q.same_location(v) && q.id == v.id));
        }

        // Hammer the hot location with near-duplicates — the worst case
        // for the leaf model's error bounds.
        for i in 0..40u64 {
            let p = Point::with_id(
                (hot.x + i as f64 * 1e-6).clamp(0.0, 1.0),
                (hot.y - i as f64 * 1e-6).clamp(0.0, 1.0),
                2_000_000 + i,
            );
            index.insert(p);
            live.push(p);
            assert_eq!(
                index.bounds_violations(),
                0,
                "seed {seed} insert {i}: widening left a point unreachable"
            );
        }
        for p in &live {
            let got = index.point_query(p, &mut cx).expect("live point lost");
            assert!(got.same_location(p));
        }
        let stats = index.maintenance_stats();
        let widened = stats.widened_below + stats.widened_above;
        assert!(widened <= 32 * stats.subtrees as u64, "per-leaf cap broken");
        any_widened |= widened > 0;

        // A partial pass reclaims every widened bound and stays sound.
        index.rebuild_partial(&MaintenanceBudget::default());
        let after = index.maintenance_stats();
        assert_eq!(after.widened_below + after.widened_above, 0);
        assert_eq!(after.ops_since_train, 0);
        assert_eq!(index.bounds_violations(), 0);
        for p in &live {
            assert!(index.point_query(p, &mut cx).is_some());
        }
    }
    // The seeds are fixed, so this is deterministic: at least one of them
    // must actually exercise the widening path or the property is vacuous.
    assert!(any_widened, "no seed ever widened a bound");
}
