//! Snapshot conformance: every registered kind — all seven leaf families
//! and all seven sharded compositions — must round-trip through the
//! versioned binary snapshot format with **byte-identical** query answers
//! and [`QueryStats`] on a shared workload.
//!
//! This is the restart guarantee of the persistence subsystem: save → drop →
//! load serves exactly what the freshly built index served, including the
//! per-query cost accounting, because the snapshot captures the structure
//! (blocks, chain links, overflow flags, model weights, error bounds,
//! directory, shard routing tables) rather than the data.

use bench::{replay_workload, ReplaySpec, WorkloadAnswers};
use common::{QueryContext, SpatialIndex};
use datagen::{generate, Distribution};
use geom::{Point, Rect};
use registry::{build_index, load_index, load_index_bytes, save_index, snapshot_bytes};
use registry::{BaseKind, IndexConfig, IndexKind};

fn cfg() -> IndexConfig {
    IndexConfig::fast().with_shards(3).with_threads(2)
}

/// The CLI gate's replay workload (`bench::replay_workload`), shrunk for
/// test speed — same harness, so tests and the CI gate enforce the same
/// acceptance criterion.
fn run_workload(index: &dyn SpatialIndex, data: &[Point]) -> WorkloadAnswers {
    let spec = ReplaySpec {
        point_queries: 60,
        window_queries: 15,
        knn_queries: 10,
        k: 8,
    };
    replay_workload(index, data, &spec)
}

fn roundtrip_body(kind: IndexKind) {
    let data = generate(Distribution::skewed_default(), 1_200, 83);
    let built = build_index(kind, &data, &cfg());
    let before = run_workload(built.as_ref(), &data);

    let bytes = snapshot_bytes(built.as_ref())
        .unwrap_or_else(|e| panic!("{} failed to serialise: {e}", kind.name()));
    drop(built); // the loaded index must stand entirely on its own

    let loaded =
        load_index_bytes(&bytes).unwrap_or_else(|e| panic!("{} failed to load: {e}", kind.name()));
    assert_eq!(loaded.name(), kind.name());
    assert_eq!(loaded.len(), data.len());
    assert_eq!(loaded.model_count() > 0, kind.is_learned());

    let after = run_workload(loaded.as_ref(), &data);
    assert_eq!(
        before.points,
        after.points,
        "{} point answers changed across the snapshot",
        kind.name()
    );
    assert_eq!(
        before.windows,
        after.windows,
        "{} window answers changed across the snapshot",
        kind.name()
    );
    assert_eq!(
        before.knn,
        after.knn,
        "{} kNN answers changed across the snapshot",
        kind.name()
    );
    assert_eq!(
        before.stats,
        after.stats,
        "{} query statistics changed across the snapshot",
        kind.name()
    );

    // A loaded index keeps serving updates: insert, find, delete.
    let mut loaded = loaded;
    let extra = Point::with_id(0.41521, 0.19289, 990_001);
    loaded.insert(extra);
    let mut cx = QueryContext::new();
    assert_eq!(
        loaded.point_query(&extra, &mut cx).map(|f| f.id),
        Some(extra.id),
        "{} lost a post-load insert",
        kind.name()
    );
    assert!(loaded.delete(&extra), "{}", kind.name());
}

macro_rules! roundtrip_tests {
    ($($name:ident => $kind:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                roundtrip_body($kind);
            }
        )+
    };
}

roundtrip_tests! {
    roundtrip_grid => IndexKind::Grid,
    roundtrip_hrr => IndexKind::Hrr,
    roundtrip_kdb => IndexKind::Kdb,
    roundtrip_rstar => IndexKind::RStar,
    roundtrip_rsmi => IndexKind::Rsmi,
    roundtrip_rsmia => IndexKind::Rsmia,
    roundtrip_zm => IndexKind::Zm,
    roundtrip_sharded_grid => BaseKind::Grid.sharded(),
    roundtrip_sharded_hrr => BaseKind::Hrr.sharded(),
    roundtrip_sharded_kdb => BaseKind::Kdb.sharded(),
    roundtrip_sharded_rstar => BaseKind::RStar.sharded(),
    roundtrip_sharded_rsmi => BaseKind::Rsmi.sharded(),
    roundtrip_sharded_rsmia => BaseKind::Rsmia.sharded(),
    roundtrip_sharded_zm => BaseKind::Zm.sharded(),
}

#[test]
fn file_roundtrip_covers_save_and_load() {
    let data = generate(Distribution::OsmLike, 900, 29);
    let kind = BaseKind::Rsmi.sharded();
    let built = build_index(kind, &data, &cfg());
    let before = run_workload(built.as_ref(), &data);

    let path = std::env::temp_dir().join(format!(
        "rsmi-roundtrip-{}-{}.snapshot",
        std::process::id(),
        data.len()
    ));
    save_index(built.as_ref(), &path).expect("save");
    drop(built);
    let loaded = load_index(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let after = run_workload(loaded.as_ref(), &data);
    assert_eq!(before.points, after.points);
    assert_eq!(before.windows, after.windows);
    assert_eq!(before.knn, after.knn);
    assert_eq!(before.stats, after.stats);
}

#[test]
fn sharded_snapshot_preserves_routing_and_pruning() {
    // The container format must round-trip the partitioner and shard MBRs:
    // point routing hits exactly one shard and window pruning skips the
    // same shards after a reload.
    let data = generate(Distribution::skewed_default(), 2_000, 41);
    let built = build_index(BaseKind::Hrr.sharded(), &data, &cfg().with_shards(5));
    let bytes = snapshot_bytes(built.as_ref()).unwrap();
    let loaded = load_index_bytes(&bytes).unwrap();

    let mut cx_before = QueryContext::new();
    let mut cx_after = QueryContext::new();
    for p in data.iter().step_by(97) {
        assert_eq!(
            built.point_query(p, &mut cx_before),
            loaded.point_query(p, &mut cx_after)
        );
    }
    let w = Rect::new(0.1, 0.0, 0.4, 0.08);
    let _ = built.window_query(&w, &mut cx_before);
    let _ = loaded.window_query(&w, &mut cx_after);
    let (b, a) = (cx_before.take_stats(), cx_after.take_stats());
    assert_eq!(b, a, "shard fan-out counters changed across the snapshot");
    assert!(b.shards_pruned > 0, "workload never exercised pruning");
}

#[test]
fn empty_indices_roundtrip() {
    for kind in IndexKind::all_with_sharded() {
        let built = build_index(kind, &[], &cfg());
        let bytes = snapshot_bytes(built.as_ref())
            .unwrap_or_else(|e| panic!("{} empty serialise: {e}", kind.name()));
        let loaded =
            load_index_bytes(&bytes).unwrap_or_else(|e| panic!("{} empty load: {e}", kind.name()));
        assert!(loaded.is_empty(), "{}", kind.name());
        let mut cx = QueryContext::new();
        assert!(loaded.point_query(&Point::new(0.5, 0.5), &mut cx).is_none());
        assert!(loaded.window_query(&Rect::unit(), &mut cx).is_empty());
    }
}
