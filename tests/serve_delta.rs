//! Delta-overlay correctness for the concurrent serving engine: a
//! property-style seeded loop interleaves inserts, deletes, and all three
//! query types against a live [`registry::SpatialServer`] for **every**
//! registered kind, and checks each answer against a naive `Vec`-scan
//! oracle — including across an epoch swap (`compact_now`), which folds the
//! delta into a freshly rebuilt base and must not change a single answer.
//!
//! Exact kinds are held to full answer equality (point ids, window sets,
//! kNN id order).  Approximate kinds (RSMI, ZM and their sharded forms)
//! answer window/kNN approximately by design, so they are held to the
//! delta-overlay invariants the server owns: point queries stay exact,
//! `len` stays exact, deleted points never reappear in any result, and no
//! result is ever a phantom (every returned point is live in the oracle).

use common::{brute_force, QueryContext};
use datagen::{generate, Distribution};
use geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use registry::{serve_index, IndexConfig, IndexKind, ServerConfig, SpatialServer};

/// Fresh ids for inserted points start here, far above any data id.
const FRESH_ID_BASE: u64 = 1_000_000;

fn oracle_delete(oracle: &mut Vec<Point>, victim: &Point) -> bool {
    let before = oracle.len();
    oracle.retain(|x| !(x.same_location(victim) && x.id == victim.id));
    oracle.len() != before
}

fn is_live(oracle: &[Point], p: &Point) -> bool {
    oracle.iter().any(|x| x.same_location(p) && x.id == p.id)
}

/// Full-answer verification block, run repeatedly during the loop and after
/// each epoch swap.
fn verify(
    kind: IndexKind,
    server: &SpatialServer,
    oracle: &[Point],
    deleted: &[Point],
    rng: &mut StdRng,
) {
    let mut cx = QueryContext::new();
    let label = kind.name();

    assert_eq!(server.len(), oracle.len(), "{label}: len diverged");

    // Point queries are exact for every kind: live points are found with
    // the oracle's first-match id, deleted locations answer like the oracle.
    for _ in 0..12 {
        let q = oracle[rng.gen_range(0..oracle.len())];
        let expect = brute_force::point_query(oracle, &q).map(|p| p.id);
        assert_eq!(
            server.point_query(&q, &mut cx).map(|p| p.id),
            expect,
            "{label}: live point lookup diverged at {q:?}"
        );
    }
    for victim in deleted.iter().rev().take(8) {
        let expect = brute_force::point_query(oracle, victim).map(|p| p.id);
        assert_eq!(
            server.point_query(victim, &mut cx).map(|p| p.id),
            expect,
            "{label}: deleted point lookup diverged at {victim:?}"
        );
    }

    // Window and kNN queries anchored at data-distribution locations.
    for _ in 0..6 {
        let c = oracle[rng.gen_range(0..oracle.len())];
        let w = Rect::centered(c.x.clamp(0.06, 0.94), c.y.clamp(0.06, 0.94), 0.12, 0.12);
        let got = server.window_query(&w, &mut cx);
        let truth = brute_force::window_query(oracle, &w);
        if kind.exact_windows() {
            let mut got_ids: Vec<u64> = got.iter().map(|p| p.id).collect();
            let mut truth_ids: Vec<u64> = truth.iter().map(|p| p.id).collect();
            got_ids.sort_unstable();
            truth_ids.sort_unstable();
            assert_eq!(got_ids, truth_ids, "{label}: window set diverged");
        } else {
            for p in &got {
                assert!(w.contains(p), "{label}: window result outside window");
                assert!(is_live(oracle, p), "{label}: phantom window result {p:?}");
            }
        }
        for victim in deleted.iter().rev().take(8) {
            assert!(
                !got.iter()
                    .any(|p| p.same_location(victim) && p.id == victim.id),
                "{label}: deleted point reappeared in a window"
            );
        }

        let k = 1 + rng.gen_range(0..20usize);
        let got = server.knn_query(&c, k, &mut cx);
        if kind.exact_knn() {
            let truth = brute_force::knn_query(oracle, &c, k);
            assert_eq!(
                got.iter().map(|p| p.id).collect::<Vec<_>>(),
                truth.iter().map(|p| p.id).collect::<Vec<_>>(),
                "{label}: kNN order diverged (k = {k})"
            );
        } else {
            for p in &got {
                assert!(is_live(oracle, p), "{label}: phantom kNN result {p:?}");
            }
        }
    }
}

/// The shared seeded loop: interleaved writes and queries with two explicit
/// epoch swaps in the middle, everything checked against the Vec oracle.
fn delta_overlay_body(kind: IndexKind, seed: u64) {
    let data = generate(Distribution::skewed_default(), 600, seed);
    let cfg = IndexConfig::fast().with_shards(3).with_seed(seed);
    let server = serve_index(
        kind,
        &data,
        &cfg,
        ServerConfig::default().with_auto_compact(false),
    );
    let mut oracle = data.clone();
    let mut deleted: Vec<Point> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDE17A);
    let mut next_id = FRESH_ID_BASE;
    let mut expected_epoch = 0u64;

    for step in 0..240 {
        match rng.gen_range(0..100u64) {
            // Insert a fresh point following the data distribution.
            0..=34 => {
                let anchor = oracle[rng.gen_range(0..oracle.len())];
                let p = Point::with_id(
                    (anchor.x + 0.01 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                    (anchor.y + 0.01 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                    next_id,
                );
                next_id += 1;
                server.insert(p);
                oracle.push(p);
            }
            // Re-insert a previously deleted point (same location and id):
            // the delta must unmask it.
            35..=44 if !deleted.is_empty() => {
                let p = deleted.swap_remove(rng.gen_range(0..deleted.len()));
                server.insert(p);
                oracle.push(p);
            }
            // Delete a live point; the server must agree something went.
            45..=69 if oracle.len() > 50 => {
                let victim = oracle[rng.gen_range(0..oracle.len())];
                let (removed, _) = server.delete(&victim);
                assert_eq!(
                    removed,
                    oracle_delete(&mut oracle, &victim),
                    "{}: delete result diverged at step {step}",
                    kind.name()
                );
                deleted.push(victim);
            }
            // Delete something that does not exist; must be a no-op.
            70..=74 => {
                let ghost = Point::with_id(rng.gen(), rng.gen(), next_id + 777);
                let (removed, _) = server.delete(&ghost);
                assert!(!removed, "{}: deleted a ghost", kind.name());
            }
            // Otherwise: query burst.
            _ => {
                let mut cx = QueryContext::new();
                let q = oracle[rng.gen_range(0..oracle.len())];
                let expect = brute_force::point_query(&oracle, &q).map(|p| p.id);
                assert_eq!(
                    server.point_query(&q, &mut cx).map(|p| p.id),
                    expect,
                    "{}: point query diverged at step {step}",
                    kind.name()
                );
            }
        }

        // Two epoch swaps mid-stream: fold the delta into a rebuilt base
        // and prove no answer moves.
        if step == 90 || step == 180 {
            verify(kind, &server, &oracle, &deleted, &mut rng);
            let swapped = server.compact_now();
            let stats = server.stats();
            if swapped {
                expected_epoch += 1;
                assert_eq!(stats.delta_ops, 0, "{}: delta not drained", kind.name());
            }
            assert_eq!(stats.epoch, expected_epoch, "{}", kind.name());
            verify(kind, &server, &oracle, &deleted, &mut rng);
        }
    }
    verify(kind, &server, &oracle, &deleted, &mut rng);
}

macro_rules! delta_overlay_tests {
    ($($test_name:ident => $kind:expr, $seed:expr;)+) => {
        $(
            #[test]
            fn $test_name() {
                delta_overlay_body($kind, $seed);
            }
        )+
    };
}

use registry::BaseKind;

delta_overlay_tests! {
    delta_overlay_grid => IndexKind::Grid, 101;
    delta_overlay_hrr => IndexKind::Hrr, 102;
    delta_overlay_kdb => IndexKind::Kdb, 103;
    delta_overlay_rstar => IndexKind::RStar, 104;
    delta_overlay_rsmi => IndexKind::Rsmi, 105;
    delta_overlay_rsmia => IndexKind::Rsmia, 106;
    delta_overlay_zm => IndexKind::Zm, 107;
    delta_overlay_sharded_grid => BaseKind::Grid.sharded(), 201;
    delta_overlay_sharded_hrr => BaseKind::Hrr.sharded(), 202;
    delta_overlay_sharded_kdb => BaseKind::Kdb.sharded(), 203;
    delta_overlay_sharded_rstar => BaseKind::RStar.sharded(), 204;
    delta_overlay_sharded_rsmi => BaseKind::Rsmi.sharded(), 205;
    delta_overlay_sharded_rsmia => BaseKind::Rsmia.sharded(), 206;
    delta_overlay_sharded_zm => BaseKind::Zm.sharded(), 207;
}

/// The macro list above must cover the registry exactly: adding a kind to
/// the registry without extending the delta-overlay suite is an error.
#[test]
fn suite_covers_every_registered_kind() {
    assert_eq!(IndexKind::all_with_sharded().len(), 14);
}
