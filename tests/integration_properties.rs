//! Property-based integration tests across crates: index invariants that must
//! hold for arbitrary (small) point sets and query shapes.

use common::brute_force;
use datagen::{generate, Distribution};
use geom::{Point, Rect};
use proptest::prelude::*;
use rsmi::{Rsmi, RsmiConfig};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..max).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::with_id(x, y, i as u64))
            .collect()
    })
}

fn tiny_config() -> RsmiConfig {
    RsmiConfig {
        block_capacity: 8,
        partition_threshold: 64,
        epochs: 8,
        learning_rate: 0.4,
        ..RsmiConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rsmi_point_queries_have_no_false_negatives(points in arb_points(300)) {
        let index = Rsmi::build(points.clone(), tiny_config());
        for p in &points {
            // Duplicates of the same location are allowed to return any of
            // the co-located points.
            let found = index.point_query(p);
            prop_assert!(found.is_some(), "lost {:?}", p);
            prop_assert!(found.unwrap().same_location(p));
        }
    }

    #[test]
    fn rsmi_window_queries_have_no_false_positives(
        points in arb_points(300),
        win in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5)
    ) {
        let index = Rsmi::build(points, tiny_config());
        let window = Rect::new(win.0, win.1, (win.0 + win.2).min(1.0), (win.1 + win.3).min(1.0));
        for p in index.window_query(&window) {
            prop_assert!(window.contains(&p));
        }
    }

    #[test]
    fn rsmia_window_queries_are_exact(
        points in arb_points(300),
        win in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5)
    ) {
        let index = Rsmi::build(points.clone(), tiny_config());
        let window = Rect::new(win.0, win.1, (win.0 + win.2).min(1.0), (win.1 + win.3).min(1.0));
        let mut truth: Vec<u64> = brute_force::window_query(&points, &window).iter().map(|p| p.id).collect();
        let mut got: Vec<u64> = index.window_query_exact(&window).iter().map(|p| p.id).collect();
        truth.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn rsmi_knn_returns_min_k_n_points_sorted_by_distance(
        points in arb_points(200),
        qx in 0.0f64..1.0,
        qy in 0.0f64..1.0,
        k in 1usize..20
    ) {
        let index = Rsmi::build(points.clone(), tiny_config());
        let q = Point::new(qx, qy);
        let got = index.knn_query(&q, k);
        prop_assert_eq!(got.len(), k.min(points.len()));
        for pair in got.windows(2) {
            prop_assert!(pair[0].dist(&q) <= pair[1].dist(&q) + 1e-12);
        }
        // Exact variant matches brute-force distances.
        let exact = index.knn_query_exact(&q, k);
        let truth = brute_force::knn_query(&points, &q, k);
        for (t, g) in truth.iter().zip(&exact) {
            prop_assert!((t.dist(&q) - g.dist(&q)).abs() < 1e-12);
        }
    }

    #[test]
    fn baseline_window_queries_agree_with_each_other(
        seed in 0u64..50,
        win in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.4, 0.0f64..0.4)
    ) {
        let points = generate(Distribution::skewed_default(), 400, seed);
        let window = Rect::new(win.0, win.1, (win.0 + win.2).min(1.0), (win.1 + win.3).min(1.0));
        let grid = baselines::GridFile::build(points.clone(), 16);
        let kdb = baselines::KdbTree::build(points.clone(), 16);
        let hrr = baselines::HilbertRTree::build(points.clone(), 16);
        let truth = {
            let mut ids: Vec<u64> = brute_force::window_query(&points, &window).iter().map(|p| p.id).collect();
            ids.sort_unstable();
            ids
        };
        use common::SpatialIndex;
        for index in [&grid as &dyn SpatialIndex, &kdb, &hrr] {
            let mut ids: Vec<u64> = index.window_query(&window).iter().map(|p| p.id).collect();
            ids.sort_unstable();
            prop_assert_eq!(&ids, &truth, "{} disagrees", index.name());
        }
    }
}
