//! Property-style integration tests across crates: index invariants that
//! must hold for arbitrary (small) point sets and query shapes, driven by a
//! seeded pseudo-random sampler (the environment has no `proptest`; see
//! `vendor/README.md`).  Indices are constructed through the registry.

use common::{brute_force, QueryContext};
use datagen::{generate, Distribution};
use geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use registry::{build_index, IndexConfig, IndexKind};

const CASES: usize = 24;

fn rand_points(rng: &mut StdRng, max: usize) -> Vec<Point> {
    let n = rng.gen_range(1usize..max);
    (0..n)
        .map(|i| Point::with_id(rng.gen::<f64>(), rng.gen::<f64>(), i as u64))
        .collect()
}

fn rand_window(rng: &mut StdRng) -> Rect {
    let x = rng.gen::<f64>();
    let y = rng.gen::<f64>();
    let w = rng.gen_range(0.0f64..0.5);
    let h = rng.gen_range(0.0f64..0.5);
    Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0))
}

fn tiny_config() -> IndexConfig {
    IndexConfig {
        block_capacity: 8,
        partition_threshold: 64,
        epochs: 8,
        learning_rate: 0.4,
        ..IndexConfig::default()
    }
}

#[test]
fn rsmi_point_queries_have_no_false_negatives() {
    let mut rng = StdRng::seed_from_u64(101);
    let mut cx = QueryContext::new();
    for _ in 0..CASES {
        let points = rand_points(&mut rng, 300);
        let index = build_index(IndexKind::Rsmi, &points, &tiny_config());
        for p in &points {
            // Duplicates of the same location are allowed to return any of
            // the co-located points.
            let found = index.point_query(p, &mut cx);
            assert!(found.is_some(), "lost {:?}", p);
            assert!(found.unwrap().same_location(p));
        }
    }
}

#[test]
fn rsmi_window_queries_have_no_false_positives() {
    let mut rng = StdRng::seed_from_u64(102);
    let mut cx = QueryContext::new();
    for _ in 0..CASES {
        let points = rand_points(&mut rng, 300);
        let index = build_index(IndexKind::Rsmi, &points, &tiny_config());
        let window = rand_window(&mut rng);
        index.window_query_visit(&window, &mut cx, &mut |p| {
            assert!(window.contains(p));
        });
    }
}

#[test]
fn rsmia_window_queries_are_exact() {
    let mut rng = StdRng::seed_from_u64(103);
    let mut cx = QueryContext::new();
    for _ in 0..CASES {
        let points = rand_points(&mut rng, 300);
        let index = build_index(IndexKind::Rsmia, &points, &tiny_config());
        let window = rand_window(&mut rng);
        let mut truth: Vec<u64> = brute_force::window_query(&points, &window)
            .iter()
            .map(|p| p.id)
            .collect();
        let mut got: Vec<u64> = index
            .window_query(&window, &mut cx)
            .iter()
            .map(|p| p.id)
            .collect();
        truth.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, truth);
    }
}

#[test]
fn rsmi_knn_returns_min_k_n_points_sorted_by_distance() {
    let mut rng = StdRng::seed_from_u64(104);
    let mut cx = QueryContext::new();
    for _ in 0..CASES {
        let points = rand_points(&mut rng, 200);
        let approx = build_index(IndexKind::Rsmi, &points, &tiny_config());
        let exact = build_index(IndexKind::Rsmia, &points, &tiny_config());
        let q = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
        let k = rng.gen_range(1usize..20);
        let got = approx.knn_query(&q, k, &mut cx);
        assert_eq!(got.len(), k.min(points.len()));
        for pair in got.windows(2) {
            assert!(pair[0].dist(&q) <= pair[1].dist(&q) + 1e-12);
        }
        // Exact variant matches brute-force distances.
        let exact_got = exact.knn_query(&q, k, &mut cx);
        let truth = brute_force::knn_query(&points, &q, k);
        for (t, g) in truth.iter().zip(&exact_got) {
            assert!((t.dist(&q) - g.dist(&q)).abs() < 1e-12);
        }
    }
}

#[test]
fn baseline_window_queries_agree_with_each_other() {
    let mut rng = StdRng::seed_from_u64(105);
    let mut cx = QueryContext::new();
    let cfg = IndexConfig {
        block_capacity: 16,
        ..tiny_config()
    };
    for _ in 0..CASES {
        let seed = rng.gen_range(0usize..50) as u64;
        let points = generate(Distribution::skewed_default(), 400, seed);
        let window = rand_window(&mut rng);
        let truth = {
            let mut ids: Vec<u64> = brute_force::window_query(&points, &window)
                .iter()
                .map(|p| p.id)
                .collect();
            ids.sort_unstable();
            ids
        };
        for kind in [IndexKind::Grid, IndexKind::Kdb, IndexKind::Hrr] {
            let index = build_index(kind, &points, &cfg);
            let mut ids: Vec<u64> = index
                .window_query(&window, &mut cx)
                .iter()
                .map(|p| p.id)
                .collect();
            ids.sort_unstable();
            assert_eq!(&ids, &truth, "{} disagrees", index.name());
        }
    }
}
