//! Update-handling integration tests (§5 and §6.2.5): insertions and
//! deletions preserve queryability for every index family built through the
//! registry.

use common::{QueryContext, SpatialIndex};
use datagen::{generate, queries, Distribution};
use registry::{build_index, IndexConfig, IndexKind};

fn all_indices(data: &[geom::Point]) -> Vec<Box<dyn SpatialIndex>> {
    IndexKind::without_rsmia()
        .into_iter()
        .map(|kind| build_index(kind, data, &IndexConfig::fast()))
        .collect()
}

#[test]
fn inserted_points_are_findable_in_every_index() {
    let data = generate(Distribution::skewed_default(), 2_000, 3);
    let inserts = queries::insertion_points(&data, 400, 5);
    let mut cx = QueryContext::new();
    for mut index in all_indices(&data) {
        for p in &inserts {
            index.insert(*p);
        }
        assert_eq!(index.len(), 2_400, "{} count wrong", index.name());
        for p in &inserts {
            assert_eq!(
                index.point_query(p, &mut cx).map(|f| f.id),
                Some(p.id),
                "{} lost inserted point",
                index.name()
            );
        }
        // Pre-existing points must survive the insertions.
        for p in data.iter().step_by(37) {
            assert!(
                index.point_query(p, &mut cx).is_some(),
                "{} lost original point",
                index.name()
            );
        }
    }
}

#[test]
fn deletions_remove_points_in_every_index() {
    let data = generate(Distribution::Uniform, 1_500, 7);
    let mut cx = QueryContext::new();
    for mut index in all_indices(&data) {
        for p in data.iter().take(100) {
            assert!(index.delete(p), "{} failed to delete {:?}", index.name(), p);
        }
        assert_eq!(index.len(), 1_400, "{}", index.name());
        for p in data.iter().take(100) {
            assert!(
                index.point_query(p, &mut cx).is_none(),
                "{} still finds a deleted point",
                index.name()
            );
        }
        // Deleting a missing point reports false.
        assert!(!index.delete(&data[0]), "{}", index.name());
    }
}

#[test]
fn interleaved_updates_and_queries_stay_consistent() {
    let data = generate(Distribution::Normal, 2_000, 11);
    let inserts = queries::insertion_points(&data, 500, 13);
    let mut rsmi = build_index(IndexKind::Rsmi, &data, &IndexConfig::fast());
    for (i, p) in inserts.iter().enumerate() {
        rsmi.insert(*p);
        if i % 5 == 0 {
            // Delete an original point now and then.
            let victim = &data[i % data.len()];
            rsmi.delete(victim);
        }
    }
    // The structure still answers window queries without false positives.
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 30, 17);
    let mut cx = QueryContext::new();
    for w in &windows {
        rsmi.window_query_visit(w, &mut cx, &mut |p| {
            assert!(w.contains(p));
        });
    }
}

#[test]
fn rsmi_rebuild_after_heavy_insertion_restores_point_query_cost() {
    let data = generate(Distribution::skewed_default(), 4_000, 19);
    let mut index = build_index(IndexKind::Rsmi, &data, &IndexConfig::fast());
    let inserts = queries::insertion_points(&data, 2_000, 23);
    for p in &inserts {
        index.insert(*p);
    }

    let qs = queries::point_queries(&data, 500, 29);
    let mut cx = QueryContext::new();
    let _ = index.point_queries(&qs, &mut cx);
    let accesses_before = cx.take_stats().total_accesses();

    index.rebuild();
    let _ = index.point_queries(&qs, &mut cx);
    let accesses_after = cx.take_stats().total_accesses();
    assert!(
        accesses_after <= accesses_before,
        "rebuild should not increase point-query accesses ({accesses_before} -> {accesses_after})"
    );
    // Every point (original + inserted) is still present.
    for p in data.iter().step_by(41).chain(inserts.iter().step_by(41)) {
        assert!(index.point_query(p, &mut cx).is_some());
    }
}
