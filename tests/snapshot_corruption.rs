//! Corrupt-snapshot rejection: a damaged or foreign file must produce a
//! typed [`registry::PersistError`] — never a panic, never a silently wrong
//! index.  Each corruption class the format defends against gets its own
//! case: bad magic, unsupported version, truncation, and checksum mismatch,
//! plus the registry-level failure modes (unknown kind tag, missing file,
//! mismatched shard family).

use datagen::{generate, Distribution};
use registry::{
    build_index, load_index, load_index_bytes, snapshot_bytes, BaseKind, IndexConfig, IndexKind,
    PersistError,
};

fn snapshot_of(kind: IndexKind) -> Vec<u8> {
    let data = generate(Distribution::Uniform, 500, 3);
    let index = build_index(kind, &data, &IndexConfig::fast().with_shards(2));
    snapshot_bytes(index.as_ref()).expect("serialise")
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = snapshot_of(IndexKind::Grid);
    bytes[0] ^= 0xFF;
    assert!(matches!(
        load_index_bytes(&bytes),
        Err(PersistError::BadMagic)
    ));
    // An arbitrary non-snapshot file fails the same way.
    assert!(matches!(
        load_index_bytes(b"{\"not\": \"a snapshot\"}"),
        Err(PersistError::BadMagic)
    ));
}

#[test]
fn unsupported_version_is_rejected() {
    let mut bytes = snapshot_of(IndexKind::Kdb);
    // The version field sits directly after the 8-byte magic.
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        load_index_bytes(&bytes),
        Err(PersistError::UnsupportedVersion(7))
    ));
}

#[test]
fn truncated_files_are_rejected_at_every_cut() {
    let bytes = snapshot_of(IndexKind::Hrr);
    // Cut the file at several depths: mid-header, mid-section, mid-checksum.
    for keep in [10, bytes.len() / 3, bytes.len() - 3] {
        let cut = &bytes[..keep];
        match load_index_bytes(cut) {
            Err(PersistError::Truncated) => {}
            Ok(_) => panic!("cut at {keep} loaded successfully"),
            Err(other) => panic!("cut at {keep}: expected Truncated, got {other}"),
        }
    }
}

#[test]
fn checksum_mismatch_is_rejected_for_every_section() {
    let bytes = snapshot_of(IndexKind::RStar);
    // Flip one bit somewhere inside the body (past the header) and the
    // enclosing section's CRC must catch it.  Probe several offsets.
    let header_len = 8 + 4 + 2 + "RR*".len();
    for at in [header_len + 20, bytes.len() / 2, bytes.len() - 40] {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x10;
        match load_index_bytes(&corrupted) {
            Err(
                PersistError::ChecksumMismatch { .. }
                // A flipped bit inside a section *length* field shifts the
                // layout instead of the payload; that surfaces as
                // truncation or a structural error — still typed, no panic.
                | PersistError::Truncated
                | PersistError::Corrupt(_),
            ) => {}
            Ok(_) => panic!("bit flip at {at} loaded successfully"),
            Err(other) => panic!("bit flip at {at}: unexpected error {other}"),
        }
    }
}

#[test]
fn learned_index_snapshots_detect_weight_corruption() {
    let bytes = snapshot_of(IndexKind::Rsmi);
    // Damage a byte in the back half of the file, where the node arena and
    // its model weights live.
    let mut corrupted = bytes.clone();
    let at = bytes.len() * 3 / 4;
    corrupted[at] ^= 0x01;
    assert!(
        load_index_bytes(&corrupted).is_err(),
        "corrupted model weights loaded silently"
    );
}

#[test]
fn sharded_containers_reject_corrupt_inner_snapshots() {
    let bytes = snapshot_of(BaseKind::Zm.sharded());
    let mut corrupted = bytes.clone();
    let at = bytes.len() * 2 / 3; // inside an embedded shard blob
    corrupted[at] ^= 0x04;
    assert!(
        load_index_bytes(&corrupted).is_err(),
        "corrupted shard blob loaded silently"
    );
}

#[test]
fn zero_block_capacity_is_corrupt_not_a_panic() {
    // `Block::new` asserts a positive capacity; a crafted snapshot must be
    // rejected by the reader *before* that assert can fire, in either
    // block-store section generation.
    for tag in [storage::SECTION_STORE_V1, storage::SECTION_STORE_V2] {
        let mut w = persist::SnapshotWriter::new("Grid");
        w.begin_section(tag);
        w.put_usize(0); // capacity — invalid
        w.put_usize(0); // block count
        w.end_section();
        match load_index_bytes(&w.finish()) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("capacity"), "unhelpful message: {msg}")
            }
            Ok(_) => panic!("zero-capacity snapshot loaded successfully"),
            Err(other) => panic!("expected Corrupt, got {other}"),
        }
    }
}

#[test]
fn disagreeing_soa_lanes_are_corrupt_not_a_panic() {
    // A v2 section whose coordinate and id lanes disagree in length must be
    // rejected; zipping them blindly would silently drop or invent points.
    let mut w = persist::SnapshotWriter::new("Grid");
    w.begin_section(storage::SECTION_STORE_V2);
    w.put_usize(4); // capacity
    w.put_usize(1); // block count
    w.put_f64s(&[0.1, 0.2]); // xs: 2 entries
    w.put_f64s(&[0.3]); // ys: 1 entry
    w.put_u64s(&[7, 8]);
    w.put_opt_usize(None);
    w.put_opt_usize(None);
    w.put_bool(false);
    w.end_section();
    match load_index_bytes(&w.finish()) {
        Err(PersistError::Corrupt(_)) => {}
        Ok(_) => panic!("lane-mismatched snapshot loaded successfully"),
        Err(other) => panic!("expected Corrupt, got {other}"),
    }
}

#[test]
fn unknown_kind_tag_is_rejected() {
    let w = persist::SnapshotWriter::new("FancyFutureIndex");
    match load_index_bytes(&w.finish()) {
        Err(PersistError::UnknownKind(kind)) => assert_eq!(kind, "FancyFutureIndex"),
        Ok(_) => panic!("unknown kind loaded successfully"),
        Err(other) => panic!("expected UnknownKind, got {other}"),
    }
}

#[test]
fn missing_file_is_an_io_error() {
    assert!(matches!(
        load_index(std::path::Path::new("/no/such/dir/index.snapshot")),
        Err(PersistError::Io(_))
    ));
}

#[test]
fn empty_file_is_rejected() {
    assert!(matches!(load_index_bytes(&[]), Err(PersistError::BadMagic)));
}

#[test]
fn errors_format_for_operators() {
    // The serve CLI prints these; they must be actionable one-liners.
    let mut bytes = snapshot_of(IndexKind::Grid);
    bytes[8..12].copy_from_slice(&42u32.to_le_bytes());
    let Err(err) = load_index_bytes(&bytes) else {
        panic!("version 42 loaded successfully");
    };
    assert!(err.to_string().contains("42"), "{err}");
}
