//! Conformance suite for the uniform query API: one shared test body runs
//! point/window/kNN/insert/delete/stats invariants against **every**
//! [`IndexKind`] built through the dynamic registry, so all index families
//! are held to the same contract.

use common::{brute_force, QueryContext, SpatialIndex};
use datagen::{generate, queries, Distribution};
use geom::{Point, Rect};
use registry::{build_index, BaseKind, IndexConfig, IndexKind};

fn cfg() -> IndexConfig {
    IndexConfig::fast()
}

fn windows(data: &[Point]) -> Vec<Rect> {
    queries::window_queries(data, queries::WindowSpec::default(), 20, 9)
}

/// The shared conformance body: every invariant an index family must
/// satisfy, exact or approximate.
fn conformance_body(kind: IndexKind) {
    let data = generate(Distribution::skewed_default(), 1_500, 71);
    let mut index = build_index(kind, &data, &cfg());
    let mut cx = QueryContext::new();

    // Identity.
    assert_eq!(index.name(), kind.name());
    assert_eq!(index.len(), data.len());
    assert!(!index.is_empty());
    assert!(index.size_bytes() > 0);
    assert!(index.height() >= 1);
    assert_eq!(index.model_count() > 0, kind.is_learned());

    // Point queries: exact for every family.
    for p in data.iter().step_by(13) {
        assert_eq!(
            index.point_query(p, &mut cx).map(|f| f.id),
            Some(p.id),
            "{} lost {p:?}",
            kind.name()
        );
    }
    assert!(
        index
            .point_query(&Point::new(0.123456, 0.654321), &mut cx)
            .is_none(),
        "{} invented a point",
        kind.name()
    );

    // Per-query stats: a point query must touch at least one block, and the
    // context must accumulate across queries.
    let before = cx.take_stats();
    assert!(
        before.blocks_touched > 0,
        "{} charged no blocks",
        kind.name()
    );
    let _ = index.point_query(&data[0], &mut cx);
    let one = cx.take_stats();
    assert!(one.total_accesses() > 0);
    let _ = index.point_query(&data[0], &mut cx);
    let _ = index.point_query(&data[0], &mut cx);
    assert_eq!(cx.take_stats().total_accesses(), 2 * one.total_accesses());

    // Window queries: never a false positive; exact families match brute
    // force; the visitor and Vec forms agree.
    for w in windows(&data) {
        let got = index.window_query(&w, &mut cx);
        for p in &got {
            assert!(
                w.contains(p),
                "{} returned a point outside the window",
                kind.name()
            );
        }
        let mut visited = Vec::new();
        index.window_query_visit(&w, &mut cx, &mut |p| visited.push(*p));
        assert_eq!(got, visited, "{} visitor/Vec mismatch", kind.name());
        if kind.exact_windows() {
            let mut truth: Vec<u64> = brute_force::window_query(&data, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
            truth.sort_unstable();
            ids.sort_unstable();
            assert_eq!(ids, truth, "{} window answer differs", kind.name());
        }
    }

    // kNN queries: min(k, n) *distinct* results, sorted by distance; exact
    // families match brute-force distances.
    for q in [Point::new(0.3, 0.1), Point::new(0.9, 0.8)] {
        for k in [1usize, 10, 2_000] {
            let got = index.knn_query(&q, k, &mut cx);
            assert_eq!(got.len(), k.min(data.len()), "{} k={k}", kind.name());
            let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                got.len(),
                "{} returned duplicate kNN results for k={k}",
                kind.name()
            );
            for pair in got.windows(2) {
                assert!(
                    pair[0].dist(&q) <= pair[1].dist(&q) + 1e-12,
                    "{} kNN order broken",
                    kind.name()
                );
            }
            if kind.exact_knn() {
                let truth = brute_force::knn_query(&data, &q, k);
                for (t, g) in truth.iter().zip(&got) {
                    assert!(
                        (t.dist(&q) - g.dist(&q)).abs() < 1e-12,
                        "{} kNN distance mismatch",
                        kind.name()
                    );
                }
            }
        }
    }

    // Distance-range queries: exact for EVERY family, including the ones
    // whose window/kNN answers are approximate; visitor and Vec forms
    // agree, degenerate radii yield nothing.
    let centers = queries::range_query_centers(&data, 10, 11);
    for c in &centers {
        let got = index.range_query(c, 0.03, &mut cx);
        let mut visited = Vec::new();
        index.range_query_visit(c, 0.03, &mut cx, &mut |p| visited.push(*p));
        assert_eq!(got, visited, "{} range visitor/Vec mismatch", kind.name());
        let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
        let mut truth: Vec<u64> = brute_force::range_query(&data, c, 0.03)
            .iter()
            .map(|p| p.id)
            .collect();
        ids.sort_unstable();
        truth.sort_unstable();
        assert_eq!(ids, truth, "{} range answer differs", kind.name());
    }
    assert!(index.range_query(&data[0], -1.0, &mut cx).is_empty());
    assert!(index.range_query(&data[0], f64::NAN, &mut cx).is_empty());

    // Exact enumeration: for_each_point visits every indexed id exactly
    // once — the primitive the join's probe side is built on.
    let mut seen: Vec<u64> = Vec::with_capacity(index.len());
    index.for_each_point(&mut |p| seen.push(p.id));
    let mut expected: Vec<u64> = data.iter().map(|p| p.id).collect();
    seen.sort_unstable();
    expected.sort_unstable();
    assert_eq!(seen, expected, "{} enumeration differs", kind.name());

    // Distance joins match the nested-loop oracle, with no duplicate pairs.
    let inner = queries::join_points(&data, 120, 13);
    let other = brute_force::ScanIndex::new(inner.clone());
    let mut pairs: Vec<(u64, u64)> = index
        .distance_join(&other, 0.02, &mut cx)
        .iter()
        .map(|(p, q)| (p.id, q.id))
        .collect();
    let mut pair_truth: Vec<(u64, u64)> = brute_force::distance_join(&data, &inner, 0.02)
        .iter()
        .map(|(p, q)| (p.id, q.id))
        .collect();
    pairs.sort_unstable();
    pair_truth.sort_unstable();
    let mut deduped = pairs.clone();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        pairs.len(),
        "{} duplicate pairs",
        kind.name()
    );
    assert_eq!(pairs, pair_truth, "{} join answer differs", kind.name());

    // Batch entry points agree with per-call queries.
    let probe: Vec<Point> = data.iter().step_by(29).copied().collect();
    let batch = index.point_queries(&probe, &mut cx);
    let single: Vec<_> = probe
        .iter()
        .map(|q| index.point_query(q, &mut cx))
        .collect();
    assert_eq!(batch, single, "{} batch/single mismatch", kind.name());
    let range_batch = index.range_queries(&centers, 0.03, &mut cx);
    let range_single: Vec<_> = centers
        .iter()
        .map(|c| index.range_query(c, 0.03, &mut cx))
        .collect();
    assert_eq!(
        range_batch,
        range_single,
        "{} range batch/single mismatch",
        kind.name()
    );

    // Insert: findable afterwards, count grows.
    let extra = Point::with_id(0.42421, 0.13137, 900_001);
    index.insert(extra);
    assert_eq!(index.len(), data.len() + 1, "{}", kind.name());
    assert_eq!(
        index.point_query(&extra, &mut cx).map(|f| f.id),
        Some(extra.id),
        "{} lost an inserted point",
        kind.name()
    );

    // Delete: removed, count shrinks, second delete fails.
    assert!(index.delete(&extra), "{}", kind.name());
    assert!(
        index.point_query(&extra, &mut cx).is_none(),
        "{}",
        kind.name()
    );
    assert!(!index.delete(&extra), "{}", kind.name());
    assert_eq!(index.len(), data.len(), "{}", kind.name());

    // Rebuild is at worst a no-op: content survives.
    index.rebuild();
    assert_eq!(
        index.len(),
        data.len(),
        "{} rebuild lost points",
        kind.name()
    );
    for p in data.iter().step_by(97) {
        assert!(
            index.point_query(p, &mut cx).is_some(),
            "{} rebuild lost {p:?}",
            kind.name()
        );
    }

    // Empty indices answer queries gracefully.
    let empty = build_index(kind, &[], &cfg());
    assert!(empty.is_empty());
    assert!(empty.point_query(&Point::new(0.5, 0.5), &mut cx).is_none());
    assert!(empty.window_query(&Rect::unit(), &mut cx).is_empty());
    assert!(empty
        .knn_query(&Point::new(0.5, 0.5), 3, &mut cx)
        .is_empty());
    assert!(empty
        .range_query(&Point::new(0.5, 0.5), 0.5, &mut cx)
        .is_empty());
    let probe_side = brute_force::ScanIndex::new(data[..5].to_vec());
    assert!(empty.distance_join(&probe_side, 0.5, &mut cx).is_empty());
    let mut none = 0;
    empty.for_each_point(&mut |_| none += 1);
    assert_eq!(none, 0);
}

macro_rules! conformance_tests {
    ($($name:ident => $kind:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                conformance_body($kind);
            }
        )+
    };
}

conformance_tests! {
    conformance_grid => IndexKind::Grid,
    conformance_hrr => IndexKind::Hrr,
    conformance_kdb => IndexKind::Kdb,
    conformance_rstar => IndexKind::RStar,
    conformance_rsmi => IndexKind::Rsmi,
    conformance_rsmia => IndexKind::Rsmia,
    conformance_zm => IndexKind::Zm,
    // The sharded serving engine composes with every leaf family through
    // the registry and is held to the exact same contract.
    conformance_sharded_grid => BaseKind::Grid.sharded(),
    conformance_sharded_hrr => BaseKind::Hrr.sharded(),
    conformance_sharded_kdb => BaseKind::Kdb.sharded(),
    conformance_sharded_rstar => BaseKind::RStar.sharded(),
    conformance_sharded_rsmi => BaseKind::Rsmi.sharded(),
    conformance_sharded_rsmia => BaseKind::Rsmia.sharded(),
    conformance_sharded_zm => BaseKind::Zm.sharded(),
}

#[test]
fn registry_covers_every_kind_exactly_once() {
    let all = IndexKind::all();
    assert_eq!(all.len(), 7);
    let everything = IndexKind::all_with_sharded();
    assert_eq!(everything.len(), 14);
    let names: std::collections::HashSet<&str> = everything.iter().map(IndexKind::name).collect();
    assert_eq!(names.len(), 14, "duplicate display names");
}

/// Compile-time assertion that no index type relies on interior mutability
/// for statistics: every concrete index and the boxed trait object are
/// `Send + Sync`.
#[test]
fn every_index_type_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<baselines::GridFile>();
    assert_send_sync::<baselines::HilbertRTree>();
    assert_send_sync::<baselines::KdbTree>();
    assert_send_sync::<baselines::RStarTree>();
    assert_send_sync::<baselines::ZOrderModel>();
    assert_send_sync::<rsmi::Rsmi>();
    assert_send_sync::<rsmi::RsmiExact>();
    assert_send_sync::<engine::ShardedIndex>();
    assert_send_sync::<dyn SpatialIndex>();
    assert_send_sync::<Box<dyn SpatialIndex>>();
}

/// The redesign's point: one shared index, many threads, each with its own
/// per-query statistics.
#[test]
fn shared_index_serves_concurrent_queries() {
    let data = generate(Distribution::Uniform, 2_000, 5);
    let index = build_index(IndexKind::Rsmi, &data, &cfg());
    let index_ref: &dyn SpatialIndex = index.as_ref();
    std::thread::scope(|scope| {
        for chunk in data.chunks(500) {
            scope.spawn(move || {
                let mut cx = QueryContext::new();
                for p in chunk.iter().step_by(7) {
                    assert_eq!(index_ref.point_query(p, &mut cx).map(|f| f.id), Some(p.id));
                }
                assert!(cx.stats.blocks_touched > 0);
            });
        }
    });
}
