//! Distance-range and distance-join oracle suite: for **all 14 registered
//! kinds**, `range_query` and `distance_join` answers must be identical to
//! the `ScanIndex` brute-force oracle on seeded uniform, clustered, and
//! hotspot data sets — including through a live server's delta overlay with
//! interleaved inserts and deletes, and across a compaction epoch swap.
//! For the exact kinds the per-query [`QueryStats`] must also be
//! deterministic: a rebuilt index replaying the same workload charges
//! byte-identical counters.

use common::brute_force::{self, ScanIndex};
use common::{QueryContext, QueryStats, SpatialIndex};
use datagen::{generate, queries, Distribution};
use geom::Point;
use registry::{build_index, serve_index, BaseKind, IndexConfig, IndexKind, ServerConfig};

const RADII: [f64; 3] = [0.0, 0.02, 0.08];

fn cfg() -> IndexConfig {
    IndexConfig::fast().with_shards(3)
}

/// The three data shapes of the suite: uniform, clustered (truncated
/// normal), and hotspot (the paper's skewed family piles the mass onto one
/// edge, the serving-traffic hotspot shape).
fn datasets(n: usize) -> Vec<(&'static str, Vec<Point>)> {
    vec![
        ("uniform", generate(Distribution::Uniform, n, 101)),
        ("clustered", generate(Distribution::Normal, n, 103)),
        ("hotspot", generate(Distribution::skewed_default(), n, 107)),
    ]
}

fn sorted_ids(pts: &[Point]) -> Vec<u64> {
    let mut ids: Vec<u64> = pts.iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

fn sorted_pairs(pairs: &[(Point, Point)]) -> Vec<(u64, u64)> {
    let mut keys: Vec<(u64, u64)> = pairs.iter().map(|(p, q)| (p.id, q.id)).collect();
    keys.sort_unstable();
    keys
}

/// Runs the full range + join workload against one index, returning the
/// accumulated stats (for the determinism checks) after asserting every
/// answer equals the oracle's.
fn verify_against_oracle(
    kind: IndexKind,
    label: &str,
    index: &dyn SpatialIndex,
    data: &[Point],
    inner: &[Point],
) -> QueryStats {
    let oracle = ScanIndex::new(data.to_vec());
    let mut cx = QueryContext::new();
    let mut oracle_cx = QueryContext::new();
    let centers = queries::range_query_centers(data, 12, 109);
    for r in RADII {
        for c in &centers {
            let got = index.range_query(c, r, &mut cx);
            let truth = oracle.range_query(c, r, &mut oracle_cx);
            assert_eq!(
                sorted_ids(&got),
                sorted_ids(&truth),
                "{} range answer differs from the oracle ({label}, r = {r})",
                kind.name()
            );
        }
    }
    let other = ScanIndex::new(inner.to_vec());
    let got = index.distance_join(&other, 0.03, &mut cx);
    let truth = oracle.distance_join(&other, 0.03, &mut oracle_cx);
    let got_keys = sorted_pairs(&got);
    let mut deduped = got_keys.clone();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        got_keys.len(),
        "{} produced duplicate join pairs ({label})",
        kind.name()
    );
    assert_eq!(
        got_keys,
        sorted_pairs(&truth),
        "{} join pair set differs from the oracle ({label})",
        kind.name()
    );
    cx.take_stats()
}

/// The shared per-kind body: every data set, bulk-built index.
fn oracle_body(kind: IndexKind) {
    for (label, data) in datasets(1_200) {
        let index = build_index(kind, &data, &cfg());
        let inner = queries::join_points(&data, 200, 113);
        let first = verify_against_oracle(kind, label, index.as_ref(), &data, &inner);

        // Replaying the identical workload on the same index charges the
        // identical counters (per-query statistics carry no hidden state).
        let again = verify_against_oracle(kind, label, index.as_ref(), &data, &inner);
        assert_eq!(
            first,
            again,
            "{} stats differ between identical replays ({label})",
            kind.name()
        );

        // For the exact kinds, a from-scratch rebuild replays the workload
        // with byte-identical statistics too (builds are deterministic).
        if kind.exact_windows() {
            let rebuilt = build_index(kind, &data, &cfg());
            let fresh = verify_against_oracle(kind, label, rebuilt.as_ref(), &data, &inner);
            assert_eq!(
                first,
                fresh,
                "{} stats differ across deterministic rebuilds ({label})",
                kind.name()
            );
        }
    }
}

/// The shared per-kind server body: range/join stay oracle-exact through a
/// live delta overlay with interleaved inserts and deletes, and across a
/// compaction epoch swap.
fn server_overlay_body(kind: IndexKind) {
    let data = generate(Distribution::Uniform, 700, 131);
    let server = serve_index(
        kind,
        &data,
        &cfg(),
        ServerConfig::default().with_auto_compact(false),
    );
    let mut live = data.clone();
    let probes = queries::join_points(&data, 120, 137);
    let other = ScanIndex::new(probes.clone());
    let check = |live: &[Point], stage: &str| {
        let mut cx = QueryContext::new();
        let centers = queries::range_query_centers(&data, 8, 139);
        for c in &centers {
            let got = server.range_query(c, 0.05, &mut cx);
            let truth = brute_force::range_query(live, c, 0.05);
            assert_eq!(
                sorted_ids(&got),
                sorted_ids(&truth),
                "{} served range answer differs ({stage})",
                kind.name()
            );
        }
        let got = SpatialIndex::distance_join(&server, &other, 0.03, &mut cx);
        let truth = brute_force::distance_join(live, &probes, 0.03);
        assert_eq!(
            sorted_pairs(&got),
            sorted_pairs(&truth),
            "{} served join pair set differs ({stage})",
            kind.name()
        );
    };

    // Interleaved inserts and deletes, verified mid-stream.
    for i in 0..48u64 {
        let anchor = data[(i as usize * 13) % data.len()];
        let p = Point::with_id(
            (anchor.x + 0.004).min(1.0),
            (anchor.y + 0.002).min(1.0),
            40_000 + i,
        );
        server.insert(p);
        live.push(p);
        if i % 4 == 0 {
            let victim = live[(i as usize * 17) % live.len()];
            let (removed, _) = server.delete(&victim);
            assert!(removed, "{} delete failed", kind.name());
            live.retain(|x| !(x.same_location(&victim) && x.id == victim.id));
        }
        if i == 23 {
            check(&live, "mid-stream overlay");
        }
    }
    check(&live, "full overlay");

    // Fold the delta into a fresh base: nothing may change.
    assert!(server.compact_now());
    check(&live, "after compaction");
}

macro_rules! oracle_tests {
    ($($name:ident / $server_name:ident => $kind:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                oracle_body($kind);
            }
            #[test]
            fn $server_name() {
                server_overlay_body($kind);
            }
        )+
    };
}

oracle_tests! {
    oracle_grid / served_grid => IndexKind::Grid,
    oracle_hrr / served_hrr => IndexKind::Hrr,
    oracle_kdb / served_kdb => IndexKind::Kdb,
    oracle_rstar / served_rstar => IndexKind::RStar,
    oracle_rsmi / served_rsmi => IndexKind::Rsmi,
    oracle_rsmia / served_rsmia => IndexKind::Rsmia,
    oracle_zm / served_zm => IndexKind::Zm,
    oracle_sharded_grid / served_sharded_grid => BaseKind::Grid.sharded(),
    oracle_sharded_hrr / served_sharded_hrr => BaseKind::Hrr.sharded(),
    oracle_sharded_kdb / served_sharded_kdb => BaseKind::Kdb.sharded(),
    oracle_sharded_rstar / served_sharded_rstar => BaseKind::RStar.sharded(),
    oracle_sharded_rsmi / served_sharded_rsmi => BaseKind::Rsmi.sharded(),
    oracle_sharded_rsmia / served_sharded_rsmia => BaseKind::Rsmia.sharded(),
    oracle_sharded_zm / served_sharded_zm => BaseKind::Zm.sharded(),
}

/// The sharded engine's fan-out counters behave for the new query classes:
/// a small circle prunes shards, and visited + pruned always accounts for
/// every shard.
#[test]
fn sharded_range_queries_account_for_every_shard() {
    let data = generate(Distribution::Uniform, 2_000, 149);
    let index = build_index(
        BaseKind::Hrr.sharded(),
        &data,
        &IndexConfig::fast().with_shards(6),
    );
    let mut cx = QueryContext::new();
    let centers = queries::range_query_centers(&data, 20, 151);
    for c in &centers {
        let _ = index.range_query(c, 0.02, &mut cx);
    }
    let stats = cx.take_stats();
    assert!(stats.shards_pruned > 0, "small circles should prune shards");
    assert_eq!(
        stats.shards_visited + stats.shards_pruned,
        6 * centers.len() as u64
    );
}
