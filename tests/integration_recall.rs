//! Recall of the approximate (learned) indices against brute force, mirroring
//! the quality claims of §6.2.3 / §6.2.4 at test scale.

use common::{brute_force, metrics, QueryContext, SpatialIndex};
use datagen::{generate, queries, Distribution};
use registry::{build_index, IndexConfig, IndexKind};

fn rsmi_over(dist: Distribution, n: usize) -> (Vec<geom::Point>, Box<dyn SpatialIndex>) {
    let data = generate(dist, n, 31);
    let cfg = IndexConfig::default()
        .with_block_capacity(50)
        .with_partition_threshold(2_000)
        .with_epochs(30);
    let index = build_index(IndexKind::Rsmi, &data, &cfg);
    (data, index)
}

#[test]
fn window_recall_is_high_across_distributions() {
    for dist in [
        Distribution::Uniform,
        Distribution::skewed_default(),
        Distribution::TigerLike,
    ] {
        let (data, index) = rsmi_over(dist, 8_000);
        let windows = queries::window_queries(
            &data,
            queries::WindowSpec {
                area_percent: 0.05,
                aspect_ratio: 1.0,
            },
            50,
            3,
        );
        let mut cx = QueryContext::new();
        let mut recalls = Vec::new();
        for (w, got) in windows.iter().zip(index.window_queries(&windows, &mut cx)) {
            let truth = brute_force::window_query(&data, w);
            recalls.push(metrics::recall(&got, &truth));
        }
        let avg = metrics::mean(&recalls);
        assert!(
            avg > 0.7,
            "window recall {avg:.3} too low on {} (paper reports > 0.87 at full training)",
            dist.name()
        );
    }
}

#[test]
fn knn_recall_is_high_and_k_points_are_always_returned() {
    let (data, index) = rsmi_over(Distribution::skewed_default(), 8_000);
    let qs = queries::knn_queries(&data, 50, 7);
    let mut cx = QueryContext::new();
    for &k in &[1usize, 5, 25] {
        let mut recalls = Vec::new();
        for (q, got) in qs.iter().zip(index.knn_queries(&qs, k, &mut cx)) {
            assert_eq!(got.len(), k);
            let truth = brute_force::knn_query(&data, q, k);
            recalls.push(metrics::knn_recall(&got, &truth, q, k));
        }
        let avg = metrics::mean(&recalls);
        assert!(avg > 0.75, "kNN recall {avg:.3} too low for k = {k}");
    }
}

#[test]
fn rank_space_ordering_tightens_error_bounds_on_skewed_data() {
    // The paper's central claim (§3.1): rank-space ordering produces an
    // easier-to-learn CDF than ordering raw coordinates, which shows up as
    // tighter leaf-model error bounds on skewed data.  Error bounds are an
    // internal model diagnostic, so the concrete RSMI type is used here.
    use rsmi::{Rsmi, RsmiConfig};
    let data = generate(Distribution::skewed_default(), 6_000, 41);
    let with_rank = Rsmi::build(
        data.clone(),
        RsmiConfig::fast()
            .with_partition_threshold(10_000)
            .with_epochs(30),
    );
    let without_rank = Rsmi::build(
        data,
        RsmiConfig::fast()
            .with_partition_threshold(10_000)
            .with_epochs(30)
            .with_rank_space(false),
    );
    let a = with_rank.stats();
    let b = without_rank.stats();
    let sum_a = a.max_err_below + a.max_err_above;
    let sum_b = b.max_err_below + b.max_err_above;
    assert!(
        sum_a as f64 <= sum_b as f64 * 1.3 + 5.0,
        "rank-space bounds ({sum_a}) should not be materially worse than raw ordering ({sum_b})"
    );
}

#[test]
fn zm_error_bounds_are_wider_than_rsmi_on_skewed_data() {
    // Table 4's qualitative claim: ZM's prediction error (in blocks) is much
    // larger than RSMI's because it learns over raw Z-values.  As above,
    // error bounds require the concrete learned types.
    let data = generate(Distribution::skewed_default(), 10_000, 43);
    let rsmi = rsmi::Rsmi::build(
        data.clone(),
        rsmi::RsmiConfig::default()
            .with_partition_threshold(2_500)
            .with_epochs(30)
            .with_block_capacity(50),
    );
    let zm = baselines::ZOrderModel::build(
        data,
        baselines::zm::ZmConfig {
            block_capacity: 50,
            epochs: 30,
            ..baselines::zm::ZmConfig::default()
        },
    );
    let r = rsmi.stats();
    let (zb, za) = zm.error_bounds_blocks();
    let rsmi_err = r.max_err_below + r.max_err_above;
    let zm_err = zb + za;
    assert!(
        zm_err >= rsmi_err,
        "expected ZM error bounds ({zm_err}) to be at least as wide as RSMI's ({rsmi_err})"
    );
}
