//! Maintenance churn **soak**: a seeded 30%-write serve-live workload is
//! driven through 100+ epoch swaps per learned kind while reader threads
//! query concurrently.  The suite proves the incremental-maintenance layer
//! end to end:
//!
//! * every recorded answer replays exactly against the `Vec`-scan oracle
//!   (the same record-and-replay harness the `serve-live` CI gate uses),
//! * the obs counters show **partial** passes carried the entire load —
//!   zero full rebuilds across the whole soak,
//! * every writer-visible swap pause stays under the policy's pause
//!   budget, and
//! * the pause/rebuild p99 of the post-warmup window stays within 25% of
//!   the first-10-swap window (plus a small absolute allowance for
//!   scheduler noise at the microsecond scale) — steady-state maintenance
//!   does not degrade as churn accumulates.
//!
//! The writer thread folds the delta synchronously every `TRIGGER` writes
//! (`maintain_now`, the policy-driven path), which pins the swap count
//! deterministically above 100 regardless of scheduler timing; readers
//! race those swaps exactly as they do under the background compactor.

use bench::live::{replay_against_oracle, split_stream, LiveAnswer, LiveObs};
use common::QueryContext;
use datagen::queries::{self, MixedQuery, WindowSpec};
use datagen::{generate, Distribution};
use geom::Point;
use obs::EventKind;
use registry::{serve_index, CompactionPolicy, IndexConfig, IndexKind, ServerConfig};
use server::{SpatialServer, WriteOp};

const READERS: usize = 3;
/// Writes per epoch swap: small so ~900 writes yield 100+ swaps.
const TRIGGER: usize = 7;

/// 30%-write churn stream with the one delete the learned kinds cannot
/// replay faithfully redirected: `Rsmi::delete` treats `id == 0` as a
/// location wildcard, and the serving layer answers such a delete with a
/// full-rebuild pass.  Redirecting the rare `data[0]` delete to a fixed
/// other victim keeps every pass partial without changing the churn shape
/// (double deletes are defined no-ops for both index and oracle).
fn churn_stream(data: &[Point], n_ops: usize, seed: u64) -> (Vec<MixedQuery>, Vec<WriteOp>) {
    let ops = queries::read_write_workload(data, WindowSpec::default(), 10, n_ops, 0.3, seed);
    let (reads, mut writes) = split_stream(&ops);
    for w in writes.iter_mut() {
        if let WriteOp::Delete(p) = w {
            if p.id == 0 {
                *w = WriteOp::Delete(data[1]);
            }
        }
    }
    (reads, writes)
}

/// Runs the soak: reader threads stride the read stream and record every
/// answer with its observed sequence number while the writer applies the
/// write stream, folding the delta through `maintain_now` every `TRIGGER`
/// writes (plus once for the tail).
fn run_soak(server: &SpatialServer, reads: &[MixedQuery], writes: &[WriteOp]) -> Vec<LiveObs> {
    let mut observations: Vec<LiveObs> = Vec::with_capacity(reads.len());
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || {
            for (i, op) in writes.iter().enumerate() {
                server.apply(*op);
                if (i + 1) % TRIGGER == 0 {
                    server.maintain_now();
                }
            }
            server.maintain_now();
        });
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                scope.spawn(move || {
                    let mut cx = QueryContext::new();
                    let mut out = Vec::new();
                    for q in reads.iter().skip(r).step_by(READERS) {
                        let snap = server.snapshot();
                        let seq = snap.seq();
                        let answer = match *q {
                            MixedQuery::Point(p) => {
                                LiveAnswer::Point(snap.point_query(&p, &mut cx).map(|f| f.id))
                            }
                            MixedQuery::Window(w) => {
                                let mut ids: Vec<u64> = Vec::new();
                                snap.window_query_visit(&w, &mut cx, &mut |p| ids.push(p.id));
                                ids.sort_unstable();
                                LiveAnswer::Window(ids)
                            }
                            MixedQuery::Knn(p, k) => {
                                let mut ids: Vec<u64> = Vec::with_capacity(k);
                                snap.knn_query_visit(&p, k, &mut cx, &mut |f| ids.push(f.id));
                                LiveAnswer::Knn(ids)
                            }
                        };
                        out.push(LiveObs {
                            seq,
                            query: *q,
                            answer,
                        });
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            observations.extend(h.join().expect("reader thread panicked"));
        }
        writer.join().expect("writer thread panicked");
    });
    observations
}

fn p99(samples: &[u64]) -> u64 {
    let mut v = samples.to_vec();
    v.sort_unstable();
    v[((v.len() - 1) * 99) / 100]
}

/// The full soak for one learned kind.  `verify_windows`/`verify_knn`
/// follow the kind's exactness contract (point answers are always exact
/// and always verified).
fn churn_soak(kind: IndexKind, verify_windows: bool, verify_knn: bool) {
    let data = generate(Distribution::skewed_default(), 3_000, 61);
    let (reads, writes) = churn_stream(&data, 3_000, 17);
    assert!(
        writes.len() / TRIGGER >= 100,
        "workload too small for a 100-swap soak: {} writes",
        writes.len()
    );

    // Low drift trigger so hot subtrees actually retrain during the soak
    // (the point of the exercise) instead of only widening bounds.
    let policy = CompactionPolicy::default()
        .with_ops_trigger(TRIGGER)
        .with_drift_trigger(0.05);
    let server = serve_index(
        kind,
        &data,
        &IndexConfig::fast(),
        ServerConfig::default()
            .with_policy(policy)
            .with_auto_compact(false),
    );

    let mut observations = run_soak(&server, &reads, &writes);
    assert_eq!(observations.len(), reads.len());

    // 100+ swaps, all of them partial — the obs counters prove no full
    // rebuild carried any of the load.
    let stats = server.stats();
    assert!(
        stats.compactions >= 100,
        "soak produced only {} epoch swaps",
        stats.compactions
    );
    assert_eq!(
        stats.partial_compactions,
        stats.compactions,
        "{} of {} passes fell back to a full rebuild",
        stats.compactions - stats.partial_compactions,
        stats.compactions
    );
    assert!(
        stats.subtree_rebuilds > 0,
        "no subtree was ever retrained — drift never triggered"
    );
    let metrics = server.telemetry().metrics.snapshot();
    assert_eq!(metrics.counter("server.compactions_full"), Some(0));
    assert_eq!(
        metrics.counter("server.compactions_partial"),
        Some(stats.compactions)
    );
    assert_eq!(
        metrics.counter("server.subtree_rebuilds"),
        Some(stats.subtree_rebuilds)
    );

    // Pause-budget contract: every writer-visible swap pause fits the
    // budget, and the journal retains the full per-swap series.
    let journal = server.telemetry().journal.snapshot();
    assert_eq!(journal.dropped, 0, "journal dropped soak events");
    let mut pauses: Vec<u64> = Vec::new();
    let mut rebuilds: Vec<u64> = Vec::new();
    for e in &journal.events {
        match e.kind {
            EventKind::PartialCompactionEnd {
                pause_us,
                rebuild_us,
                ..
            } => {
                pauses.push(pause_us);
                rebuilds.push(rebuild_us);
            }
            EventKind::CompactionEnd { .. } => {
                panic!("full-compaction event in an all-partial soak: {:?}", e.kind)
            }
            _ => {}
        }
    }
    assert_eq!(pauses.len() as u64, stats.partial_compactions);
    let budget = policy.pause_budget_us;
    let worst = *pauses.iter().max().unwrap();
    assert!(
        worst < budget,
        "swap pause {worst}us exceeded the {budget}us budget"
    );

    // Steady-state latency: the post-warmup p99 stays within 25% of the
    // first-10-swap window.  The absolute allowance absorbs scheduler
    // noise on microsecond-scale samples; an accidental full rebuild or a
    // leak-driven slowdown is orders of magnitude larger.
    const SLACK_US: f64 = 5_000.0;
    for (name, series) in [("pause", &pauses), ("rebuild", &rebuilds)] {
        let (warmup, rest) = series.split_at(10);
        let baseline = p99(warmup);
        let late = p99(rest);
        assert!(
            late as f64 <= baseline as f64 * 1.25 + SLACK_US,
            "{name} p99 degraded over the soak: first-10 window {baseline}us, later {late}us"
        );
    }

    // Every recorded answer replays exactly against the Vec-scan oracle.
    let outcome = replay_against_oracle(
        &data,
        &writes,
        &mut observations,
        verify_windows,
        verify_knn,
    );
    assert!(
        outcome.verified(),
        "{} answers diverged from the replay oracle: {:?}",
        outcome.mismatches,
        outcome.divergences
    );
    assert!(outcome.checked > 0);
    if verify_windows && verify_knn {
        assert_eq!(outcome.checked, reads.len());
        assert_eq!(outcome.skipped, 0);
    }

    // Final state equals the fully-applied oracle.
    let mut oracle: Vec<Point> = data.clone();
    for op in &writes {
        match op {
            WriteOp::Insert(p) => oracle.push(*p),
            WriteOp::Delete(p) => oracle.retain(|x| !(x.same_location(p) && x.id == p.id)),
        }
    }
    assert_eq!(server.len(), oracle.len());
}

/// RSMI: point answers exact (verified), window/kNN approximate by
/// contract (skipped by the oracle, like the CI gate does).
#[test]
fn churn_soak_rsmi_partial_passes_carry_100_swaps() {
    churn_soak(IndexKind::Rsmi, false, false);
}

/// RSMIa: every query class is exact, so every recorded answer is held to
/// full oracle equality across all 100+ swaps.
#[test]
fn churn_soak_rsmia_every_answer_verified() {
    churn_soak(IndexKind::Rsmia, true, true);
}

/// Regression (delta-overlay ghost): a point that only ever existed in
/// the write buffer — inserted and deleted before any fold — must stay
/// dead through **partial** compaction passes, which replay the log into
/// a clone instead of rebuilding from the canonical vector.
#[test]
fn ghost_delta_delete_stays_dead_across_partial_epochs() {
    let data = generate(Distribution::skewed_default(), 1_500, 23);
    let server = serve_index(
        IndexKind::Rsmi,
        &data,
        &IndexConfig::fast(),
        ServerConfig::default().with_auto_compact(false),
    );
    let ghost = Point::with_id(0.771, 0.333, 7_000_001);
    let mut cx = QueryContext::new();

    for round in 0..3u64 {
        server.apply(WriteOp::Insert(ghost));
        assert!(server.snapshot().point_query(&ghost, &mut cx).is_some());
        server.apply(WriteOp::Delete(ghost));
        // Unrelated churn so the pass has real work besides the ghost.
        for i in 0..10 {
            let base = data[(round as usize * 10 + i) % data.len()];
            server.apply(WriteOp::Insert(Point::with_id(
                base.x,
                base.y,
                8_000_000 + round * 100 + i as u64,
            )));
        }
        assert!(server.maintain_now(), "pass {round} had nothing to fold");
        let stats = server.stats();
        assert_eq!(
            stats.partial_compactions,
            round + 1,
            "pass {round} was not partial"
        );
        assert!(
            server.snapshot().point_query(&ghost, &mut cx).is_none(),
            "ghost resurrected after partial pass {round}"
        );
    }
}
