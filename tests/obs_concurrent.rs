//! Concurrency contract of the telemetry registry (`crates/obs`): writer
//! threads hammer counters, gauges, and histograms while a reader thread
//! snapshots continuously — snapshots must always decode, counters must
//! never go backwards, and the final totals must equal the sum of every
//! thread's contribution exactly (nothing lost, nothing double-counted).
//! The wire side mirrors `tests/snapshot_roundtrip.rs`: every snapshot
//! must survive encode → decode → re-encode byte-identically.

use obs::{EventKind, EventsSnapshot, MetricsRegistry, MetricsSnapshot, Telemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn concurrent_hammering_loses_nothing_and_snapshots_stay_decodable() {
    let registry = Arc::new(MetricsRegistry::new());
    let stop = Arc::new(AtomicBool::new(false));

    // A reader snapshotting as fast as it can while the writers run: every
    // snapshot must encode/decode byte-identically and the shared counter
    // must be monotone across snapshots.
    let reader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            let mut last_shared = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = registry.snapshot();
                let bytes = snap.encode();
                let decoded = MetricsSnapshot::decode(&bytes).expect("mid-run snapshot decodes");
                assert_eq!(decoded.encode(), bytes, "re-encode is byte-identical");
                let shared = snap.counter("shared.ops").unwrap_or(0);
                assert!(
                    shared >= last_shared,
                    "counter went backwards: {last_shared} -> {shared}"
                );
                last_shared = shared;
                snapshots += 1;
            }
            snapshots
        })
    };

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Per-thread handles: the Arc-backed clones all hit the
                // same atomics as fresh name lookups would.
                let shared = registry.counter("shared.ops");
                let own = registry.counter(&format!("writer.{t}.ops"));
                let gauge = registry.gauge("shared.level");
                let hist = registry.histogram("shared.latency");
                for i in 0..OPS_PER_WRITER {
                    shared.inc();
                    own.inc();
                    gauge.add(1);
                    gauge.add(-1);
                    hist.record(i % 1_000);
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    let snapshots_taken = reader.join().expect("reader thread");
    assert!(snapshots_taken > 0, "the reader never snapshotted");

    // Exact totals: the shared counter saw every increment, the per-thread
    // counters partition it, the gauge's +1/-1 pairs cancel, and the
    // histogram counted every record with a true sum.
    let total = WRITERS as u64 * OPS_PER_WRITER;
    let finale = registry.snapshot();
    assert_eq!(finale.counter("shared.ops"), Some(total));
    let per_thread: u64 = (0..WRITERS)
        .map(|t| finale.counter(&format!("writer.{t}.ops")).unwrap())
        .sum();
    assert_eq!(per_thread, total);
    assert_eq!(finale.gauge("shared.level"), Some(0));
    let hist = finale.histogram("shared.latency").expect("histogram");
    assert_eq!(hist.count, total);
    let sum_per_writer: u64 = (0..OPS_PER_WRITER).map(|i| i % 1_000).sum();
    assert_eq!(hist.sum, sum_per_writer * WRITERS as u64);
    assert_eq!(hist.min, 0);
    assert_eq!(hist.max, 999);

    // The final snapshot round-trips byte-identically too.
    let bytes = finale.encode();
    let decoded = MetricsSnapshot::decode(&bytes).expect("final snapshot decodes");
    assert_eq!(decoded, finale);
    assert_eq!(decoded.encode(), bytes);
}

#[test]
fn concurrent_journal_keeps_sequence_contiguous_and_round_trips() {
    let telemetry = Arc::new(Telemetry::with_journal_capacity(64 * WRITERS));
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let telemetry = Arc::clone(&telemetry);
            scope.spawn(move || {
                for _ in 0..64 {
                    telemetry
                        .journal
                        .record(EventKind::ConnOpen { conn: t as u64 });
                }
            });
        }
    });
    let snap = telemetry.journal.snapshot();
    // Nothing was evicted (capacity == records), so the sequence numbers
    // are exactly 1..=N in order regardless of thread interleaving.
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.events.len(), WRITERS * 64);
    for (i, e) in snap.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64 + 1);
    }
    let bytes = snap.encode();
    let decoded = EventsSnapshot::decode(&bytes).expect("events decode");
    assert_eq!(decoded.encode(), bytes);
}
