//! Determinism of the sharded serving engine: for exact inner families the
//! sharded composition must return **identical** answers to the unsharded
//! index on the same data — window result sets, kNN sequences under the
//! `(distance, id)` tie-break, and point lookups — regardless of shard
//! count or batch thread count.
//!
//! CI runs this suite in debug *and* release mode, because the batch
//! executor's threaded paths only get real interleaving under optimised
//! builds.

use common::{QueryContext, SpatialIndex};
use datagen::{generate, queries, Distribution};
use geom::Point;
use registry::{build_index, BaseKind, IndexConfig, IndexKind};

fn cfg() -> IndexConfig {
    IndexConfig::fast().with_shards(5)
}

/// Window answers as id-sorted point lists — "byte-identical" modulo the
/// (unspecified) visit order of the trait.
fn window_sets(index: &dyn SpatialIndex, windows: &[geom::Rect]) -> Vec<Vec<Point>> {
    let mut cx = QueryContext::new();
    let mut out = index.window_queries(windows, &mut cx);
    for set in &mut out {
        set.sort_by_key(|p| p.id);
    }
    out
}

#[test]
fn sharded_matches_unsharded_for_every_exact_kind() {
    let data = generate(Distribution::OsmLike, 6_000, 31);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 40, 33);
    let knn_qs = queries::knn_queries(&data, 30, 35);
    let point_qs = queries::point_queries(&data, 200, 37);
    let negative_qs = queries::negative_point_queries(&data, 50, 39);

    for base in BaseKind::all() {
        if !base.unsharded().exact_windows() {
            continue;
        }
        let flat = build_index(base.unsharded(), &data, &cfg());
        let sharded = build_index(base.sharded(), &data, &cfg());
        let mut cx = QueryContext::new();

        assert_eq!(
            window_sets(flat.as_ref(), &windows),
            window_sets(sharded.as_ref(), &windows),
            "{}: window sets differ from unsharded",
            base.sharded().name()
        );

        for q in &knn_qs {
            for k in [1usize, 10, 100] {
                let a = flat.knn_query(q, k, &mut cx);
                let b = sharded.knn_query(q, k, &mut cx);
                assert_eq!(
                    a.iter().map(|p| p.id).collect::<Vec<_>>(),
                    b.iter().map(|p| p.id).collect::<Vec<_>>(),
                    "{}: kNN (distance, id) sequence differs, k = {k}",
                    base.sharded().name()
                );
            }
        }

        for q in point_qs.iter().chain(&negative_qs) {
            assert_eq!(
                flat.point_query(q, &mut cx).map(|p| p.id),
                sharded.point_query(q, &mut cx).map(|p| p.id),
                "{}: point answer differs",
                base.sharded().name()
            );
        }
    }
}

#[test]
fn knn_distance_ties_resolve_by_id_in_every_exact_kind() {
    // A lattice makes distance ties the common case instead of a
    // measure-zero event: from a lattice point, each ring of neighbours is
    // equidistant, so any k cutting through a ring exposes the tie-break.
    let side = 21usize;
    let data: Vec<Point> = (0..side * side)
        .map(|i| {
            let (r, c) = (i / side, i % side);
            Point::with_id(
                c as f64 / (side - 1) as f64,
                r as f64 / (side - 1) as f64,
                i as u64,
            )
        })
        .collect();
    let queries = [
        Point::new(0.5, 0.5),
        Point::new(0.25, 0.75),
        Point::new(0.0, 0.0),
    ];

    for base in BaseKind::all() {
        if !base.unsharded().exact_knn() {
            continue;
        }
        let flat = build_index(base.unsharded(), &data, &cfg());
        let sharded = build_index(base.sharded(), &data, &cfg());
        let mut cx = QueryContext::new();
        for q in &queries {
            // k = 3 and 7 cut through the first rings of 4 tied points.
            for k in [3usize, 7, 20] {
                let truth: Vec<u64> = common::brute_force::knn_query(&data, q, k)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                for (label, index) in [("flat", &flat), ("sharded", &sharded)] {
                    assert_eq!(
                        index
                            .knn_query(q, k, &mut cx)
                            .iter()
                            .map(|p| p.id)
                            .collect::<Vec<_>>(),
                        truth,
                        "{} {}: tie not broken by id, k = {k}, q = {q:?}",
                        base.sharded().name(),
                        label
                    );
                }
            }
        }
    }
}

#[test]
fn approximate_kinds_are_self_deterministic_when_sharded() {
    // RSMI and ZM answer windows/kNN approximately, so their sharded
    // answers legitimately differ from the unsharded index (each shard
    // learns its own models).  What must still hold: two identical builds
    // answer identically, and answers never contain false positives.
    let data = generate(Distribution::skewed_default(), 5_000, 41);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 30, 43);
    for base in [BaseKind::Rsmi, BaseKind::Zm] {
        let a = build_index(base.sharded(), &data, &cfg());
        let b = build_index(base.sharded(), &data, &cfg());
        assert_eq!(
            window_sets(a.as_ref(), &windows),
            window_sets(b.as_ref(), &windows),
            "{}: rebuild changed answers",
            base.sharded().name()
        );
        let mut cx = QueryContext::new();
        for w in &windows {
            for p in a.window_query(w, &mut cx) {
                assert!(w.contains(&p), "{}: false positive", base.sharded().name());
            }
        }
    }
}

#[test]
fn batch_thread_count_never_changes_results() {
    let data = generate(Distribution::TigerLike, 8_000, 45);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 60, 47);
    let point_qs = queries::point_queries(&data, 300, 49);
    let knn_qs = queries::knn_queries(&data, 60, 51);

    let seq = build_index(BaseKind::Kdb.sharded(), &data, &cfg().with_threads(1));
    let par = build_index(BaseKind::Kdb.sharded(), &data, &cfg().with_threads(4));

    let (mut cx1, mut cx4) = (QueryContext::new(), QueryContext::new());
    assert_eq!(
        seq.point_queries(&point_qs, &mut cx1),
        par.point_queries(&point_qs, &mut cx4)
    );
    assert_eq!(
        seq.window_queries(&windows, &mut cx1),
        par.window_queries(&windows, &mut cx4)
    );
    assert_eq!(
        seq.knn_queries(&knn_qs, 15, &mut cx1),
        par.knn_queries(&knn_qs, 15, &mut cx4)
    );
    assert_eq!(
        cx1.stats, cx4.stats,
        "merged batch statistics must not depend on the thread count"
    );
}

/// The acceptance-scale workload: ≥100k points, a window workload that
/// provably prunes shards, answers byte-identical to the unsharded index.
#[test]
fn large_scale_window_workload_prunes_and_stays_identical() {
    let data = generate(Distribution::skewed_default(), 100_000, 53);
    let windows = queries::hotspot_window_queries(&data, queries::WindowSpec::default(), 50, 55);
    let cfg = IndexConfig::default().with_shards(8);
    for base in [BaseKind::Hrr, BaseKind::Grid] {
        let flat = build_index(base.unsharded(), &data, &cfg);
        let sharded = build_index(base.sharded(), &data, &cfg);

        assert_eq!(
            window_sets(flat.as_ref(), &windows),
            window_sets(sharded.as_ref(), &windows),
            "{}: 100k window answers differ",
            base.sharded().name()
        );

        let mut cx = QueryContext::new();
        let _ = sharded.window_queries(&windows, &mut cx);
        let stats = cx.take_stats();
        assert!(
            stats.shards_pruned > 0,
            "{}: hotspot windows over 100k points pruned nothing",
            base.sharded().name()
        );
        assert_eq!(
            stats.shards_visited + stats.shards_pruned,
            8 * windows.len() as u64,
            "{}: planner lost track of shards",
            base.sharded().name()
        );
    }
}

#[test]
fn mixed_workload_agrees_between_sharded_and_unsharded() {
    let data = generate(Distribution::Uniform, 6_000, 57);
    let mix = queries::mixed_workload(&data, queries::WindowSpec::default(), 12, 120, 59);
    let flat = build_index(IndexKind::Hrr, &data, &cfg());
    let sharded = build_index(BaseKind::Hrr.sharded(), &data, &cfg());
    let mut cx = QueryContext::new();
    for q in &mix {
        match q {
            queries::MixedQuery::Point(p) => {
                assert_eq!(
                    flat.point_query(p, &mut cx).map(|f| f.id),
                    sharded.point_query(p, &mut cx).map(|f| f.id)
                );
            }
            queries::MixedQuery::Window(w) => {
                let mut a: Vec<u64> = flat.window_query(w, &mut cx).iter().map(|p| p.id).collect();
                let mut b: Vec<u64> = sharded
                    .window_query(w, &mut cx)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
            queries::MixedQuery::Knn(p, k) => {
                assert_eq!(
                    flat.knn_query(p, *k, &mut cx)
                        .iter()
                        .map(|f| f.id)
                        .collect::<Vec<_>>(),
                    sharded
                        .knn_query(p, *k, &mut cx)
                        .iter()
                        .map(|f| f.id)
                        .collect::<Vec<_>>()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cross-process determinism: router + shard-server subprocesses
// ---------------------------------------------------------------------
//
// The distributed topology must be *indistinguishable* from the
// single-process sharded index: the `experiments shard-serve` and
// `route-serve` subprocesses below serve the very same sharded snapshot
// the in-process reference is loaded from, and every one of the five
// query classes must agree — answers byte-identical (modulo the
// unspecified visit order of set-valued responses, normalised by id), and
// the router's fan-out counters (`router.shards_visited` /
// `router.shards_pruned`) matching the engine planner's exactly.

mod cross_process {
    use super::*;
    use net::{NetClient, RemoteIndex};
    use std::io::BufRead;
    use std::path::PathBuf;
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    const SHARDS: usize = 2;

    fn dist_cfg() -> IndexConfig {
        IndexConfig::fast().with_shards(SHARDS)
    }

    /// Locates (building if necessary) the `experiments` binary next to
    /// the test executable's profile directory.
    fn experiments_bin() -> PathBuf {
        let exe = std::env::current_exe().expect("current_exe");
        let profile_dir = exe
            .parent() // deps/
            .and_then(|d| d.parent()) // debug/ or release/
            .expect("profile dir")
            .to_path_buf();
        let bin = profile_dir.join(format!("experiments{}", std::env::consts::EXE_SUFFIX));
        if bin.exists() {
            return bin;
        }
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut args = vec!["build", "-p", "bench", "--bin", "experiments"];
        if profile_dir.file_name().is_some_and(|n| n == "release") {
            args.push("--release");
        }
        let status = Command::new(cargo)
            .args(&args)
            .status()
            .expect("spawn cargo build for the experiments binary");
        assert!(status.success(), "building the experiments binary failed");
        assert!(bin.exists(), "no experiments binary at {}", bin.display());
        bin
    }

    /// A spawned serving subprocess plus the address it printed.  The Drop
    /// guard kills the child so a failing assertion never leaks a process.
    struct Proc {
        child: Child,
        addr: String,
    }

    impl Proc {
        /// Spawns the binary and scans its stdout for the
        /// "... listening on ADDR ..." line.
        fn spawn(bin: &PathBuf, args: &[&str]) -> Proc {
            let mut child = Command::new(bin)
                .args(args)
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn serving subprocess");
            let stdout = child.stdout.take().expect("child stdout");
            let mut lines = std::io::BufReader::new(stdout).lines();
            let addr = loop {
                let line = lines
                    .next()
                    .expect("child exited before printing its address")
                    .expect("read child stdout");
                if let Some(rest) = line.split("listening on ").nth(1) {
                    break rest
                        .split_whitespace()
                        .next()
                        .expect("address after 'listening on'")
                        .to_string();
                }
            };
            // Keep draining stdout in the background so the child never
            // blocks on a full pipe.
            std::thread::spawn(move || for _ in lines {});
            Proc { child, addr }
        }

        /// Waits (bounded) for the child to exit on its own; panics if it
        /// is still running at the deadline.
        fn wait_exit(&mut self, deadline: Duration) {
            let until = Instant::now() + deadline;
            loop {
                match self.child.try_wait().expect("try_wait") {
                    Some(status) => {
                        assert!(status.success(), "subprocess exited with {status}");
                        return;
                    }
                    None if Instant::now() >= until => {
                        panic!("subprocess did not exit within {deadline:?}")
                    }
                    None => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
    }

    impl Drop for Proc {
        fn drop(&mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }

    /// Builds a 2-shard sharded-grid snapshot over `data`, spawns one
    /// shard-serve subprocess per shard (plus `extra_shard0` more replicas
    /// of shard 0) and a route-serve subprocess over all of them, and
    /// returns (shard procs, router proc, the in-process reference index).
    fn spawn_cluster(
        data: &[Point],
        extra_shard0: usize,
        tag: &str,
    ) -> (Vec<Proc>, Proc, Box<dyn SpatialIndex>) {
        let bin = experiments_bin();
        let path = std::env::temp_dir().join(format!("xproc-{tag}-{}.snap", std::process::id()));
        let index = build_index(BaseKind::Grid.sharded(), data, &dist_cfg());
        registry::save_index(index.as_ref(), &path).expect("save sharded snapshot");
        let path_s = path.to_string_lossy().to_string();

        let mut shard_procs = Vec::new();
        let mut addr_spec = Vec::new();
        for shard in 0..SHARDS {
            let shard_s = shard.to_string();
            let copies = if shard == 0 { 1 + extra_shard0 } else { 1 };
            let mut replicas = Vec::new();
            for _ in 0..copies {
                let p = Proc::spawn(
                    &bin,
                    &[
                        "shard-serve",
                        "--path",
                        &path_s,
                        "--shard",
                        &shard_s,
                        "--port",
                        "0",
                    ],
                );
                replicas.push(p.addr.clone());
                shard_procs.push(p);
            }
            addr_spec.push(replicas.join(","));
        }
        let router = Proc::spawn(
            &bin,
            &[
                "route-serve",
                "--path",
                &path_s,
                "--shard-addrs",
                &addr_spec.join(";"),
                "--port",
                "0",
            ],
        );
        let _ = std::fs::remove_file(&path);
        (shard_procs, router, index)
    }

    /// Five-class answer comparison between the routed topology and the
    /// in-process reference.
    fn assert_all_classes_agree(
        remote: &RemoteIndex,
        local: &dyn SpatialIndex,
        data: &[Point],
        seed: u64,
    ) {
        let mut cx = QueryContext::new();
        let windows = queries::window_queries(data, queries::WindowSpec::default(), 20, seed);
        let knn_qs = queries::knn_queries(data, 15, seed + 2);
        let point_qs = queries::point_queries(data, 60, seed + 4);
        let negative_qs = queries::negative_point_queries(data, 20, seed + 6);
        let probes: Vec<Point> = data.iter().step_by(101).copied().collect();

        for q in point_qs.iter().chain(&negative_qs) {
            assert_eq!(
                remote.point_query(q, &mut cx),
                local.point_query(q, &mut cx),
                "cross-process point answer diverged at {q:?}"
            );
        }
        for w in &windows {
            let mut a = remote.window_query(w, &mut cx);
            let mut b = local.window_query(w, &mut cx);
            a.sort_by_key(|p| p.id);
            b.sort_by_key(|p| p.id);
            assert_eq!(a, b, "cross-process window set diverged at {w:?}");
        }
        for q in &knn_qs {
            for k in [1usize, 9, 33] {
                assert_eq!(
                    remote.knn_query(q, k, &mut cx),
                    local.knn_query(q, k, &mut cx),
                    "cross-process kNN sequence diverged at {q:?}, k = {k}"
                );
            }
            let mut a = remote.range_query(q, 0.04, &mut cx);
            let mut b = local.range_query(q, 0.04, &mut cx);
            a.sort_by_key(|p| p.id);
            b.sort_by_key(|p| p.id);
            assert_eq!(a, b, "cross-process range set diverged at {q:?}");
        }
        let pair_ids = |index: &dyn SpatialIndex| {
            let mut cx = QueryContext::new();
            let mut pairs = Vec::new();
            index.distance_join_probes(&probes, 0.02, &mut cx, &mut |m, p| {
                pairs.push((p.id, m.id));
            });
            pairs.sort_unstable();
            pairs
        };
        assert_eq!(
            pair_ids(remote),
            pair_ids(local),
            "cross-process join pair set diverged"
        );
    }

    #[test]
    fn router_subprocesses_match_the_in_process_sharded_index() {
        for (i, dist) in [
            Distribution::Uniform,
            Distribution::skewed_default(),
            Distribution::OsmLike,
        ]
        .into_iter()
        .enumerate()
        {
            let data = generate(dist, 2_500, 301 + i as u64);
            let (mut shard_procs, mut router, mut local) =
                spawn_cluster(&data, 0, &format!("det{i}"));
            let mut remote = RemoteIndex::connect_retry(&router.addr, Duration::from_secs(10))
                .expect("connect router");

            assert_all_classes_agree(&remote, local.as_ref(), &data, 401 + i as u64);

            // Fan-out accounting: the router's visited/pruned deltas over a
            // known workload must equal the engine planner's.
            let mut client = NetClient::connect(&router.addr).expect("connect");
            let scrape = |client: &mut NetClient| {
                let (_, snap) = client.stats().expect("stats");
                (
                    snap.counter("router.shards_visited").unwrap_or(0),
                    snap.counter("router.shards_pruned").unwrap_or(0),
                )
            };
            let windows = queries::window_queries(&data, queries::WindowSpec::default(), 10, 83);
            let (v0, p0) = scrape(&mut client);
            for w in &windows {
                client.window(w).expect("window");
            }
            let (v1, p1) = scrape(&mut client);
            let mut cx = QueryContext::new();
            for w in &windows {
                let _ = local.window_query(w, &mut cx);
            }
            let stats = cx.take_stats();
            assert_eq!(v1 - v0, stats.shards_visited, "visited fan-out diverged");
            assert_eq!(p1 - p0, stats.shards_pruned, "pruned fan-out diverged");

            // Writes route by key to the owning shard; both sides must
            // keep agreeing afterwards.
            for j in 0..20u64 {
                let p = Point::with_id(
                    (j as f64 * 0.47 + 0.13) % 1.0,
                    (j as f64 * 0.29 + 0.31) % 1.0,
                    7_000_000 + j,
                );
                remote.insert(p);
                local.insert(p);
            }
            for p in data.iter().step_by(173).take(10) {
                assert_eq!(remote.delete(p), local.delete(p), "delete outcome diverged");
            }
            assert_all_classes_agree(&remote, local.as_ref(), &data, 501 + i as u64);

            // Client-driven shutdown propagates: the router drains, then
            // tells every shard server to drain, and all processes exit.
            drop(remote);
            let mut c = NetClient::connect(&router.addr).expect("connect for shutdown");
            c.shutdown_server().expect("shutdown ack");
            drop(c);
            router.wait_exit(Duration::from_secs(30));
            for p in &mut shard_procs {
                p.wait_exit(Duration::from_secs(30));
            }
        }
    }

    #[test]
    fn sigkill_chaos_replica_loss_yields_zero_wrong_answers() {
        let data = generate(Distribution::skewed_default(), 2_000, 811);
        // Shard 0 runs two replicas; shard 1 runs one.
        let (mut shard_procs, mut router, mut local) = spawn_cluster(&data, 1, "chaos");
        let remote = RemoteIndex::connect_retry(&router.addr, Duration::from_secs(10))
            .expect("connect router");
        let windows = queries::window_queries(&data, queries::WindowSpec::default(), 12, 813);
        let mut cx = QueryContext::new();

        let check_reads =
            |remote: &RemoteIndex, local: &dyn SpatialIndex, cx: &mut QueryContext| {
                for w in &windows {
                    let mut a = remote.window_query(w, cx);
                    let mut b = local.window_query(w, cx);
                    a.sort_by_key(|p| p.id);
                    b.sort_by_key(|p| p.id);
                    assert_eq!(a, b, "chaos read produced a wrong answer at {w:?}");
                }
            };

        // Warm both shard-0 replicas into the round-robin.
        check_reads(&remote, local.as_ref(), &mut cx);

        // SIGKILL one shard-0 replica mid-run (spawn order is shard-major,
        // so index 0 is shard 0's first replica).
        shard_procs[0].child.kill().expect("SIGKILL replica");
        let _ = shard_procs[0].child.wait();

        // Every subsequent read must fail over transparently and keep
        // returning byte-identical answers — capacity degrades,
        // correctness does not.
        for _ in 0..4 {
            check_reads(&remote, local.as_ref(), &mut cx);
        }

        // Writes to the degraded shard still apply and are read back.
        let mut remote = remote;
        let p = Point::with_id(0.37, 0.61, 9_100_001);
        remote.insert(p);
        local.insert(p);
        assert_eq!(remote.point_query(&p, &mut cx), Some(p));

        // The failover is visible in the router's telemetry.
        let mut client = NetClient::connect(&router.addr).expect("connect");
        let (_, snap) = client.stats().expect("stats");
        assert!(
            snap.counter("router.replica_failovers").unwrap_or(0) >= 1,
            "replica failover was not recorded"
        );

        // Graceful shutdown still propagates to the surviving children.
        drop(remote);
        client.shutdown_server().expect("shutdown ack");
        drop(client);
        router.wait_exit(Duration::from_secs(30));
        for p in shard_procs.iter_mut().skip(1) {
            p.wait_exit(Duration::from_secs(30));
        }
    }
}
