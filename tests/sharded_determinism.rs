//! Determinism of the sharded serving engine: for exact inner families the
//! sharded composition must return **identical** answers to the unsharded
//! index on the same data — window result sets, kNN sequences under the
//! `(distance, id)` tie-break, and point lookups — regardless of shard
//! count or batch thread count.
//!
//! CI runs this suite in debug *and* release mode, because the batch
//! executor's threaded paths only get real interleaving under optimised
//! builds.

use common::{QueryContext, SpatialIndex};
use datagen::{generate, queries, Distribution};
use geom::Point;
use registry::{build_index, BaseKind, IndexConfig, IndexKind};

fn cfg() -> IndexConfig {
    IndexConfig::fast().with_shards(5)
}

/// Window answers as id-sorted point lists — "byte-identical" modulo the
/// (unspecified) visit order of the trait.
fn window_sets(index: &dyn SpatialIndex, windows: &[geom::Rect]) -> Vec<Vec<Point>> {
    let mut cx = QueryContext::new();
    let mut out = index.window_queries(windows, &mut cx);
    for set in &mut out {
        set.sort_by_key(|p| p.id);
    }
    out
}

#[test]
fn sharded_matches_unsharded_for_every_exact_kind() {
    let data = generate(Distribution::OsmLike, 6_000, 31);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 40, 33);
    let knn_qs = queries::knn_queries(&data, 30, 35);
    let point_qs = queries::point_queries(&data, 200, 37);
    let negative_qs = queries::negative_point_queries(&data, 50, 39);

    for base in BaseKind::all() {
        if !base.unsharded().exact_windows() {
            continue;
        }
        let flat = build_index(base.unsharded(), &data, &cfg());
        let sharded = build_index(base.sharded(), &data, &cfg());
        let mut cx = QueryContext::new();

        assert_eq!(
            window_sets(flat.as_ref(), &windows),
            window_sets(sharded.as_ref(), &windows),
            "{}: window sets differ from unsharded",
            base.sharded().name()
        );

        for q in &knn_qs {
            for k in [1usize, 10, 100] {
                let a = flat.knn_query(q, k, &mut cx);
                let b = sharded.knn_query(q, k, &mut cx);
                assert_eq!(
                    a.iter().map(|p| p.id).collect::<Vec<_>>(),
                    b.iter().map(|p| p.id).collect::<Vec<_>>(),
                    "{}: kNN (distance, id) sequence differs, k = {k}",
                    base.sharded().name()
                );
            }
        }

        for q in point_qs.iter().chain(&negative_qs) {
            assert_eq!(
                flat.point_query(q, &mut cx).map(|p| p.id),
                sharded.point_query(q, &mut cx).map(|p| p.id),
                "{}: point answer differs",
                base.sharded().name()
            );
        }
    }
}

#[test]
fn knn_distance_ties_resolve_by_id_in_every_exact_kind() {
    // A lattice makes distance ties the common case instead of a
    // measure-zero event: from a lattice point, each ring of neighbours is
    // equidistant, so any k cutting through a ring exposes the tie-break.
    let side = 21usize;
    let data: Vec<Point> = (0..side * side)
        .map(|i| {
            let (r, c) = (i / side, i % side);
            Point::with_id(
                c as f64 / (side - 1) as f64,
                r as f64 / (side - 1) as f64,
                i as u64,
            )
        })
        .collect();
    let queries = [
        Point::new(0.5, 0.5),
        Point::new(0.25, 0.75),
        Point::new(0.0, 0.0),
    ];

    for base in BaseKind::all() {
        if !base.unsharded().exact_knn() {
            continue;
        }
        let flat = build_index(base.unsharded(), &data, &cfg());
        let sharded = build_index(base.sharded(), &data, &cfg());
        let mut cx = QueryContext::new();
        for q in &queries {
            // k = 3 and 7 cut through the first rings of 4 tied points.
            for k in [3usize, 7, 20] {
                let truth: Vec<u64> = common::brute_force::knn_query(&data, q, k)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                for (label, index) in [("flat", &flat), ("sharded", &sharded)] {
                    assert_eq!(
                        index
                            .knn_query(q, k, &mut cx)
                            .iter()
                            .map(|p| p.id)
                            .collect::<Vec<_>>(),
                        truth,
                        "{} {}: tie not broken by id, k = {k}, q = {q:?}",
                        base.sharded().name(),
                        label
                    );
                }
            }
        }
    }
}

#[test]
fn approximate_kinds_are_self_deterministic_when_sharded() {
    // RSMI and ZM answer windows/kNN approximately, so their sharded
    // answers legitimately differ from the unsharded index (each shard
    // learns its own models).  What must still hold: two identical builds
    // answer identically, and answers never contain false positives.
    let data = generate(Distribution::skewed_default(), 5_000, 41);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 30, 43);
    for base in [BaseKind::Rsmi, BaseKind::Zm] {
        let a = build_index(base.sharded(), &data, &cfg());
        let b = build_index(base.sharded(), &data, &cfg());
        assert_eq!(
            window_sets(a.as_ref(), &windows),
            window_sets(b.as_ref(), &windows),
            "{}: rebuild changed answers",
            base.sharded().name()
        );
        let mut cx = QueryContext::new();
        for w in &windows {
            for p in a.window_query(w, &mut cx) {
                assert!(w.contains(&p), "{}: false positive", base.sharded().name());
            }
        }
    }
}

#[test]
fn batch_thread_count_never_changes_results() {
    let data = generate(Distribution::TigerLike, 8_000, 45);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 60, 47);
    let point_qs = queries::point_queries(&data, 300, 49);
    let knn_qs = queries::knn_queries(&data, 60, 51);

    let seq = build_index(BaseKind::Kdb.sharded(), &data, &cfg().with_threads(1));
    let par = build_index(BaseKind::Kdb.sharded(), &data, &cfg().with_threads(4));

    let (mut cx1, mut cx4) = (QueryContext::new(), QueryContext::new());
    assert_eq!(
        seq.point_queries(&point_qs, &mut cx1),
        par.point_queries(&point_qs, &mut cx4)
    );
    assert_eq!(
        seq.window_queries(&windows, &mut cx1),
        par.window_queries(&windows, &mut cx4)
    );
    assert_eq!(
        seq.knn_queries(&knn_qs, 15, &mut cx1),
        par.knn_queries(&knn_qs, 15, &mut cx4)
    );
    assert_eq!(
        cx1.stats, cx4.stats,
        "merged batch statistics must not depend on the thread count"
    );
}

/// The acceptance-scale workload: ≥100k points, a window workload that
/// provably prunes shards, answers byte-identical to the unsharded index.
#[test]
fn large_scale_window_workload_prunes_and_stays_identical() {
    let data = generate(Distribution::skewed_default(), 100_000, 53);
    let windows = queries::hotspot_window_queries(&data, queries::WindowSpec::default(), 50, 55);
    let cfg = IndexConfig::default().with_shards(8);
    for base in [BaseKind::Hrr, BaseKind::Grid] {
        let flat = build_index(base.unsharded(), &data, &cfg);
        let sharded = build_index(base.sharded(), &data, &cfg);

        assert_eq!(
            window_sets(flat.as_ref(), &windows),
            window_sets(sharded.as_ref(), &windows),
            "{}: 100k window answers differ",
            base.sharded().name()
        );

        let mut cx = QueryContext::new();
        let _ = sharded.window_queries(&windows, &mut cx);
        let stats = cx.take_stats();
        assert!(
            stats.shards_pruned > 0,
            "{}: hotspot windows over 100k points pruned nothing",
            base.sharded().name()
        );
        assert_eq!(
            stats.shards_visited + stats.shards_pruned,
            8 * windows.len() as u64,
            "{}: planner lost track of shards",
            base.sharded().name()
        );
    }
}

#[test]
fn mixed_workload_agrees_between_sharded_and_unsharded() {
    let data = generate(Distribution::Uniform, 6_000, 57);
    let mix = queries::mixed_workload(&data, queries::WindowSpec::default(), 12, 120, 59);
    let flat = build_index(IndexKind::Hrr, &data, &cfg());
    let sharded = build_index(BaseKind::Hrr.sharded(), &data, &cfg());
    let mut cx = QueryContext::new();
    for q in &mix {
        match q {
            queries::MixedQuery::Point(p) => {
                assert_eq!(
                    flat.point_query(p, &mut cx).map(|f| f.id),
                    sharded.point_query(p, &mut cx).map(|f| f.id)
                );
            }
            queries::MixedQuery::Window(w) => {
                let mut a: Vec<u64> = flat.window_query(w, &mut cx).iter().map(|p| p.id).collect();
                let mut b: Vec<u64> = sharded
                    .window_query(w, &mut cx)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
            queries::MixedQuery::Knn(p, k) => {
                assert_eq!(
                    flat.knn_query(p, *k, &mut cx)
                        .iter()
                        .map(|f| f.id)
                        .collect::<Vec<_>>(),
                    sharded
                        .knn_query(p, *k, &mut cx)
                        .iter()
                        .map(|f| f.id)
                        .collect::<Vec<_>>()
                );
            }
        }
    }
}
