//! Malformed-frame rejection for the network wire protocol: every damaged
//! or hostile byte stream must produce a typed [`net::NetError`] — never a
//! panic, never an unbounded allocation.  This mirrors
//! `tests/snapshot_corruption.rs` for the on-disk format: each corruption
//! class the framing defends against gets its own case — bad magic,
//! unsupported version, oversized length prefix, truncation at every cut,
//! and CRC-detected payload damage — plus the message-level failure modes
//! (unknown tags, bogus element counts, trailing bytes, desynchronised
//! request/response streams).

use geom::{Point, Rect};
use net::wire::{frame_bytes, read_frame, HEADER_LEN, MAGIC, MAX_FRAME_LEN, PROTOCOL_VERSION};
use net::{NetError, Request, Response};
use std::io::Cursor;

/// A representative well-formed frame carrying a kNN request.
fn valid_frame() -> Vec<u8> {
    frame_bytes(&Request::Knn(Point::with_id(0.25, 0.75, 9), 16).encode())
}

fn decode_frame(bytes: &[u8]) -> Result<Option<Vec<u8>>, NetError> {
    read_frame(&mut Cursor::new(bytes))
}

#[test]
fn well_formed_frames_decode() {
    let frame = valid_frame();
    let payload = decode_frame(&frame).unwrap().expect("payload");
    assert_eq!(
        Request::decode(&payload).unwrap(),
        Request::Knn(Point::with_id(0.25, 0.75, 9), 16)
    );
}

#[test]
fn clean_eof_at_frame_boundary_is_not_an_error() {
    // A peer closing the connection between messages is a normal hangup,
    // not corruption.
    assert!(decode_frame(&[]).unwrap().is_none());
}

#[test]
fn bad_magic_is_rejected() {
    let mut frame = valid_frame();
    frame[0] ^= 0xFF;
    assert!(matches!(decode_frame(&frame), Err(NetError::BadMagic)));
    // An arbitrary non-protocol stream fails the same way.
    assert!(matches!(
        decode_frame(b"GET / HTTP/1.1\r\n\r\n"),
        Err(NetError::BadMagic)
    ));
}

#[test]
fn unsupported_version_is_rejected() {
    let mut frame = valid_frame();
    // The version field sits directly after the 4-byte magic.
    frame[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert!(matches!(
        decode_frame(&frame),
        Err(NetError::UnsupportedVersion(7))
    ));
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // A hostile length prefix must be refused from the 10 header bytes
    // alone — no payload needs to follow, and no buffer is allocated.
    for claimed in [MAX_FRAME_LEN + 1, u32::MAX] {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        header.extend_from_slice(&claimed.to_le_bytes());
        match decode_frame(&header) {
            Err(NetError::FrameTooLarge(got)) => assert_eq!(got, claimed),
            other => panic!("claimed len {claimed}: expected FrameTooLarge, got {other:?}"),
        }
    }
    // The cap itself is inclusive: a length of exactly MAX_FRAME_LEN is
    // not FrameTooLarge (the truncated body is a different error).
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header.extend_from_slice(&MAX_FRAME_LEN.to_le_bytes());
    assert!(matches!(decode_frame(&header), Err(NetError::Truncated)));
}

#[test]
fn truncated_frames_are_rejected_at_every_cut() {
    // Cut the stream after every prefix of a valid frame: mid-magic,
    // mid-version, mid-length, mid-payload, and mid-CRC must all surface
    // as Truncated — only the empty stream is a clean EOF.
    let frame = valid_frame();
    for keep in 1..frame.len() {
        match decode_frame(&frame[..keep]) {
            Err(NetError::Truncated) => {}
            Ok(_) => panic!("cut at {keep} decoded successfully"),
            Err(other) => panic!("cut at {keep}: expected Truncated, got {other}"),
        }
    }
}

#[test]
fn checksum_mismatch_is_reported_for_every_payload_byte() {
    // Flip one bit in each payload byte (and in the trailing CRC itself);
    // the frame CRC must catch every single-byte change.
    let frame = valid_frame();
    for at in HEADER_LEN..frame.len() {
        let mut corrupted = frame.clone();
        corrupted[at] ^= 0x10;
        match decode_frame(&corrupted) {
            Err(NetError::ChecksumMismatch) => {}
            Ok(_) => panic!("bit flip at {at} decoded successfully"),
            Err(other) => panic!("bit flip at {at}: expected ChecksumMismatch, got {other}"),
        }
    }
}

#[test]
fn every_header_bit_flip_is_detected() {
    // Header damage shifts the parse instead of the payload; it must still
    // land on a typed error, never a silently different message.
    let frame = valid_frame();
    for at in 0..HEADER_LEN {
        let mut corrupted = frame.clone();
        corrupted[at] ^= 0x04;
        match decode_frame(&corrupted) {
            Err(
                NetError::BadMagic
                | NetError::UnsupportedVersion(_)
                | NetError::FrameTooLarge(_)
                | NetError::Truncated
                | NetError::ChecksumMismatch,
            ) => {}
            Ok(_) => panic!("header flip at {at} decoded successfully"),
            Err(other) => panic!("header flip at {at}: unexpected error {other}"),
        }
    }
}

#[test]
fn unknown_tags_are_rejected() {
    // An unassigned request tag.
    assert!(matches!(
        Request::decode(&[0x7F]),
        Err(NetError::Corrupt(_))
    ));
    // An unassigned response tag.
    assert!(matches!(
        Response::decode(&[0xFF]),
        Err(NetError::Corrupt(_))
    ));
    // An empty payload has no tag at all.
    assert!(matches!(Request::decode(&[]), Err(NetError::Truncated)));
}

#[test]
fn desynchronised_streams_fail_fast() {
    // The response tag space keeps the high bit set precisely so a peer
    // that loses framing sync (or connects the wrong way round) errors
    // immediately instead of misinterpreting fields.
    let resp = Response::Pong { seq: 3 }.encode();
    assert!(matches!(Request::decode(&resp), Err(NetError::Corrupt(_))));
    let req = Request::Window(Rect::new(0.0, 0.0, 1.0, 1.0)).encode();
    assert!(matches!(Response::decode(&req), Err(NetError::Corrupt(_))));
}

#[test]
fn bogus_element_counts_cannot_drive_allocation() {
    // A response claiming u32::MAX points while carrying none: the count
    // is validated against the bytes actually present before any Vec is
    // sized, mirroring persist's get_len discipline.
    let mut payload = Response::Points {
        seq: 1,
        points: vec![],
    }
    .encode();
    let count_at = payload.len() - 4;
    payload[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Response::decode(&payload),
        Err(NetError::Corrupt(_))
    ));

    // Same for the pair-typed join response.
    let mut payload = Response::Pairs {
        seq: 1,
        pairs: vec![],
    }
    .encode();
    let count_at = payload.len() - 4;
    payload[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Response::decode(&payload),
        Err(NetError::Corrupt(_))
    ));
}

#[test]
fn truncated_messages_are_rejected_at_every_payload_cut() {
    // Below the framing layer, a message body cut at any field boundary
    // (or inside one) must be a typed error too — the decoder never reads
    // past the bytes it was handed.
    let payload = Request::JoinProbes(
        vec![Point::with_id(0.1, 0.2, 1), Point::with_id(0.3, 0.4, 2)],
        0.05,
    )
    .encode();
    for keep in 0..payload.len() {
        assert!(
            Request::decode(&payload[..keep]).is_err(),
            "payload cut at {keep} decoded successfully"
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    // A well-formed message followed by junk is corruption, not padding.
    let mut payload = Request::Point(Point::with_id(0.5, 0.5, 1)).encode();
    payload.push(0xAB);
    assert!(matches!(
        Request::decode(&payload),
        Err(NetError::Corrupt(_))
    ));
}

/// A populated STATS response: tag, seq, u32 inner length, obs payload.
fn stats_payload() -> Vec<u8> {
    let registry = obs::MetricsRegistry::new();
    registry.counter("net.requests.point").inc();
    registry.gauge("net.connections_open").add(3);
    registry.histogram("net.latency_us.point").record(125);
    Response::Stats {
        seq: 7,
        metrics: registry.snapshot(),
    }
    .encode()
}

/// A populated EVENTS response with the same outer layout.
fn events_payload() -> Vec<u8> {
    let telemetry = obs::Telemetry::new();
    telemetry
        .journal
        .record(obs::EventKind::ServerStart { points: 100 });
    telemetry
        .journal
        .record(obs::EventKind::ConnOpen { conn: 1 });
    Response::Events {
        seq: 7,
        events: telemetry.journal.snapshot(),
    }
    .encode()
}

/// Byte offset of the u32 inner-payload length in a STATS/EVENTS
/// response: 1 tag byte + 8 seq bytes.
const INNER_LEN_AT: usize = 9;

#[test]
fn telemetry_responses_are_rejected_at_every_payload_cut() {
    // Truncation anywhere — in the outer header, the inner length, or the
    // embedded obs snapshot — must be a typed error, mirroring the query
    // responses above.  The cut can never decode and never panic.
    for (name, payload) in [("stats", stats_payload()), ("events", events_payload())] {
        assert!(Response::decode(&payload).is_ok(), "{name}: intact decodes");
        for keep in 0..payload.len() {
            match Response::decode(&payload[..keep]) {
                Err(NetError::Truncated | NetError::Corrupt(_)) => {}
                Ok(_) => panic!("{name}: cut at {keep} decoded successfully"),
                Err(other) => panic!("{name}: cut at {keep}: unexpected error {other}"),
            }
        }
    }
}

#[test]
fn bogus_telemetry_lengths_cannot_drive_allocation() {
    // A hostile inner-length prefix claiming u32::MAX bytes of telemetry:
    // get_len validates the claim against the bytes actually present
    // before anything is sized, exactly like the point-count checks.
    for payload in [stats_payload(), events_payload()] {
        let mut corrupted = payload;
        corrupted[INNER_LEN_AT..INNER_LEN_AT + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Response::decode(&corrupted),
            Err(NetError::Corrupt(_))
        ));
    }
}

#[test]
fn corrupt_inner_telemetry_is_a_typed_error() {
    // The embedded obs codec has its own version byte and element counts;
    // damage below the wire layer still surfaces as a NetError.
    let payload = stats_payload();

    // Unsupported telemetry snapshot version.
    let mut versioned = payload.clone();
    versioned[INNER_LEN_AT + 4] = 0x63;
    assert!(matches!(
        Response::decode(&versioned),
        Err(NetError::Corrupt(_))
    ));

    // Garbage where the snapshot body should be (length prefix intact).
    let mut garbage = payload;
    for b in &mut garbage[INNER_LEN_AT + 4..] {
        *b = 0xFF;
    }
    assert!(matches!(
        Response::decode(&garbage),
        Err(NetError::Truncated | NetError::Corrupt(_))
    ));
}

#[test]
fn telemetry_requests_reject_trailing_bytes() {
    // STATS carries no fields and EVENTS exactly one u64 — anything after
    // is corruption, keeping the request grammar closed under v2.
    let mut stats = Request::Stats.encode();
    stats.push(0x00);
    assert!(matches!(Request::decode(&stats), Err(NetError::Corrupt(_))));

    let events = Request::Events { since: 42 }.encode();
    for keep in 1..events.len() {
        assert!(
            Request::decode(&events[..keep]).is_err(),
            "events request cut at {keep} decoded successfully"
        );
    }
    let mut events = events;
    events.push(0x00);
    assert!(matches!(
        Request::decode(&events),
        Err(NetError::Corrupt(_))
    ));
}

#[test]
fn errors_format_for_operators() {
    // The serving loop logs these; they must be actionable one-liners.
    let mut frame = valid_frame();
    frame[4..6].copy_from_slice(&9u16.to_le_bytes());
    let err = decode_frame(&frame).unwrap_err();
    assert!(err.to_string().contains('9'), "{err}");

    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = decode_frame(&header).unwrap_err();
    assert!(err.to_string().contains("frame"), "{err}");
}
