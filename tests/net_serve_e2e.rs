//! End-to-end exactness over the wire: a live networked server takes mixed
//! reads and writes from several concurrent client connections, and every
//! networked answer is replay-verified against the single-threaded
//! [`ScanIndex`](common::brute_force::ScanIndex) oracle — the same
//! verification the in-process serving gate uses
//! (`bench::live::replay_against_oracle`), now crossing a real TCP socket
//! and the request-coalescing worker pool.
//!
//! The mechanism carries over unchanged because every data-bearing response
//! carries the write sequence its snapshot observed: replaying the write
//! stream up to that sequence into the oracle reproduces exactly the state
//! the networked query saw, no matter how connections, micro-batches, and
//! worker threads interleaved.  There is no per-transport glue left in this
//! test: [`net::RemoteIndex`] exposes the uniform `common::SpatialIndex`
//! surface, so the shared `bench::live` observers drive the remote server
//! exactly like a local index, across all five query classes.

use bench::live::{
    observe_range_join, observe_reads, replay_against_oracle, replay_range_join_against_oracle,
    split_stream, JoinObs, LiveObs, RangeObs,
};
use common::SpatialIndex;
use datagen::queries::{
    range_query_centers, read_write_workload, MixedQuery, WindowSpec, DEFAULT_RANGE_RADIUS,
};
use datagen::{generate, Distribution};
use geom::Point;
use net::{NetClient, RemoteIndex};
use registry::{serve_index, IndexConfig, IndexKind, ServeConfig, ServerConfig};
use server::WriteOp;
use std::sync::Arc;
use std::time::Duration;

const READERS: usize = 3;

#[test]
fn networked_answers_replay_verify_against_the_oracle() {
    // An exact kind, so window and kNN answers are verifiable.
    let kind = IndexKind::Grid;
    assert!(kind.exact_windows() && kind.exact_knn());

    let data = generate(Distribution::skewed_default(), 1_500, 41);
    let ops = read_write_workload(&data, WindowSpec::default(), 5, 600, 0.2, 3);
    let (reads, writes) = split_stream(&ops);
    let centers = range_query_centers(&data, 40, 17);

    // A small compaction threshold so the background compactor runs mid-test
    // and the epoch swap is exercised under networked load.
    let server = serve_index(
        kind,
        &data,
        &IndexConfig::fast(),
        ServerConfig::default().with_compact_threshold((writes.len() / 2).max(4)),
    );
    let handle = net::serve_config(Arc::new(server), &ServeConfig::default()).unwrap();
    let addr = handle.local_addr().to_string();

    let mut observations: Vec<LiveObs> = Vec::new();
    let mut range_obs: Vec<RangeObs> = Vec::new();
    let mut join_obs: Vec<JoinObs> = Vec::new();

    std::thread::scope(|scope| {
        // One writer connection applies the write stream in order through
        // the same uniform `SpatialIndex` surface the readers use; the
        // blocking client waits for each acknowledgement, so write k is
        // assigned sequence k+1 and the oracle replay can reconstruct any
        // observed prefix.
        let addr_ref = &addr;
        let writes_ref = &writes;
        let writer = scope.spawn(move || {
            let mut remote = RemoteIndex::connect(addr_ref).unwrap();
            for w in writes_ref {
                match *w {
                    WriteOp::Insert(p) => {
                        remote.insert(p);
                    }
                    WriteOp::Delete(p) => {
                        remote.delete(&p);
                    }
                }
                // Pace the writes so they span the read phase.
                std::thread::sleep(Duration::from_micros(200));
            }
        });

        // Reader connections take strides of the mixed read stream; each
        // response frame's sequence number is what `last_seq` reports.
        let reads_ref = &reads;
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                scope.spawn(move || {
                    let remote = RemoteIndex::connect(addr_ref).unwrap();
                    let mine: Vec<MixedQuery> =
                        reads_ref.iter().skip(r).step_by(READERS).copied().collect();
                    observe_reads(&remote, &mine, &mut || remote.last_seq())
                })
            })
            .collect();

        // A fourth reader covers the two distance-predicate classes the
        // mixed stream does not carry.
        let centers_ref = &centers;
        let range_join = scope.spawn(move || {
            let remote = RemoteIndex::connect(addr_ref).unwrap();
            observe_range_join(&remote, centers_ref, DEFAULT_RANGE_RADIUS, &mut || {
                remote.last_seq()
            })
        });

        writer.join().unwrap();
        for h in readers {
            observations.extend(h.join().unwrap());
        }
        let (r, j) = range_join.join().unwrap();
        range_obs = r;
        join_obs = j;
    });

    handle.shutdown();
    handle.join();

    // Point/window/kNN: the shared oracle replay, unchanged from the
    // in-process serving gate.
    assert_eq!(observations.len(), reads.len());
    let outcome = replay_against_oracle(&data, &writes, &mut observations, true, true);
    assert_eq!(outcome.skipped, 0, "Grid answers every class exactly");
    assert_eq!(outcome.checked, reads.len());
    assert!(
        outcome.verified(),
        "networked answers diverged from the oracle: {:?}",
        outcome.divergences
    );

    // Distance-range and join-probe: the shared seq-sorted replay against
    // the same oracle, boundary-inclusive on dist² ≤ radius².
    let rj = replay_range_join_against_oracle(
        &data,
        &writes,
        &range_obs,
        &join_obs,
        DEFAULT_RANGE_RADIUS,
    );
    assert!(
        rj.verified(),
        "range/join answers diverged from the oracle: {:?}",
        rj.divergences
    );
    assert_eq!(rj.checked, range_obs.len() + join_obs.len());
    assert!(
        rj.checked > 40,
        "range/join replay exercised too few answers"
    );
}

#[test]
fn warm_started_snapshot_serves_over_the_network() {
    // Build → snapshot to disk → warm-start a server from the snapshot →
    // serve it over the wire: the load-and-serve path and the network
    // front-end compose.
    let data = generate(Distribution::Uniform, 800, 23);
    let index = registry::build_index(IndexKind::Grid, &data, &IndexConfig::fast());
    let dir = std::env::temp_dir().join(format!("net-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.snapshot");
    registry::save_index(index.as_ref(), &path).unwrap();

    let server = registry::serve_snapshot(&path, &IndexConfig::fast(), ServerConfig::default())
        .expect("warm start from snapshot");
    let handle = net::serve_config(Arc::new(server), &ServeConfig::default()).unwrap();
    let mut client = NetClient::connect(&handle.local_addr().to_string()).unwrap();

    let q = data[123];
    let (seq, hit) = client.point(&q).unwrap();
    assert_eq!(seq, 0, "warm start begins at sequence zero");
    assert_eq!(hit.map(|p| p.id), Some(q.id));

    // Writes land in the warm-started server's delta overlay too.
    let fresh = Point::with_id(0.5, 0.5, 1_000_000);
    assert_eq!(client.insert(&fresh).unwrap(), 1);
    let (_, hit) = client.point(&fresh).unwrap();
    assert_eq!(hit.map(|p| p.id), Some(1_000_000));

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Maintenance telemetry crosses the wire without a protocol change: the
/// metrics codec is name-generic, so a STATS scrape after partial passes
/// on a learned kind must expose the partial-compaction counters, the
/// drift gauges, and the partial-rebuild histogram exactly as the
/// in-process registry reports them.
#[test]
fn stats_scrape_exposes_maintenance_metrics() {
    let data = generate(Distribution::skewed_default(), 1_200, 53);
    let engine = Arc::new(serve_index(
        IndexKind::Rsmi,
        &data,
        &IndexConfig::fast(),
        ServerConfig::default().with_auto_compact(false),
    ));
    let handle = net::serve_config(Arc::clone(&engine), &ServeConfig::default()).unwrap();
    let mut client = NetClient::connect(&handle.local_addr().to_string()).unwrap();

    // Churn over the wire, then fold it with a policy-driven pass.
    for i in 0..24u64 {
        let base = data[(i as usize * 37) % data.len()];
        client
            .insert(&Point::with_id(base.x, base.y, 5_000_000 + i))
            .unwrap();
    }
    assert!(engine.maintain_now(), "nothing folded");
    let stats = engine.stats();
    assert_eq!(
        stats.partial_compactions, 1,
        "learned kind did not take the partial path"
    );

    let (seq, metrics) = client.stats().unwrap();
    assert_eq!(seq, 24);
    assert_eq!(metrics.counter("server.compactions_partial"), Some(1));
    assert_eq!(metrics.counter("server.compactions_full"), Some(0));
    assert_eq!(
        metrics.counter("server.subtree_rebuilds"),
        Some(stats.subtree_rebuilds)
    );
    // Drift gauges reflect the post-pass maintenance state of the base.
    assert!(metrics.gauge("server.maint_ops_since_train").is_some());
    assert!(metrics.gauge("server.maint_widened").is_some());
    assert!(metrics.gauge("server.maint_stale_subtrees").is_some());
    assert_eq!(
        metrics
            .histogram("server.partial_rebuild_us")
            .map(|h| h.count),
        Some(1)
    );

    handle.shutdown();
    handle.join();
}
