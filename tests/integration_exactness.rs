//! Cross-index integration tests: every index family must agree with brute
//! force on the queries that are supposed to be exact, on the same workloads.

use baselines::{GridFile, HilbertRTree, KdbTree, RStarTree};
use common::{brute_force, SpatialIndex};
use datagen::{generate, queries, Distribution};
use rsmi::{Rsmi, RsmiConfig};

fn exact_indices(data: &[geom::Point]) -> Vec<Box<dyn SpatialIndex>> {
    vec![
        Box::new(GridFile::build(data.to_vec(), 50)),
        Box::new(HilbertRTree::build(data.to_vec(), 50)),
        Box::new(KdbTree::build(data.to_vec(), 50)),
        Box::new(RStarTree::build(data.to_vec(), 50)),
    ]
}

fn sorted_ids(points: &[geom::Point]) -> Vec<u64> {
    let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn every_index_answers_point_queries_for_all_distributions() {
    for dist in Distribution::all() {
        let data = generate(dist, 3_000, 13);
        let mut indices = exact_indices(&data);
        indices.push(Box::new(Rsmi::build(data.clone(), RsmiConfig::fast())));
        for index in &indices {
            for p in data.iter().step_by(29) {
                assert_eq!(
                    index.point_query(p).map(|f| f.id),
                    Some(p.id),
                    "{} lost point {:?} on {}",
                    index.name(),
                    p,
                    dist.name()
                );
            }
        }
    }
}

#[test]
fn exact_window_queries_agree_with_brute_force() {
    let data = generate(Distribution::TigerLike, 4_000, 17);
    let windows = queries::window_queries(&data, queries::WindowSpec { area_percent: 0.5, aspect_ratio: 1.0 }, 25, 3);
    let indices = exact_indices(&data);
    let rsmi = Rsmi::build(data.clone(), RsmiConfig::fast());
    for w in &windows {
        let truth = sorted_ids(&brute_force::window_query(&data, w));
        for index in &indices {
            assert_eq!(
                sorted_ids(&index.window_query(w)),
                truth,
                "{} window answer differs",
                index.name()
            );
        }
        assert_eq!(sorted_ids(&rsmi.window_query_exact(w)), truth, "RSMIa differs");
    }
}

#[test]
fn exact_knn_distances_agree_with_brute_force() {
    let data = generate(Distribution::OsmLike, 3_000, 19);
    let qs = queries::knn_queries(&data, 20, 7);
    let indices = exact_indices(&data);
    let rsmi = Rsmi::build(data.clone(), RsmiConfig::fast());
    for q in &qs {
        for k in [1usize, 10, 40] {
            let truth = brute_force::knn_query(&data, q, k);
            for index in &indices {
                let got = index.knn_query(q, k);
                assert_eq!(got.len(), k, "{} returned {} of {k}", index.name(), got.len());
                for (t, g) in truth.iter().zip(&got) {
                    assert!(
                        (t.dist(q) - g.dist(q)).abs() < 1e-12,
                        "{} kNN distance mismatch",
                        index.name()
                    );
                }
            }
            let got = rsmi.knn_query_exact(q, k);
            for (t, g) in truth.iter().zip(&got) {
                assert!((t.dist(q) - g.dist(q)).abs() < 1e-12, "RSMIa kNN distance mismatch");
            }
        }
    }
}

#[test]
fn learned_indices_never_return_false_positives_for_windows() {
    let data = generate(Distribution::Normal, 4_000, 23);
    let rsmi = Rsmi::build(data.clone(), RsmiConfig::fast());
    let zm = baselines::ZOrderModel::build(data.clone(), baselines::zm::ZmConfig::fast());
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 50, 5);
    for w in &windows {
        for p in rsmi.window_query(w) {
            assert!(w.contains(&p), "RSMI returned a point outside the window");
        }
        for p in zm.window_query(w) {
            assert!(w.contains(&p), "ZM returned a point outside the window");
        }
    }
}
