//! Cross-index integration tests: every index family must agree with brute
//! force on the queries that are supposed to be exact, on the same
//! workloads.  Indices are constructed exclusively through the registry.

use common::{brute_force, QueryContext};
use datagen::{generate, queries, Distribution};
use registry::{build_index, IndexConfig, IndexKind};

fn cfg() -> IndexConfig {
    IndexConfig::fast()
}

fn exact_window_kinds() -> Vec<IndexKind> {
    IndexKind::all()
        .into_iter()
        .filter(IndexKind::exact_windows)
        .collect()
}

fn sorted_ids(points: &[geom::Point]) -> Vec<u64> {
    let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn every_index_answers_point_queries_for_all_distributions() {
    let mut cx = QueryContext::new();
    for dist in Distribution::all() {
        let data = generate(dist, 3_000, 13);
        // RSMIa's point query is the identical code path to RSMI's, so skip
        // the duplicate (expensive) learned build.
        for kind in IndexKind::without_rsmia() {
            let index = build_index(kind, &data, &cfg());
            for p in data.iter().step_by(29) {
                assert_eq!(
                    index.point_query(p, &mut cx).map(|f| f.id),
                    Some(p.id),
                    "{} lost point {:?} on {}",
                    index.name(),
                    p,
                    dist.name()
                );
            }
        }
    }
}

#[test]
fn exact_window_queries_agree_with_brute_force() {
    let data = generate(Distribution::TigerLike, 4_000, 17);
    let windows = queries::window_queries(
        &data,
        queries::WindowSpec {
            area_percent: 0.5,
            aspect_ratio: 1.0,
        },
        25,
        3,
    );
    let mut cx = QueryContext::new();
    for kind in exact_window_kinds() {
        let index = build_index(kind, &data, &cfg());
        for w in &windows {
            let truth = sorted_ids(&brute_force::window_query(&data, w));
            assert_eq!(
                sorted_ids(&index.window_query(w, &mut cx)),
                truth,
                "{} window answer differs",
                index.name()
            );
        }
    }
}

#[test]
fn exact_knn_distances_agree_with_brute_force() {
    let data = generate(Distribution::OsmLike, 3_000, 19);
    let qs = queries::knn_queries(&data, 20, 7);
    let mut cx = QueryContext::new();
    for kind in IndexKind::all().into_iter().filter(IndexKind::exact_knn) {
        let index = build_index(kind, &data, &cfg());
        for q in &qs {
            for k in [1usize, 10, 40] {
                let truth = brute_force::knn_query(&data, q, k);
                let got = index.knn_query(q, k, &mut cx);
                assert_eq!(
                    got.len(),
                    k,
                    "{} returned {} of {k}",
                    index.name(),
                    got.len()
                );
                for (t, g) in truth.iter().zip(&got) {
                    assert!(
                        (t.dist(q) - g.dist(q)).abs() < 1e-12,
                        "{} kNN distance mismatch",
                        index.name()
                    );
                }
            }
        }
    }
}

#[test]
fn learned_indices_never_return_false_positives_for_windows() {
    let data = generate(Distribution::Normal, 4_000, 23);
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 50, 5);
    let mut cx = QueryContext::new();
    for kind in [IndexKind::Rsmi, IndexKind::Zm] {
        let index = build_index(kind, &data, &cfg());
        for w in &windows {
            index.window_query_visit(w, &mut cx, &mut |p| {
                assert!(
                    w.contains(p),
                    "{} returned a point outside the window",
                    kind.name()
                );
            });
        }
    }
}
