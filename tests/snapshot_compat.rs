//! Snapshot **compatibility smoke**: fixture snapshot bytes checked into
//! `tests/fixtures/` must keep loading and serving every pre-existing query
//! type unchanged.  This guards trait extensions and storage rewrites
//! against accidental format or behaviour drift: a loaded old snapshot must
//! answer point/window/kNN queries — and their statistics — exactly like a
//! deterministic fresh build of the same parameters.
//!
//! Two fixture generations are committed:
//!
//! * `*_v1.snapshot` — written by the pre-SoA writer (block-store section
//!   `0x5301`, interleaved per-point records).  Frozen forever: today's
//!   reader converts them on load, and their replays must stay identical.
//! * the unsuffixed fixtures — today's format (SoA lane section `0x5302`),
//!   held byte-identical to what today's writer produces.
//!
//! The fixtures deliberately use the two model-free families (Grid, HRR),
//! whose builds are bit-deterministic across platforms.  Regenerate the
//! unsuffixed ones with `cargo test --test snapshot_compat -- --ignored`
//! after an *intentional* format change (never touch the `_v1` copies; add
//! a new frozen generation instead when the format changes again).

use bench::{replay_workload, ReplaySpec};
use common::{MaintenanceBudget, QueryContext};
use datagen::{generate, Distribution};
use registry::{
    build_index, load_index_bytes, serve_snapshot_bytes, snapshot_bytes, CompactionPolicy,
    IndexConfig, IndexKind, ServerConfig,
};
use server::WriteOp;
use std::path::PathBuf;

/// The fixture set: file name, kind, and the deterministic data-set
/// parameters it was built from.
const FIXTURES: &[(&str, IndexKind, usize, u64)] = &[
    ("grid_300_seed71.snapshot", IndexKind::Grid, 300, 71),
    ("hrr_300_seed71.snapshot", IndexKind::Hrr, 300, 71),
];

/// Frozen pre-SoA fixtures (legacy block-store section `0x5301`): never
/// regenerated, only read.
const FIXTURES_V1: &[(&str, IndexKind, usize, u64)] = &[
    ("grid_300_seed71_v1.snapshot", IndexKind::Grid, 300, 71),
    ("hrr_300_seed71_v1.snapshot", IndexKind::Hrr, 300, 71),
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture_cfg() -> IndexConfig {
    IndexConfig::fast()
}

fn replay_spec() -> ReplaySpec {
    ReplaySpec {
        point_queries: 200,
        window_queries: 40,
        knn_queries: 40,
        k: 10,
    }
}

fn assert_fixture_serves_unchanged(name: &str, kind: IndexKind, n: usize, seed: u64) {
    let path = fixture_path(name);
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "fixture {} unreadable ({e}) — regenerate with `cargo test --test \
             snapshot_compat -- --ignored`",
            path.display()
        )
    });
    let loaded =
        load_index_bytes(&bytes).unwrap_or_else(|e| panic!("fixture {name} no longer loads: {e}"));
    assert_eq!(loaded.name(), kind.name(), "fixture {name} kind drifted");

    let data = generate(Distribution::skewed_default(), n, seed);
    assert_eq!(
        loaded.len(),
        data.len(),
        "fixture {name} point count drifted"
    );
    let fresh = build_index(kind, &data, &fixture_cfg());

    // Every pre-existing query type — answers AND statistics — must be
    // byte-identical to the deterministic fresh build.
    let from_fixture = replay_workload(loaded.as_ref(), &data, &replay_spec());
    let from_build = replay_workload(fresh.as_ref(), &data, &replay_spec());
    assert!(
        from_fixture.matches(&from_build),
        "fixture {name} diverged from a fresh build — snapshot behaviour drift"
    );

    // Query classes added after the fixtures were frozen need no serialized
    // state: they work on the loaded old snapshot too, exactly.
    let mut cx = QueryContext::new();
    let center = data[7];
    let mut got: Vec<u64> = loaded
        .range_query(&center, 0.05, &mut cx)
        .iter()
        .map(|p| p.id)
        .collect();
    let mut truth: Vec<u64> = common::brute_force::range_query(&data, &center, 0.05)
        .iter()
        .map(|p| p.id)
        .collect();
    got.sort_unstable();
    truth.sort_unstable();
    assert_eq!(got, truth, "fixture {name} range answer differs");
}

#[test]
fn current_snapshots_still_serve_all_query_types_unchanged() {
    for &(name, kind, n, seed) in FIXTURES {
        assert_fixture_serves_unchanged(name, kind, n, seed);
    }
}

/// Pre-SoA snapshots (interleaved block-store section) load through the
/// legacy-section reader and must replay answer- and stats-identically.
#[test]
fn pre_soa_snapshots_still_serve_all_query_types_unchanged() {
    for &(name, kind, n, seed) in FIXTURES_V1 {
        assert_fixture_serves_unchanged(name, kind, n, seed);
    }
}

/// Loading a legacy v1 snapshot and re-saving it must produce exactly
/// today's (v2) bytes: the conversion is total, and a converted store is
/// indistinguishable from a freshly built one.
#[test]
fn legacy_snapshots_resave_as_todays_bytes() {
    for (&(v1_name, ..), &(name, ..)) in FIXTURES_V1.iter().zip(FIXTURES) {
        let old = std::fs::read(fixture_path(v1_name)).expect("read v1 fixture");
        let current = std::fs::read(fixture_path(name)).expect("read fixture");
        let loaded = load_index_bytes(&old).expect("load v1 fixture");
        let resaved = snapshot_bytes(loaded.as_ref()).expect("serialise");
        assert_eq!(
            resaved, current,
            "fixture {v1_name}: conversion to the current format drifted"
        );
    }
}

/// The fixture bytes must stay byte-identical to what today's writer
/// produces for the same build — if this fails, the snapshot format (or a
/// build path) changed and the change must be intentional and versioned.
#[test]
fn todays_writer_still_produces_the_fixture_bytes() {
    for &(name, kind, n, seed) in FIXTURES {
        let path = fixture_path(name);
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable ({e})", path.display()));
        let data = generate(Distribution::skewed_default(), n, seed);
        let index = build_index(kind, &data, &fixture_cfg());
        let now = snapshot_bytes(index.as_ref()).expect("serialise");
        assert_eq!(
            committed, now,
            "fixture {name}: snapshot bytes drifted — format or build change detected"
        );
    }
}

/// Fixtures predate the incremental-maintenance layer: loading them must
/// leave maintenance state at its sane defaults — the model-free kinds
/// report no maintenance stats, a partial-rebuild request is answered by
/// a (correct) full rebuild, and a policy-driven server detects the
/// missing support and serves them with full compaction passes.
#[test]
fn fixtures_default_maintenance_state_sanely() {
    for &(name, kind, n, seed) in FIXTURES.iter().chain(FIXTURES_V1) {
        let bytes = std::fs::read(fixture_path(name)).expect("read fixture");
        let mut loaded = load_index_bytes(&bytes).expect("load fixture");
        assert!(
            loaded.maintenance_stats().is_none(),
            "fixture {name}: a model-free kind grew maintenance stats"
        );
        let outcome = loaded.rebuild_partial(&MaintenanceBudget::default());
        assert!(
            outcome.full_rebuild,
            "fixture {name}: partial rebuild did not report its full fallback"
        );
        assert_eq!(outcome.subtrees_rebuilt, 0);
        let data = generate(Distribution::skewed_default(), n, seed);
        assert_eq!(
            loaded.len(),
            data.len(),
            "fixture {name}: fallback lost points"
        );

        // Served under an incremental policy, the maintenance pass must
        // fall back to a full rebuild — counted as such — and answers
        // must stay correct.
        let server = serve_snapshot_bytes(
            &bytes,
            &fixture_cfg(),
            ServerConfig::default()
                .with_policy(CompactionPolicy::default().with_ops_trigger(8))
                .with_auto_compact(false),
        )
        .unwrap_or_else(|e| panic!("fixture {name} no longer serves: {e}"));
        let extra = geom::Point::with_id(0.123, 0.789, 900_000 + seed);
        server.apply(WriteOp::Insert(extra));
        server.apply(WriteOp::Delete(data[3]));
        assert!(server.maintain_now(), "fixture {name}: nothing folded");
        let stats = server.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(
            stats.partial_compactions,
            0,
            "fixture {name} ({}): partial pass ran without maintenance support",
            kind.name()
        );
        let mut cx = QueryContext::new();
        let snap = server.snapshot();
        assert_eq!(
            snap.point_query(&extra, &mut cx).map(|p| p.id),
            Some(extra.id)
        );
        assert_eq!(snap.point_query(&data[3], &mut cx), None);
    }
}

/// Regenerates the committed fixtures (run explicitly after an intentional
/// format change): `cargo test --test snapshot_compat -- --ignored`.
#[test]
#[ignore = "writes the committed fixtures; run only after an intentional format change"]
fn regenerate_fixtures() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).expect("create fixtures dir");
    for &(name, kind, n, seed) in FIXTURES {
        let data = generate(Distribution::skewed_default(), n, seed);
        let index = build_index(kind, &data, &fixture_cfg());
        let bytes = snapshot_bytes(index.as_ref()).expect("serialise");
        std::fs::write(dir.join(name), bytes).expect("write fixture");
    }
}
