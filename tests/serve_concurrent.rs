//! Concurrent-serving integration test: reader threads query a live
//! [`registry::SpatialServer`] while a writer thread applies a read/write
//! workload and the **background** compaction thread swaps epochs
//! underneath them.  Every reader records the write-sequence number its
//! snapshot observed; afterwards the whole interleaving is replayed
//! single-threadedly against a `Vec`-scan oracle and every answer is
//! compared.  The record-and-replay harness is `bench::live` — the same
//! code the `serve-live` CI gate runs, so the test and the gate cannot
//! drift apart.  (CI reruns this test in release mode, where thread
//! interleaving is real.)

use bench::live::{await_compactions, replay_against_oracle, run_live_serving, split_stream};
use datagen::queries::{self, WindowSpec};
use datagen::{generate, Distribution};
use registry::{serve_index, CompactionPolicy, IndexConfig, IndexKind, ServerConfig};
use server::WriteOp;
use std::time::Duration;

#[test]
fn concurrent_readers_writer_and_compaction_match_the_replay_oracle() {
    const READERS: usize = 4;
    let data = generate(Distribution::skewed_default(), 4_000, 77);
    let ops = queries::read_write_workload(&data, WindowSpec::default(), 10, 1_500, 0.15, 7);
    let (reads, writes) = split_stream(&ops);
    assert!(!writes.is_empty() && !reads.is_empty());

    // Aggressive threshold so several background compactions run during
    // the read phase.
    let threshold = (writes.len() / 5).max(8);
    let server = serve_index(
        IndexKind::Hrr,
        &data,
        &IndexConfig::fast(),
        ServerConfig::default().with_compact_threshold(threshold),
    );

    // Writes paced across the read phase so snapshots land at many
    // different sequence numbers.
    let run = run_live_serving(
        &server,
        &reads,
        &writes,
        READERS,
        Duration::from_micros(200),
    );
    let mut observations = run.observations;
    assert_eq!(observations.len(), reads.len());

    // The background compactor must fold at least once under the readers;
    // its final rebuild may still be in flight when the threads join, so
    // wait for it instead of sampling the counter once.
    let compactions = await_compactions(&server, 1, Duration::from_secs(30));
    assert!(
        compactions >= 1,
        "background compaction never ran (threshold {threshold})"
    );

    // Single-threaded replay: every recorded answer must equal the naive
    // scan of exactly the write prefix its snapshot observed.  HRR is
    // exact, so all three query types are held to full equality.
    let outcome = replay_against_oracle(&data, &writes, &mut observations, true, true);
    assert!(
        outcome.verified(),
        "{} answers diverged from the replay oracle: {:?}",
        outcome.mismatches,
        outcome.divergences
    );
    assert_eq!(outcome.checked, reads.len());
    assert_eq!(outcome.skipped, 0);

    // Final state equals the fully-applied oracle.
    let stats = server.stats();
    assert_eq!(stats.seq, writes.len() as u64);
    let mut oracle: Vec<geom::Point> = data.clone();
    for op in &writes {
        match op {
            WriteOp::Insert(p) => oracle.push(*p),
            WriteOp::Delete(p) => oracle.retain(|x| !(x.same_location(p) && x.id == p.id)),
        }
    }
    assert_eq!(server.len(), oracle.len());
}

/// Policy-driven variant: a **learned** kind under the background
/// compactor with an incremental policy.  The background passes must run
/// as partial rebuilds (clone, replay, retrain drifted subtrees) while
/// readers race the epoch swaps, and every recorded answer must still
/// replay exactly against the oracle — RSMIa is exact, so all three
/// query types are held to full equality.
#[test]
fn background_partial_compaction_serves_a_learned_kind_verifiably() {
    const READERS: usize = 4;
    let data = generate(Distribution::skewed_default(), 3_000, 83);
    let ops = queries::read_write_workload(&data, WindowSpec::default(), 10, 1_200, 0.3, 19);
    let (reads, mut writes) = split_stream(&ops);
    // `Rsmi::delete` treats id 0 as a location wildcard, which the server
    // answers with a full-rebuild pass; redirect the rare delete of
    // data[0] so this run exercises the partial path throughout.
    for w in writes.iter_mut() {
        if let WriteOp::Delete(p) = w {
            if p.id == 0 {
                *w = WriteOp::Delete(data[1]);
            }
        }
    }
    assert!(!writes.is_empty() && !reads.is_empty());

    let threshold = (writes.len() / 6).max(8);
    let policy = CompactionPolicy::default()
        .with_ops_trigger(threshold)
        .with_drift_trigger(0.05);
    let server = serve_index(
        IndexKind::Rsmia,
        &data,
        &IndexConfig::fast(),
        ServerConfig::default().with_policy(policy),
    );

    let run = run_live_serving(
        &server,
        &reads,
        &writes,
        READERS,
        Duration::from_micros(200),
    );
    let mut observations = run.observations;
    assert_eq!(observations.len(), reads.len());

    let compactions = await_compactions(&server, 1, Duration::from_secs(30));
    assert!(
        compactions >= 1,
        "background compaction never ran (threshold {threshold})"
    );
    // Every background pass resolved to a partial rebuild: the full
    // counter is monotone, so zero here means zero for the whole run.
    let metrics = server.telemetry().metrics.snapshot();
    assert_eq!(metrics.counter("server.compactions_full"), Some(0));
    assert!(metrics.counter("server.compactions_partial") >= Some(1));

    let outcome = replay_against_oracle(&data, &writes, &mut observations, true, true);
    assert!(
        outcome.verified(),
        "{} answers diverged from the replay oracle: {:?}",
        outcome.mismatches,
        outcome.divergences
    );
    assert_eq!(outcome.checked, reads.len());
    assert_eq!(outcome.skipped, 0);
}
