//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], [`Rng::gen`]
//! and [`Rng::gen_range`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a small, fast,
//! well-distributed PRNG.  Streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`; all in-repo consumers only rely on determinism per seed and on
//! reasonable statistical quality, not on exact values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (upstream: `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value in the range from `rng`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Debiased multiply-shift (Lemire); the retry loop terminates quickly.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n.max(1) || n.is_power_of_two() {
            return (m >> 64) as u64;
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let span = (hi - lo) as u64 + 1;
        if span == 0 {
            // Full usize range: take any value.
            return rng.next_u64() as usize;
        }
        lo + uniform_below(rng, span) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Core random-value interface (upstream: `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Named generators (upstream: `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_spread_out() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&below_half), "{below_half}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let u = rng.gen_range(5usize..10);
            assert!((5..10).contains(&u));
            let i = rng.gen_range(0usize..=3);
            assert!(i <= 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_bucket() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
