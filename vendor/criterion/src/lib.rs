//! Offline stand-in for the subset of the `criterion` benchmarking API used
//! by `crates/bench/benches/*`.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples of
//! an adaptive number of iterations, and reports the median per-iteration
//! time on stdout.  There is no statistical analysis, plotting, or baseline
//! comparison — just honest wall-clock medians, which is what the in-repo
//! benches need to document relative costs (e.g. batch vs per-call queries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Times closures supplied by the benchmark body.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records its median execution time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly a millisecond, so timer resolution is not a factor.
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break elapsed / iters.max(1) as u32;
            }
            iters *= 4;
        };
        let _ = per_iter;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed() / iters.max(1) as u32);
        }
        samples.sort();
        self.last_median = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            last_median: Duration::ZERO,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        println!(
            "{}/{:<32} median {:>12.3?}",
            self.name, label, bencher.last_median
        );
    }

    /// Benchmarks a closure.
    pub fn bench_function(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(label, f);
        self
    }

    /// Benchmarks a closure against a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.label.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (upstream reports summaries here; the shim is per-line).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a single closure outside a group.
    pub fn bench_function(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").run(label, f);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("RSMI").label, "RSMI");
    }
}
