//! Quickstart: build an RSMI through the dynamic index registry and run the
//! three query types the paper supports (point, window, kNN), plus an
//! insertion, with per-query cost statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use common::QueryContext;
use datagen::{generate, Distribution};
use geom::{Point, Rect};
use registry::{build_index, IndexConfig, IndexKind};

fn main() {
    // 1. Generate 50k points from a skewed distribution (the paper's default
    //    synthetic workload) and bulk-load the index by name through the
    //    registry.
    let points = generate(Distribution::skewed_default(), 50_000, 42);
    let config = IndexConfig::default()
        .with_partition_threshold(5_000)
        .with_epochs(30);
    let start = std::time::Instant::now();
    let mut index = build_index(IndexKind::Rsmi, &points, &config);
    println!(
        "built {} over {} points in {:.2}s (height {}, {} sub-models, {:.1} MB)",
        index.name(),
        index.len(),
        start.elapsed().as_secs_f64(),
        index.height(),
        index.model_count(),
        index.size_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Every query charges its cost to an explicit context.
    let mut cx = QueryContext::new();

    // 2. Point query: look up an indexed point by its coordinates.
    let target = points[1234];
    let found = index
        .point_query(&target, &mut cx)
        .expect("indexed point must be found");
    let cost = cx.take_stats();
    println!(
        "point query: found point id {} at ({:.4}, {:.4}) — {} blocks, {} nodes, {} candidates",
        found.id,
        found.x,
        found.y,
        cost.blocks_touched,
        cost.nodes_visited,
        cost.candidates_scanned
    );

    // 3. Window query ("search this area"): the zero-copy visitor form, and a
    //    comparison against the exact RSMIa variant built from the same
    //    registry.
    let window = Rect::new(0.40, 0.02, 0.45, 0.06);
    let mut in_window = 0usize;
    index.window_query_visit(&window, &mut cx, &mut |_| in_window += 1);
    let exact_index = build_index(IndexKind::Rsmia, &points, &config);
    let exact = exact_index.window_query(&window, &mut cx);
    println!(
        "window query: {} points returned (exact answer has {}, recall {:.1}%)",
        in_window,
        exact.len(),
        100.0 * in_window as f64 / exact.len().max(1) as f64
    );

    // 4. kNN query ("dinner near me").
    let me = Point::new(0.5, 0.03);
    let nn = index.knn_query(&me, 5, &mut cx);
    println!("5 nearest neighbours of ({:.2}, {:.2}):", me.x, me.y);
    for p in &nn {
        println!(
            "  id {:>6}  at ({:.4}, {:.4})  dist {:.5}",
            p.id,
            p.x,
            p.y,
            p.dist(&me)
        );
    }

    // 5. Batch queries amortise per-call overhead and aggregate statistics.
    // Drop the charges accumulated by steps 3-4 so the printed average
    // covers the batch alone.
    let _ = cx.take_stats();
    let batch = &points[..1000];
    let answers = index.point_queries(batch, &mut cx);
    let stats = cx.take_stats();
    println!(
        "batch of {} point queries: {} hits, {:.2} blocks/query on average",
        batch.len(),
        answers.iter().filter(|a| a.is_some()).count(),
        stats.blocks_touched as f64 / batch.len() as f64
    );

    // 6. Updates: insert a new point and find it again.
    let new_point = Point::with_id(0.5001, 0.0301, 999_999);
    index.insert(new_point);
    assert!(index.point_query(&new_point, &mut cx).is_some());
    println!(
        "inserted point {} and found it again; index now holds {} points",
        new_point.id,
        index.len()
    );
}
