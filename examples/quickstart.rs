//! Quickstart: build an RSMI over synthetic data and run the three query
//! types the paper supports (point, window, kNN), plus an insertion.
//!
//! Run with `cargo run --release -p rsmi --example quickstart`.

use common::SpatialIndex;
use datagen::{generate, Distribution};
use geom::{Point, Rect};
use rsmi::{Rsmi, RsmiConfig};

fn main() {
    // 1. Generate 50k points from a skewed distribution (the paper's default
    //    synthetic workload) and bulk-load the index.
    let points = generate(Distribution::skewed_default(), 50_000, 42);
    let config = RsmiConfig::default()
        .with_partition_threshold(5_000)
        .with_epochs(30);
    let start = std::time::Instant::now();
    let mut index = Rsmi::build(points.clone(), config);
    println!(
        "built RSMI over {} points in {:.2}s (height {}, {} sub-models, {:.1} MB)",
        index.len(),
        start.elapsed().as_secs_f64(),
        index.stats().height,
        index.stats().model_count,
        index.size_bytes() as f64 / (1024.0 * 1024.0),
    );

    // 2. Point query: look up an indexed point by its coordinates.
    let target = points[1234];
    let found = index.point_query(&target).expect("indexed point must be found");
    println!("point query: found point id {} at ({:.4}, {:.4})", found.id, found.x, found.y);

    // 3. Window query ("search this area"): approximate but never returns a
    //    point outside the window.
    let window = Rect::new(0.40, 0.02, 0.45, 0.06);
    let in_window = index.window_query(&window);
    let exact = index.window_query_exact(&window);
    println!(
        "window query: {} points returned (exact answer has {}, recall {:.1}%)",
        in_window.len(),
        exact.len(),
        100.0 * in_window.len() as f64 / exact.len().max(1) as f64
    );

    // 4. kNN query ("dinner near me").
    let me = Point::new(0.5, 0.03);
    let nn = index.knn_query(&me, 5);
    println!("5 nearest neighbours of ({:.2}, {:.2}):", me.x, me.y);
    for p in &nn {
        println!("  id {:>6}  at ({:.4}, {:.4})  dist {:.5}", p.id, p.x, p.y, p.dist(&me));
    }

    // 5. Updates: insert a new point and find it again.
    let new_point = Point::with_id(0.5001, 0.0301, 999_999);
    index.insert(new_point);
    assert!(index.point_query(&new_point).is_some());
    println!("inserted point {} and found it again; index now holds {} points", new_point.id, index.len());
}
