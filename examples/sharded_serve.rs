//! Sharded serving: build a `sharded-rsmi` through the registry, watch the
//! query planner route and prune, and run a hotspot batch through the
//! multi-threaded executor.
//!
//! Run with `cargo run --release --example sharded_serve`.

use common::QueryContext;
use datagen::{generate, queries, Distribution};
use geom::Point;
use registry::{build_index, IndexConfig, IndexKind};

fn main() {
    // 1. Build the sharded composition by name, exactly like any leaf
    //    family — `"sharded-rsmi".parse()` is how a CLI would select it.
    let points = generate(Distribution::skewed_default(), 100_000, 42);
    let kind: IndexKind = "sharded-rsmi".parse().expect("registered kind");
    let config = IndexConfig::default()
        .with_partition_threshold(5_000)
        .with_shards(8)
        .with_threads(4);
    let start = std::time::Instant::now();
    let index = build_index(kind, &points, &config);
    println!(
        "built {} over {} points in {:.2}s ({} sub-models across 8 shards, {:.1} MB)",
        index.name(),
        index.len(),
        start.elapsed().as_secs_f64(),
        index.model_count(),
        index.size_bytes() as f64 / (1024.0 * 1024.0),
    );

    let mut cx = QueryContext::new();

    // 2. Point queries route to exactly one shard: the learned partitioner
    //    recovers the query's rank-space Hilbert key and binary-searches the
    //    shard key ranges.
    let target = points[54_321];
    let found = index.point_query(&target, &mut cx).expect("indexed point");
    let cost = cx.take_stats();
    println!(
        "point query: found id {} — visited {} shard, pruned {} without touching them",
        found.id, cost.shards_visited, cost.shards_pruned
    );

    // 3. A hotspot window workload (all queries piled onto one region, the
    //    shape real serving traffic has): the planner fans out only to the
    //    shards whose MBR intersects each window.
    let windows = queries::hotspot_window_queries(&points, queries::WindowSpec::default(), 200, 7);
    let results = index.window_queries(&windows, &mut cx);
    let stats = cx.take_stats();
    println!(
        "hotspot batch of {} windows ({} worker threads): {:.2} shards visited and {:.2} pruned per query, {} total results",
        windows.len(),
        config.threads,
        stats.shards_visited as f64 / windows.len() as f64,
        stats.shards_pruned as f64 / windows.len() as f64,
        results.iter().map(Vec::len).sum::<usize>(),
    );

    // 4. kNN is answered best-first by shard MINDIST with a distance-bound
    //    cutoff, then k-way merged by (distance, id).
    let me = Point::new(0.5, 0.03);
    let nn = index.knn_query(&me, 5, &mut cx);
    let stats = cx.take_stats();
    println!(
        "5 nearest neighbours of ({:.2}, {:.2}) — {} shards visited, {} pruned by the distance bound:",
        me.x, me.y, stats.shards_visited, stats.shards_pruned
    );
    for p in &nn {
        println!(
            "  id {:>6}  at ({:.4}, {:.4})  dist {:.5}",
            p.id,
            p.x,
            p.y,
            p.dist(&me)
        );
    }
}
