//! A stream of insertions with periodic rebuilds (the paper's RSMIr
//! variant): shows how query performance degrades as overflow blocks
//! accumulate and recovers after a rebuild.
//!
//! Run with `cargo run --release -p rsmi --example update_stream`.

use common::SpatialIndex;
use datagen::{generate, queries, Distribution};
use rsmi::{Rsmi, RsmiConfig};

fn main() {
    let n = 50_000;
    let data = generate(Distribution::skewed_default(), n, 21);
    let mut index = Rsmi::build(
        data.clone(),
        RsmiConfig::default().with_partition_threshold(5_000).with_epochs(25),
    );
    let inserts = queries::insertion_points(&data, n / 2, 5);
    let batch = n / 10;

    println!("initial: {} points, {} overflow blocks", index.len(), index.overflow_block_count());
    println!("\n{:>8} {:>16} {:>18} {:>16}", "inserted", "overflow blocks", "point query (us)", "after rebuild (us)");

    let mut all_points = data.clone();
    for step in 1..=5 {
        let slice = &inserts[(step - 1) * batch..step * batch];
        for p in slice {
            index.insert(*p);
        }
        all_points.extend_from_slice(slice);
        let qs = queries::point_queries(&all_points, 2_000, step as u64);

        let overflow = index.overflow_block_count();
        let start = std::time::Instant::now();
        for q in &qs {
            let _ = index.point_query(q);
        }
        let before = start.elapsed().as_secs_f64() * 1e6 / qs.len() as f64;

        // Periodic rebuild (RSMIr): retrain on the current contents.
        index.rebuild();
        let start = std::time::Instant::now();
        for q in &qs {
            let _ = index.point_query(q);
        }
        let after = start.elapsed().as_secs_f64() * 1e6 / qs.len() as f64;

        println!("{:>7}% {:>16} {:>18.2} {:>16.2}", step * 10, overflow, before, after);
    }
    println!("\nfinal index: {} points, height {}", index.len(), index.height());
}
