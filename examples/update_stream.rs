//! A stream of insertions with periodic rebuilds (the paper's RSMIr
//! variant): shows how query cost degrades as overflow blocks accumulate and
//! recovers after the `rebuild` maintenance hook of the uniform index API.
//!
//! Run with `cargo run --release --example update_stream`.

use common::{QueryContext, SpatialIndex};
use datagen::{generate, queries, Distribution};
use registry::{build_index, IndexConfig, IndexKind};

fn main() {
    let n = 50_000;
    let data = generate(Distribution::skewed_default(), n, 21);
    let config = IndexConfig::default()
        .with_partition_threshold(5_000)
        .with_epochs(25);
    let mut index = build_index(IndexKind::Rsmi, &data, &config);
    let inserts = queries::insertion_points(&data, n / 2, 5);
    let batch = n / 10;

    println!(
        "initial: {} points, {:.1} MB",
        index.len(),
        index.size_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "\n{:>8} {:>18} {:>16} {:>18} {:>16}",
        "inserted", "blocks/query", "point query (us)", "after rebuild", "rebuilt blocks/q"
    );

    let mut all_points = data.clone();
    for step in 1..=5 {
        let slice = &inserts[(step - 1) * batch..step * batch];
        for p in slice {
            index.insert(*p);
        }
        all_points.extend_from_slice(slice);
        let qs = queries::point_queries(&all_points, 2_000, step as u64);

        let measure = |index: &dyn SpatialIndex| {
            let mut cx = QueryContext::new();
            let start = std::time::Instant::now();
            let _ = index.point_queries(&qs, &mut cx);
            let us = start.elapsed().as_secs_f64() * 1e6 / qs.len() as f64;
            (cx.take_stats().blocks_touched as f64 / qs.len() as f64, us)
        };

        let (blocks_before, before) = measure(index.as_ref());

        // Periodic rebuild (RSMIr): retrain on the current contents through
        // the trait's maintenance hook.
        index.rebuild();
        let (blocks_after, after) = measure(index.as_ref());

        println!(
            "{:>7}% {:>18.2} {:>16.2} {:>18.2} {:>16.2}",
            step * 10,
            blocks_before,
            before,
            after,
            blocks_after
        );
    }
    println!(
        "\nfinal index: {} points, height {}",
        index.len(),
        index.height()
    );
}
