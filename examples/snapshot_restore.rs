//! Build once, restart fast: persist a sharded learned index to a versioned
//! binary snapshot, drop it, load it back, and verify the restored index
//! serves byte-identical answers at identical cost — without retraining a
//! single model.
//!
//! Run with `cargo run --release --example snapshot_restore`.

use common::QueryContext;
use datagen::{generate, queries, Distribution};
use registry::{build_index, load_index, save_index, IndexConfig, IndexKind};

fn main() {
    // 1. Build a sharded RSMI — the expensive part: model training plus
    //    per-shard bulk loads.
    let points = generate(Distribution::skewed_default(), 50_000, 42);
    let kind: IndexKind = "sharded-rsmi".parse().expect("registered kind");
    let config = IndexConfig::default()
        .with_partition_threshold(5_000)
        .with_shards(4)
        .with_threads(2);
    let start = std::time::Instant::now();
    let index = build_index(kind, &points, &config);
    let build_s = start.elapsed().as_secs_f64();
    println!(
        "built {} over {} points in {:.2}s ({} trained sub-models)",
        index.name(),
        index.len(),
        build_s,
        index.model_count()
    );

    // 2. Run a reference workload and keep its answers and cost counters.
    let windows = queries::window_queries(&points, queries::WindowSpec::default(), 50, 7);
    let mut cx = QueryContext::new();
    let reference = index.window_queries(&windows, &mut cx);
    let reference_stats = cx.take_stats();

    // 3. Save the snapshot and drop the in-memory index — simulating a
    //    process restart.
    let path = std::env::temp_dir().join("snapshot_restore_example.rsmi");
    let start = std::time::Instant::now();
    save_index(index.as_ref(), &path).expect("save snapshot");
    let save_s = start.elapsed().as_secs_f64();
    let file_mb = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) as f64 / (1024.0 * 1024.0);
    drop(index);
    println!(
        "saved snapshot: {file_mb:.1} MB in {save_s:.3}s at {}",
        path.display()
    );

    // 4. Load it back.  This is the restart path: no sorting, no packing,
    //    no training — the dominant cost is reading the file.
    let start = std::time::Instant::now();
    let restored = load_index(&path).expect("load snapshot");
    let load_s = start.elapsed().as_secs_f64();
    println!(
        "loaded {} in {:.3}s — {:.0}x faster than building",
        restored.name(),
        load_s,
        build_s / load_s.max(1e-9)
    );

    // 5. Replay the workload: answers and per-query statistics must be
    //    byte-identical to the pre-restart run.
    let mut cx = QueryContext::new();
    let replayed = restored.window_queries(&windows, &mut cx);
    let replayed_stats = cx.take_stats();
    assert_eq!(reference, replayed, "answers changed across the restart");
    assert_eq!(
        reference_stats, replayed_stats,
        "query costs changed across the restart"
    );
    println!(
        "replayed {} windows: identical answers, identical cost ({} blocks, {} shard visits)",
        windows.len(),
        replayed_stats.blocks_touched,
        replayed_stats.shards_visited
    );

    std::fs::remove_file(&path).ok();
}
