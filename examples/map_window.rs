//! "Search this area": window queries over a Tiger-like geographic data set,
//! comparing the approximate RSMI answer, the exact RSMIa traversal, and a
//! traditional R-tree, and reporting recall.  All three variants come from
//! the dynamic registry — no concrete index types appear in this example.
//!
//! Run with `cargo run --release --example map_window`.

use common::{brute_force, metrics, QueryContext};
use datagen::{generate, queries, Distribution};
use registry::{build_index, IndexConfig, IndexKind};

fn main() {
    let n = 100_000;
    let features = generate(Distribution::TigerLike, n, 3);
    println!("indexing {n} Tiger-like geographic features…");

    let config = IndexConfig::default()
        .with_partition_threshold(5_000)
        .with_epochs(25);
    let kinds = [IndexKind::Rsmi, IndexKind::Rsmia, IndexKind::Hrr];
    let indices: Vec<_> = kinds
        .iter()
        .map(|&kind| build_index(kind, &features, &config))
        .collect();

    // Map viewports of different sizes, positioned where the data is.
    for &area_pct in &[0.01f64, 0.16] {
        let spec = queries::WindowSpec {
            area_percent: area_pct,
            aspect_ratio: 2.0,
        };
        let windows = queries::window_queries(&features, spec, 100, 11);

        println!("\nviewport area = {area_pct}% of the map, aspect ratio 2:1");
        println!("{:<8} {:>14} {:>10}", "index", "avg time (ms)", "recall");
        for index in &indices {
            let mut cx = QueryContext::new();
            let start = std::time::Instant::now();
            let answers = index.window_queries(&windows, &mut cx);
            let avg_ms = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;

            let mut recalls = Vec::new();
            for (w, got) in windows.iter().zip(&answers) {
                let truth = brute_force::window_query(&features, w);
                recalls.push(metrics::recall(got, &truth));
            }
            println!(
                "{:<8} {avg_ms:>14.3} {:>10.3}",
                index.name(),
                metrics::mean(&recalls)
            );
        }
    }
}
