//! "Search this area": window queries over a Tiger-like geographic data set,
//! comparing the approximate RSMI answer, the exact RSMIa traversal, and a
//! traditional R-tree, and reporting recall.
//!
//! Run with `cargo run --release -p rsmi --example map_window`.

use baselines::HilbertRTree;
use common::{brute_force, metrics, SpatialIndex};
use datagen::{generate, queries, Distribution};
use rsmi::{Rsmi, RsmiConfig};

fn main() {
    let n = 100_000;
    let features = generate(Distribution::TigerLike, n, 3);
    println!("indexing {n} Tiger-like geographic features…");

    let rsmi = Rsmi::build(
        features.clone(),
        RsmiConfig::default().with_partition_threshold(5_000).with_epochs(25),
    );
    let hrr = HilbertRTree::build(features.clone(), 100);

    // Map viewports of different sizes, positioned where the data is.
    for &area_pct in &[0.01f64, 0.16] {
        let spec = queries::WindowSpec { area_percent: area_pct, aspect_ratio: 2.0 };
        let windows = queries::window_queries(&features, spec, 100, 11);

        let mut rows = Vec::new();
        // RSMI approximate.
        let start = std::time::Instant::now();
        let approx: Vec<_> = windows.iter().map(|w| rsmi.window_query(w)).collect();
        let t_approx = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;
        // RSMIa exact.
        let start = std::time::Instant::now();
        let exact: Vec<_> = windows.iter().map(|w| rsmi.window_query_exact(w)).collect();
        let t_exact = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;
        // HRR.
        let start = std::time::Instant::now();
        let tree: Vec<_> = windows.iter().map(|w| hrr.window_query(w)).collect();
        let t_tree = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;

        let recall_of = |answers: &[Vec<geom::Point>]| {
            let mut recalls = Vec::new();
            for (w, got) in windows.iter().zip(answers) {
                let truth = brute_force::window_query(&features, w);
                recalls.push(metrics::recall(got, &truth));
            }
            metrics::mean(&recalls)
        };
        rows.push(("RSMI", t_approx, recall_of(&approx)));
        rows.push(("RSMIa", t_exact, recall_of(&exact)));
        rows.push(("HRR", t_tree, recall_of(&tree)));

        println!("\nviewport area = {area_pct}% of the map, aspect ratio 2:1");
        println!("{:<8} {:>14} {:>10}", "index", "avg time (ms)", "recall");
        for (name, t, r) in rows {
            println!("{name:<8} {t:>14.3} {r:>10.3}");
        }
    }
}
