//! A live map service: reader threads answer point/window/kNN queries while
//! a writer streams in updates and the background compactor folds them into
//! fresh epochs — nobody stops serving.
//!
//! Shows the concurrent serving engine (`crates/server`) end to end:
//! registry-built base index, snapshot reads with per-worker contexts,
//! sequenced delta writes, and epoch swaps observed live.
//!
//! Run with `cargo run --release --example live_serve`.

use bench::live::split_stream;
use common::QueryContext;
use datagen::queries::{self, MixedQuery, WindowSpec};
use datagen::{generate, Distribution};
use registry::{serve_index, IndexConfig, IndexKind, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let n = 200_000;
    let readers = 6;
    let data = generate(Distribution::skewed_default(), n, 42);

    let build = Instant::now();
    let server = serve_index(
        IndexKind::Hrr,
        &data,
        &IndexConfig::default(),
        ServerConfig::default().with_compact_threshold(2_000),
    );
    println!(
        "built HRR over {n} points in {:.2}s — serving with {readers} readers + 1 writer",
        build.elapsed().as_secs_f64()
    );

    // A 20%-write workload: the writer applies the writes, the readers
    // split the reads.
    let ops = queries::read_write_workload(&data, WindowSpec::default(), 25, 60_000, 0.2, 7);
    let (reads, writes) = split_stream(&ops);

    let answered = AtomicU64::new(0);
    let total_reads = reads.len();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let server = &server;
        let answered = &answered;

        scope.spawn({
            let writes = &writes;
            move || {
                for op in writes {
                    server.apply(*op);
                }
                println!("writer done: {} ops applied", writes.len());
            }
        });

        for r in 0..readers {
            let reads = &reads;
            scope.spawn(move || {
                let mut cx = QueryContext::new();
                let mut results = 0u64;
                for q in reads.iter().skip(r).step_by(readers) {
                    let snap = server.snapshot();
                    match *q {
                        MixedQuery::Point(p) => {
                            results += snap.point_query(&p, &mut cx).is_some() as u64;
                        }
                        MixedQuery::Window(w) => {
                            snap.window_query_visit(&w, &mut cx, &mut |_| results += 1);
                        }
                        MixedQuery::Knn(p, k) => {
                            snap.knn_query_visit(&p, k, &mut cx, &mut |_| results += 1);
                        }
                    }
                    answered.fetch_add(1, Ordering::Relaxed);
                }
                let stats = cx.take_stats();
                println!(
                    "reader {r}: {} queries, {} results, {} block+node accesses",
                    reads.len() / readers,
                    results,
                    stats.total_accesses()
                );
            });
        }

        // A progress thread watches epochs swap while everyone else runs.
        scope.spawn(move || loop {
            let st = server.stats();
            println!(
                "  t+{:>5.2}s  epoch {:>2}  seq {:>6}  delta {:>5} ops  {:>6} queries answered",
                start.elapsed().as_secs_f64(),
                st.epoch,
                st.seq,
                st.delta_ops,
                answered.load(Ordering::Relaxed)
            );
            if answered.load(Ordering::Relaxed) >= total_reads as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(250));
        });
    });

    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    println!(
        "\nserved {} reads and {} writes in {elapsed:.2}s \
         ({:.0} reads/s, {:.0} writes/s)",
        reads.len(),
        writes.len(),
        reads.len() as f64 / elapsed,
        writes.len() as f64 / elapsed,
    );
    println!(
        "epochs swapped: {} (background compactions, readers never paused); \
         final size {} points at seq {}",
        stats.compactions, stats.len, stats.seq
    );
}
