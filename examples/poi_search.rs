//! "Dinner near me": k-nearest-neighbour search over an OSM-like POI data
//! set, comparing RSMI's learned kNN algorithm against the R-tree best-first
//! search (HRR) and brute force.  Both indices are constructed through the
//! dynamic registry and queried through the uniform batch API.
//!
//! Run with `cargo run --release --example poi_search`.

use common::{brute_force, metrics, QueryContext};
use datagen::{generate, queries, Distribution};
use registry::{build_index, IndexConfig, IndexKind};

fn main() {
    let n = 100_000;
    let k = 10;
    let pois = generate(Distribution::OsmLike, n, 7);
    println!("indexing {n} OSM-like points of interest…");

    let config = IndexConfig::default()
        .with_partition_threshold(5_000)
        .with_epochs(25);

    // 200 users asking "what are the 10 closest restaurants?"
    let users = queries::knn_queries(&pois, 200, 99);

    println!(
        "\n{:<8} {:>14} {:>10} {:>16}",
        "index", "avg time (ms)", "recall", "accesses/query"
    );
    let mut rsmi = None;
    for kind in [IndexKind::Rsmi, IndexKind::Hrr] {
        let index = build_index(kind, &pois, &config);
        let mut cx = QueryContext::new();
        let start = std::time::Instant::now();
        let answers = index.knn_queries(&users, k, &mut cx);
        let avg_ms = start.elapsed().as_secs_f64() * 1e3 / users.len() as f64;
        let stats = cx.take_stats();

        let mut recalls = Vec::new();
        for (u, ans) in users.iter().zip(&answers) {
            let truth = brute_force::knn_query(&pois, u, k);
            recalls.push(metrics::knn_recall(ans, &truth, u, k));
        }
        println!(
            "{:<8} {:>14.3} {:>10.3} {:>16.1}",
            index.name(),
            avg_ms,
            metrics::mean(&recalls),
            stats.total_accesses() as f64 / users.len() as f64
        );
        if kind == IndexKind::Rsmi {
            rsmi = Some(index);
        }
    }

    // Show one concrete answer, reusing the RSMI built above.
    let rsmi = rsmi.expect("RSMI was built in the comparison loop");
    let mut cx = QueryContext::new();
    let u = users[0];
    println!(
        "\nexample user at ({:.4}, {:.4}) — top {k} POIs (RSMI):",
        u.x, u.y
    );
    for p in rsmi.knn_query(&u, k, &mut cx) {
        println!("  poi {:>6}  dist {:.5}", p.id, p.dist(&u));
    }
}
