//! "Dinner near me": k-nearest-neighbour search over an OSM-like POI data
//! set, comparing RSMI's learned kNN algorithm against the R-tree best-first
//! search (HRR) and brute force.
//!
//! Run with `cargo run --release -p rsmi --example poi_search`.

use baselines::HilbertRTree;
use common::{brute_force, metrics, SpatialIndex};
use datagen::{generate, queries, Distribution};
use rsmi::{Rsmi, RsmiConfig};

fn main() {
    let n = 100_000;
    let k = 10;
    let pois = generate(Distribution::OsmLike, n, 7);
    println!("indexing {n} OSM-like points of interest…");

    let rsmi = Rsmi::build(
        pois.clone(),
        RsmiConfig::default().with_partition_threshold(5_000).with_epochs(25),
    );
    let hrr = HilbertRTree::build(pois.clone(), 100);

    // 200 users asking "what are the 10 closest restaurants?"
    let users = queries::knn_queries(&pois, 200, 99);

    let mut rsmi_recalls = Vec::new();
    let start = std::time::Instant::now();
    let rsmi_answers: Vec<_> = users.iter().map(|u| rsmi.knn_query(u, k)).collect();
    let rsmi_time = start.elapsed().as_secs_f64() * 1e3 / users.len() as f64;

    let start = std::time::Instant::now();
    let hrr_answers: Vec<_> = users.iter().map(|u| hrr.knn_query(u, k)).collect();
    let hrr_time = start.elapsed().as_secs_f64() * 1e3 / users.len() as f64;

    for (u, ans) in users.iter().zip(&rsmi_answers) {
        let truth = brute_force::knn_query(&pois, u, k);
        rsmi_recalls.push(metrics::knn_recall(ans, &truth, u, k));
    }
    let mut hrr_recalls = Vec::new();
    for (u, ans) in users.iter().zip(&hrr_answers) {
        let truth = brute_force::knn_query(&pois, u, k);
        hrr_recalls.push(metrics::knn_recall(ans, &truth, u, k));
    }

    println!("\n{:<8} {:>14} {:>10}", "index", "avg time (ms)", "recall");
    println!("{:<8} {:>14.3} {:>10.3}", "RSMI", rsmi_time, metrics::mean(&rsmi_recalls));
    println!("{:<8} {:>14.3} {:>10.3}", "HRR", hrr_time, metrics::mean(&hrr_recalls));

    // Show one concrete answer.
    let u = users[0];
    println!("\nexample user at ({:.4}, {:.4}) — top {k} POIs (RSMI):", u.x, u.y);
    for p in rsmi.knn_query(&u, k) {
        println!("  poi {:>6}  dist {:.5}", p.id, p.dist(&u));
    }
}
