#!/usr/bin/env bash
# Autovectorization guard for the storage scan kernels.
#
# Compiles the `storage` crate to assembly and checks that the bodies of the
# `kernels::asm_probes::*` symbols (non-inlined instantiations of the chunked
# scan kernels) contain packed SIMD instructions.  If a refactor silently
# turns the kernels scalar — an indexed loop reintroducing bounds checks is
# the classic cause — this fails CI before the perf gate has to notice the
# throughput drop.
#
# Expected instruction families (see crates/storage/src/kernels.rs):
#   x86-64 SSE2 baseline: mulpd / subpd / addpd (batch squared distances),
#                         cmplepd / cmpnlepd (batch rect + radius compares),
#                         minpd / maxpd (MBR folds), movupd/movapd (lane IO)
#   x86-64 AVX:           the same, v-prefixed (vmulpd, vcmppd, ...), plus
#                         vfmadd*pd if FMA contraction is ever enabled
#   aarch64 NEON:         fmul/fsub/fadd v*.2d, fcmge/fcmle v*.2d,
#                         fmin/fmax v*.2d
#
# The build sets CARGO_PROFILE_RELEASE_LTO=false: under the workspace's thin
# LTO, rustc passes -C linker-plugin-lto and `--emit asm` shows pre-LTO
# (scalar, unoptimized) codegen, which would always fail the grep.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "checking scan-kernel autovectorization..."
CARGO_PROFILE_RELEASE_LTO=false cargo rustc --release -p storage -- --emit asm >/dev/null

asm=$(ls -t target/release/deps/storage-*.s | head -1)
if [ -z "$asm" ]; then
    echo "FAIL: no assembly emitted (expected target/release/deps/storage-*.s)" >&2
    exit 1
fi

packed='(v?(mul|sub|add|min|max|cmp[a-z]*|movu)p[ds]|vfmadd[0-9]*pd|(fmul|fsub|fadd|fcmge|fcmle|fmin|fmax)[[:space:]]+v[0-9]+\.2d)'

fail=0
for probe in rect_mask within_mask dist_sq_into mbr_of; do
    body=$(awk -v s="asm_probes.*${probe}.*:\$" \
        '$0 ~ s {on=1} on {print} on && /cfi_endproc/ {on=0}' "$asm")
    if [ -z "$body" ]; then
        echo "FAIL: kernel probe symbol asm_probes::${probe} not found in $asm" >&2
        fail=1
        continue
    fi
    n=$(printf '%s\n' "$body" | grep -cE "$packed" || true)
    if [ "$n" -eq 0 ]; then
        echo "FAIL: kernels::${probe} compiled to scalar code (no packed SIMD ops)." >&2
        echo "      The SoA scan kernels must autovectorize; a bounds check or" >&2
        echo "      early exit in the loop body usually causes this.  Inspect:" >&2
        echo "      CARGO_PROFILE_RELEASE_LTO=false cargo rustc --release -p storage -- --emit asm" >&2
        fail=1
    else
        echo "  kernels::${probe}: $n packed SIMD instruction(s) — OK"
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "autovectorization check passed"
