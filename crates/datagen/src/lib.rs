//! Data-set and query-workload generators.
//!
//! The paper evaluates on two real data sets (Tiger, OSM) and three synthetic
//! families (Uniform, Normal, Skewed), with query workloads that "follow the
//! data distribution" (§6.1, Table 2).  This crate provides:
//!
//! * [`Distribution`] — the five data-set families.  The two real data sets
//!   cannot be redistributed, so `TigerLike` and `OsmLike` are synthetic
//!   surrogates that reproduce the properties the experiments exercise
//!   (strong clustering along linear features for Tiger, heavy-tailed
//!   multi-modal population clusters for OSM); see DESIGN.md §2.
//! * [`generate`] — deterministic, seeded point generation,
//! * [`queries`] — point-, window- and kNN-query workload generators with the
//!   paper's parameters (window area fraction, aspect ratio, k).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queries;

use geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The data-set families of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform over the unit square.
    Uniform,
    /// Truncated normal centred at (0.5, 0.5).
    Normal,
    /// Uniform x; y raised to the power `alpha` (the paper uses α = 4).
    Skewed {
        /// Skew exponent applied to the y-coordinate.
        alpha: i32,
    },
    /// Surrogate for the Tiger data set: points clustered along line
    /// segments ("roads") plus compact town clusters.
    TigerLike,
    /// Surrogate for the OSM data set: heavy-tailed mixture of population
    /// centres over a sparse uniform background.
    OsmLike,
}

impl Distribution {
    /// The default skewed distribution (α = 4) used throughout the paper.
    pub fn skewed_default() -> Self {
        Distribution::Skewed { alpha: 4 }
    }

    /// All five families in the order the paper's figures list them
    /// (Uniform, Normal, Skewed, Tiger, OSM).
    pub fn all() -> [Distribution; 5] {
        [
            Distribution::Uniform,
            Distribution::Normal,
            Distribution::skewed_default(),
            Distribution::TigerLike,
            Distribution::OsmLike,
        ]
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "Uniform",
            Distribution::Normal => "Normal",
            Distribution::Skewed { .. } => "Skewed",
            Distribution::TigerLike => "Tiger",
            Distribution::OsmLike => "OSM",
        }
    }
}

/// Generates `n` points of the given distribution, deterministically from the
/// seed.  Point ids are `0..n`.
pub fn generate(dist: Distribution, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(n);
    match dist {
        Distribution::Uniform => {
            for id in 0..n {
                pts.push(Point::with_id(
                    rng.gen::<f64>(),
                    rng.gen::<f64>(),
                    id as u64,
                ));
            }
        }
        Distribution::Normal => {
            for id in 0..n {
                let x = truncated_normal(&mut rng, 0.5, 0.17);
                let y = truncated_normal(&mut rng, 0.5, 0.17);
                pts.push(Point::with_id(x, y, id as u64));
            }
        }
        Distribution::Skewed { alpha } => {
            // Following the paper (and the HRR experiments it cites): uniform
            // data with the y-coordinate raised to its power yᵅ.
            for id in 0..n {
                let x = rng.gen::<f64>();
                let y = rng.gen::<f64>().powi(alpha);
                pts.push(Point::with_id(x, y, id as u64));
            }
        }
        Distribution::TigerLike => {
            generate_tiger_like(&mut rng, n, &mut pts);
        }
        Distribution::OsmLike => {
            generate_osm_like(&mut rng, n, &mut pts);
        }
    }
    pts
}

/// Box–Muller standard normal sample, scaled and truncated to `[0, 1]`.
fn truncated_normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = mean + std * z;
        if (0.0..=1.0).contains(&v) {
            return v;
        }
    }
}

/// Tiger-like surrogate: 60 % of points along randomly oriented line segments
/// (geographic features such as roads and rivers), 30 % in compact Gaussian
/// "town" clusters, 10 % uniform background.
fn generate_tiger_like(rng: &mut StdRng, n: usize, pts: &mut Vec<Point>) {
    let n_segments = 40.max(n / 10_000);
    let n_towns = 20.max(n / 20_000);
    let segments: Vec<(f64, f64, f64, f64)> = (0..n_segments)
        .map(|_| {
            let x0 = rng.gen::<f64>();
            let y0 = rng.gen::<f64>();
            let len = 0.05 + 0.3 * rng.gen::<f64>();
            let angle = rng.gen::<f64>() * std::f64::consts::PI;
            let x1 = (x0 + len * angle.cos()).clamp(0.0, 1.0);
            let y1 = (y0 + len * angle.sin()).clamp(0.0, 1.0);
            (x0, y0, x1, y1)
        })
        .collect();
    let towns: Vec<(f64, f64, f64)> = (0..n_towns)
        .map(|_| {
            (
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                0.005 + 0.02 * rng.gen::<f64>(),
            )
        })
        .collect();

    for id in 0..n {
        let r: f64 = rng.gen();
        let (x, y) = if r < 0.6 {
            let (x0, y0, x1, y1) = segments[rng.gen_range(0..segments.len())];
            let t: f64 = rng.gen();
            let jitter = 0.002;
            (
                (x0 + t * (x1 - x0) + jitter * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                (y0 + t * (y1 - y0) + jitter * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
            )
        } else if r < 0.9 {
            let (cx, cy, s) = towns[rng.gen_range(0..towns.len())];
            (
                truncated_normal(rng, cx.clamp(0.05, 0.95), s),
                truncated_normal(rng, cy.clamp(0.05, 0.95), s),
            )
        } else {
            (rng.gen(), rng.gen())
        };
        pts.push(Point::with_id(x, y, id as u64));
    }
}

/// OSM-like surrogate: cluster sizes follow a power law (a few huge
/// metropolitan areas, many small ones) over a sparse uniform background.
fn generate_osm_like(rng: &mut StdRng, n: usize, pts: &mut Vec<Point>) {
    let n_clusters = 80.max(n / 5_000).min(4000);
    // Power-law weights: weight_i ∝ 1 / (i + 1)^0.8.
    let mut weights: Vec<f64> = (0..n_clusters)
        .map(|i| 1.0 / ((i + 1) as f64).powf(0.8))
        .collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let centers: Vec<(f64, f64, f64)> = (0..n_clusters)
        .map(|i| {
            // Bigger clusters are also geographically wider.
            let spread = 0.004 + 0.05 * weights[i] * n_clusters as f64 / 10.0;
            (rng.gen::<f64>(), rng.gen::<f64>(), spread.min(0.08))
        })
        .collect();
    // Cumulative weights for sampling.
    let mut cum = Vec::with_capacity(n_clusters);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cum.push(acc);
    }

    for id in 0..n {
        let r: f64 = rng.gen();
        let (x, y) = if r < 0.92 {
            let u: f64 = rng.gen();
            let idx = cum.partition_point(|&c| c < u).min(n_clusters - 1);
            let (cx, cy, s) = centers[idx];
            (
                truncated_normal(rng, cx.clamp(0.03, 0.97), s),
                truncated_normal(rng, cy.clamp(0.03, 0.97), s),
            )
        } else {
            (rng.gen(), rng.gen())
        };
        pts.push(Point::with_id(x, y, id as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        for dist in Distribution::all() {
            let a = generate(dist, 500, 1);
            let b = generate(dist, 500, 1);
            let c = generate(dist, 500, 2);
            assert_eq!(a, b, "{dist:?} not deterministic");
            assert_ne!(a, c, "{dist:?} ignores the seed");
        }
    }

    #[test]
    fn generated_points_are_in_the_unit_square_with_sequential_ids() {
        for dist in Distribution::all() {
            let pts = generate(dist, 1000, 7);
            assert_eq!(pts.len(), 1000);
            for (i, p) in pts.iter().enumerate() {
                assert!((0.0..=1.0).contains(&p.x), "{dist:?} x out of range");
                assert!((0.0..=1.0).contains(&p.y), "{dist:?} y out of range");
                assert_eq!(p.id, i as u64);
            }
        }
    }

    #[test]
    fn skewed_data_concentrates_y_near_zero() {
        let pts = generate(Distribution::skewed_default(), 5000, 3);
        let below = pts.iter().filter(|p| p.y < 0.1).count();
        // For y = u^4, P(y < 0.1) = 0.1^(1/4) ≈ 0.56.
        assert!(below > 2300, "skewed data not skewed enough: {below}");
        // x stays uniform.
        let x_below = pts.iter().filter(|p| p.x < 0.5).count();
        assert!((2000..3000).contains(&x_below));
    }

    #[test]
    fn normal_data_concentrates_around_the_centre() {
        let pts = generate(Distribution::Normal, 5000, 3);
        let central = pts
            .iter()
            .filter(|p| (p.x - 0.5).abs() < 0.34 && (p.y - 0.5).abs() < 0.34)
            .count();
        assert!(central > 3500, "normal data not concentrated: {central}");
    }

    #[test]
    fn clustered_surrogates_are_less_uniform_than_uniform_data() {
        // Compare occupancy of a 16x16 grid: clustered data leaves many more
        // cells (nearly) empty than uniform data does.
        let occupancy_variance = |pts: &[Point]| {
            let mut counts = vec![0f64; 256];
            for p in pts {
                let cx = ((p.x * 16.0) as usize).min(15);
                let cy = ((p.y * 16.0) as usize).min(15);
                counts[cy * 16 + cx] += 1.0;
            }
            let mean = pts.len() as f64 / 256.0;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / 256.0
        };
        let uni = occupancy_variance(&generate(Distribution::Uniform, 20_000, 5));
        let tiger = occupancy_variance(&generate(Distribution::TigerLike, 20_000, 5));
        let osm = occupancy_variance(&generate(Distribution::OsmLike, 20_000, 5));
        assert!(
            tiger > 2.0 * uni,
            "tiger-like should be clustered (var {tiger} vs {uni})"
        );
        assert!(
            osm > 2.0 * uni,
            "osm-like should be clustered (var {osm} vs {uni})"
        );
    }

    #[test]
    fn distribution_names_are_stable() {
        let names: Vec<&str> = Distribution::all().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["Uniform", "Normal", "Skewed", "Tiger", "OSM"]);
    }

    #[test]
    fn duplicate_locations_are_rare() {
        let pts = generate(Distribution::OsmLike, 10_000, 9);
        let mut coords: Vec<(u64, u64)> =
            pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        coords.sort_unstable();
        coords.dedup();
        assert_eq!(
            coords.len(),
            pts.len(),
            "exact duplicate coordinates generated"
        );
    }
}
