//! Query-workload generators (Table 2 of the paper).
//!
//! "We generate queries that follow the data distribution for each set of
//! query experiments" (§6.1): query anchors are sampled from the data set
//! itself, so dense regions receive proportionally more queries.

use geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default number of queries per experiment in the paper (window and kNN).
pub const DEFAULT_QUERY_COUNT: usize = 1000;

/// The paper's window-size axis: query window area as a *percentage* of the
/// data-space area (Table 2), default 0.01 %.
pub const WINDOW_SIZE_PERCENTS: [f64; 5] = [0.0006, 0.0025, 0.01, 0.04, 0.16];

/// The paper's aspect-ratio axis, default 1.
pub const ASPECT_RATIOS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// The paper's k axis for kNN queries, default 25.
pub const K_VALUES: [usize; 5] = [1, 5, 25, 125, 625];

/// Radius axis for distance-range and distance-join workloads, as a
/// fraction of the unit data space (the default, 0.02, selects a circle of
/// the same order of magnitude as the paper's default 0.01 % window).
pub const RANGE_RADII: [f64; 4] = [0.005, 0.01, 0.02, 0.05];

/// Default radius of distance-range and distance-join workloads.
pub const DEFAULT_RANGE_RADIUS: f64 = 0.02;

/// Parameters of a window-query workload.
#[derive(Debug, Clone, Copy)]
pub struct WindowSpec {
    /// Window area as a percentage of the data space (e.g. `0.01` = 0.01 %).
    pub area_percent: f64,
    /// Width : height ratio of the window.
    pub aspect_ratio: f64,
}

impl Default for WindowSpec {
    fn default() -> Self {
        Self {
            area_percent: 0.01,
            aspect_ratio: 1.0,
        }
    }
}

impl WindowSpec {
    /// Absolute width and height of a window in the unit square.
    pub fn dimensions(&self) -> (f64, f64) {
        let area = self.area_percent / 100.0;
        let width = (area * self.aspect_ratio).sqrt();
        let height = (area / self.aspect_ratio).sqrt();
        (width, height)
    }
}

/// Samples `count` query points from the data set (the paper uses the data
/// points themselves as point queries).
pub fn point_queries(data: &[Point], count: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| data[rng.gen_range(0..data.len())])
        .collect()
}

/// Generates point queries that are *not* in the data set (negative lookups),
/// by jittering sampled data points.
pub fn negative_point_queries(data: &[Point], count: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    (0..count)
        .map(|i| {
            let p = data[rng.gen_range(0..data.len())];
            Point::with_id(
                (p.x + 1e-7 + 1e-6 * rng.gen::<f64>()).min(1.0),
                (p.y + 1e-7 + 1e-6 * rng.gen::<f64>()).min(1.0),
                u64::MAX - i as u64,
            )
        })
        .collect()
}

/// Generates `count` window queries following the data distribution: each
/// window is centred at a sampled data point and clamped to the unit square.
pub fn window_queries(data: &[Point], spec: WindowSpec, count: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (w, h) = spec.dimensions();
    (0..count)
        .map(|_| {
            let c = data[rng.gen_range(0..data.len())];
            let cx = c.x.clamp(w / 2.0, 1.0 - w / 2.0);
            let cy = c.y.clamp(h / 2.0, 1.0 - h / 2.0);
            Rect::centered(cx, cy, w, h)
        })
        .collect()
}

/// Generates `count` **hotspot** window queries: all query centres are drawn
/// from one small Gaussian cluster around a (seeded) anchor data point, the
/// way real serving traffic piles onto one city or venue.
///
/// Under a sharded serving layer this is the workload that rewards MBR
/// pruning most: almost every query intersects the same few shards, so the
/// planner skips the rest.
pub fn hotspot_window_queries(
    data: &[Point],
    spec: WindowSpec,
    count: usize,
    seed: u64,
) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x407);
    let anchor = data[rng.gen_range(0..data.len())];
    let spread = 0.02;
    let (w, h) = spec.dimensions();
    (0..count)
        .map(|_| {
            // Box–Muller pair around the anchor, truncated to the unit
            // square; the cluster is tight so queries stay in the hotspot.
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            let cx = (anchor.x + spread * r * theta.cos()).clamp(w / 2.0, 1.0 - w / 2.0);
            let cy = (anchor.y + spread * r * theta.sin()).clamp(h / 2.0, 1.0 - h / 2.0);
            Rect::centered(cx, cy, w, h)
        })
        .collect()
}

/// One operation of a mixed point/window/kNN workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixedQuery {
    /// Exact-match point lookup.
    Point(Point),
    /// Window query.
    Window(Rect),
    /// k-nearest-neighbour query.
    Knn(Point, usize),
}

/// Generates a mixed workload of roughly equal parts point, window and kNN
/// queries (all following the data distribution), shuffled into one stream —
/// the shape a serving layer sees, rather than the paper's per-type
/// experiments.
pub fn mixed_workload(
    data: &[Point],
    spec: WindowSpec,
    k: usize,
    count: usize,
    seed: u64,
) -> Vec<MixedQuery> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x111ED);
    let (w, h) = spec.dimensions();
    (0..count)
        .map(|i| {
            let p = data[rng.gen_range(0..data.len())];
            match rng.gen_range(0..3u64) {
                0 => MixedQuery::Point(p),
                1 => {
                    let cx = p.x.clamp(w / 2.0, 1.0 - w / 2.0);
                    let cy = p.y.clamp(h / 2.0, 1.0 - h / 2.0);
                    MixedQuery::Window(Rect::centered(cx, cy, w, h))
                }
                _ => MixedQuery::Knn(
                    Point::with_id(
                        (p.x + 0.001 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                        (p.y + 0.001 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                        i as u64,
                    ),
                    k,
                ),
            }
        })
        .collect()
}

/// One operation of a live read/write serving workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeOp {
    /// A read: point, window, or kNN query.
    Read(MixedQuery),
    /// Insert a new point (fresh id, following the data distribution).
    Insert(Point),
    /// Delete a point that existed at some earlier moment of the stream
    /// (an original data point or an earlier insert; a point may be chosen
    /// twice, making the second delete a no-op — serving layers must cope).
    Delete(Point),
}

impl ServeOp {
    /// Whether the op mutates the data set.
    pub fn is_write(&self) -> bool {
        !matches!(self, ServeOp::Read(_))
    }
}

/// Generates a mixed **read/write** serving workload: a shuffled stream in
/// which each op is a write with probability `write_ratio` (half inserts,
/// half deletes on average) and otherwise a read drawn like
/// [`mixed_workload`] (roughly equal parts point/window/kNN, following the
/// data distribution).
///
/// Inserts carry fresh ids (continuing after `data.len()` and never
/// clashing); deletes target either an original data point or an earlier
/// insert from the same stream, so replaying the stream in order against
/// `data` is always well-defined.  Deterministic for a `(data, seed)` pair.
pub fn read_write_workload(
    data: &[Point],
    spec: WindowSpec,
    k: usize,
    count: usize,
    write_ratio: f64,
    seed: u64,
) -> Vec<ServeOp> {
    assert!(
        (0.0..=1.0).contains(&write_ratio),
        "write_ratio must be a probability, got {write_ratio}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x53E7);
    let (w, h) = spec.dimensions();
    let mut next_id = data.len() as u64;
    // Every point that has ever been live: delete targets come from here.
    let mut inserted: Vec<Point> = Vec::new();
    (0..count)
        .map(|i| {
            if rng.gen::<f64>() < write_ratio {
                if rng.gen::<f64>() < 0.5 {
                    let anchor = data[rng.gen_range(0..data.len())];
                    let p = Point::with_id(
                        (anchor.x + 0.01 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                        (anchor.y + 0.01 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                        next_id,
                    );
                    next_id += 1;
                    inserted.push(p);
                    ServeOp::Insert(p)
                } else {
                    let total = data.len() + inserted.len();
                    let pick = rng.gen_range(0..total);
                    let victim = if pick < data.len() {
                        data[pick]
                    } else {
                        inserted[pick - data.len()]
                    };
                    ServeOp::Delete(victim)
                }
            } else {
                let p = data[rng.gen_range(0..data.len())];
                ServeOp::Read(match rng.gen_range(0..3u64) {
                    0 => MixedQuery::Point(p),
                    1 => {
                        let cx = p.x.clamp(w / 2.0, 1.0 - w / 2.0);
                        let cy = p.y.clamp(h / 2.0, 1.0 - h / 2.0);
                        MixedQuery::Window(Rect::centered(cx, cy, w, h))
                    }
                    _ => MixedQuery::Knn(
                        Point::with_id(
                            (p.x + 0.001 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                            (p.y + 0.001 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                            i as u64,
                        ),
                        k,
                    ),
                })
            }
        })
        .collect()
}

/// Generates `count` kNN query points following the data distribution
/// (sampled data points with a small jitter so they are rarely exact data
/// locations).
pub fn knn_queries(data: &[Point], count: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let p = data[rng.gen_range(0..data.len())];
            Point::with_id(
                (p.x + 0.001 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                (p.y + 0.001 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                i as u64,
            )
        })
        .collect()
}

/// Generates `count` distance-range query centres following the data
/// distribution (sampled data points with a small jitter, like
/// [`knn_queries`] but on an independent seed stream so the two workloads
/// don't collide).
pub fn range_query_centers(data: &[Point], count: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7AD1);
    (0..count)
        .map(|i| {
            let p = data[rng.gen_range(0..data.len())];
            Point::with_id(
                (p.x + 0.002 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                (p.y + 0.002 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                i as u64,
            )
        })
        .collect()
}

/// Generates the **inner side of a distance join**: `count` points following
/// the data distribution (sampled with jitter), with ids from a disjoint
/// space (`1 << 40` upwards) so join pairs are unambiguous in test output.
pub fn join_points(data: &[Point], count: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x101B);
    let base = 1u64 << 40;
    (0..count)
        .map(|i| {
            let p = data[rng.gen_range(0..data.len())];
            Point::with_id(
                (p.x + 0.05 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                (p.y + 0.05 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                base + i as u64,
            )
        })
        .collect()
}

/// Generates `count` new points for insertion experiments, following the same
/// distribution as the data (sampled with jitter), with ids that do not clash
/// with the existing `0..n` ids.
pub fn insertion_points(data: &[Point], count: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let base = data.len() as u64;
    (0..count)
        .map(|i| {
            let p = data[rng.gen_range(0..data.len())];
            Point::with_id(
                (p.x + 0.01 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                (p.y + 0.01 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0),
                base + i as u64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Distribution};

    #[test]
    fn window_spec_dimensions_match_area_and_ratio() {
        let spec = WindowSpec {
            area_percent: 0.16,
            aspect_ratio: 4.0,
        };
        let (w, h) = spec.dimensions();
        assert!((w * h - 0.0016).abs() < 1e-12);
        assert!((w / h - 4.0).abs() < 1e-9);
    }

    #[test]
    fn default_window_spec_is_the_paper_default() {
        let spec = WindowSpec::default();
        assert_eq!(spec.area_percent, 0.01);
        assert_eq!(spec.aspect_ratio, 1.0);
    }

    #[test]
    fn point_queries_come_from_the_data() {
        let data = generate(Distribution::Uniform, 200, 11);
        let qs = point_queries(&data, 50, 1);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert!(data.iter().any(|p| p.id == q.id && p.same_location(q)));
        }
    }

    #[test]
    fn negative_point_queries_are_not_in_the_data() {
        let data = generate(Distribution::Uniform, 200, 11);
        let qs = negative_point_queries(&data, 50, 1);
        for q in &qs {
            assert!(!data.iter().any(|p| p.same_location(q)));
        }
    }

    #[test]
    fn window_queries_stay_inside_the_unit_square() {
        let data = generate(Distribution::skewed_default(), 500, 13);
        for &pct in &WINDOW_SIZE_PERCENTS {
            for &ratio in &ASPECT_RATIOS {
                let spec = WindowSpec {
                    area_percent: pct,
                    aspect_ratio: ratio,
                };
                for w in window_queries(&data, spec, 20, 3) {
                    assert!(w.min_x >= -1e-12 && w.max_x <= 1.0 + 1e-12);
                    assert!(w.min_y >= -1e-12 && w.max_y <= 1.0 + 1e-12);
                    let (ww, hh) = spec.dimensions();
                    assert!((w.width() - ww).abs() < 1e-9);
                    assert!((w.height() - hh).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let data = generate(Distribution::Normal, 300, 17);
        assert_eq!(point_queries(&data, 10, 5), point_queries(&data, 10, 5));
        assert_eq!(knn_queries(&data, 10, 5), knn_queries(&data, 10, 5));
        let spec = WindowSpec::default();
        assert_eq!(
            window_queries(&data, spec, 10, 5),
            window_queries(&data, spec, 10, 5)
        );
    }

    #[test]
    fn hotspot_windows_cluster_around_one_anchor() {
        let data = generate(Distribution::Uniform, 2_000, 21);
        let spec = WindowSpec::default();
        let ws = hotspot_window_queries(&data, spec, 200, 5);
        assert_eq!(ws.len(), 200);
        // Deterministic for a seed.
        assert_eq!(ws, hotspot_window_queries(&data, spec, 200, 5));
        // All centres fall inside a small disc: the workload covers a tiny
        // fraction of the data space, unlike the data-following workload.
        let centres: Vec<Point> = ws.iter().map(Rect::center).collect();
        let mean = Point::new(
            centres.iter().map(|c| c.x).sum::<f64>() / centres.len() as f64,
            centres.iter().map(|c| c.y).sum::<f64>() / centres.len() as f64,
        );
        let within = centres.iter().filter(|c| c.dist(&mean) < 0.15).count();
        assert!(within > 190, "hotspot not concentrated: {within}/200");
        for w in &ws {
            assert!(w.min_x >= -1e-12 && w.max_x <= 1.0 + 1e-12);
            assert!(w.min_y >= -1e-12 && w.max_y <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn mixed_workload_contains_all_three_query_types() {
        let data = generate(Distribution::Normal, 1_000, 23);
        let mix = mixed_workload(&data, WindowSpec::default(), 10, 300, 7);
        assert_eq!(mix.len(), 300);
        assert_eq!(
            mix,
            mixed_workload(&data, WindowSpec::default(), 10, 300, 7)
        );
        let points = mix
            .iter()
            .filter(|q| matches!(q, MixedQuery::Point(_)))
            .count();
        let windows = mix
            .iter()
            .filter(|q| matches!(q, MixedQuery::Window(_)))
            .count();
        let knns = mix
            .iter()
            .filter(|q| matches!(q, MixedQuery::Knn(_, k) if *k == 10))
            .count();
        assert_eq!(points + windows + knns, 300);
        // Roughly equal thirds.
        for share in [points, windows, knns] {
            assert!((60..=140).contains(&share), "unbalanced mix: {share}/300");
        }
    }

    #[test]
    fn read_write_workload_respects_the_ratio_and_replays_cleanly() {
        let data = generate(Distribution::skewed_default(), 800, 27);
        let ops = read_write_workload(&data, WindowSpec::default(), 10, 2_000, 0.1, 9);
        assert_eq!(ops.len(), 2_000);
        // Deterministic for a seed.
        assert_eq!(
            ops,
            read_write_workload(&data, WindowSpec::default(), 10, 2_000, 0.1, 9)
        );
        let writes = ops.iter().filter(|o| o.is_write()).count();
        assert!(
            (120..=280).contains(&writes),
            "write share {writes}/2000 far from the 10% ratio"
        );

        // Replaying the stream in order is always well-defined: inserts have
        // fresh unique ids, and every delete names a point that was either in
        // the data or inserted earlier in the stream.
        let mut known: Vec<Point> = data.clone();
        let mut seen_ids: Vec<u64> = Vec::new();
        for op in &ops {
            match op {
                ServeOp::Insert(p) => {
                    assert!(p.id >= data.len() as u64);
                    assert!(!seen_ids.contains(&p.id), "insert id {} reused", p.id);
                    seen_ids.push(p.id);
                    known.push(*p);
                }
                ServeOp::Delete(p) => {
                    assert!(
                        known.iter().any(|x| x.same_location(p) && x.id == p.id),
                        "delete targets an unknown point"
                    );
                }
                ServeOp::Read(_) => {}
            }
        }
    }

    #[test]
    fn read_write_workload_edge_ratios() {
        let data = generate(Distribution::Uniform, 100, 3);
        let all_reads = read_write_workload(&data, WindowSpec::default(), 5, 200, 0.0, 1);
        assert!(all_reads.iter().all(|o| !o.is_write()));
        let all_writes = read_write_workload(&data, WindowSpec::default(), 5, 200, 1.0, 1);
        assert!(all_writes.iter().all(|o| o.is_write()));
    }

    #[test]
    fn range_centers_and_join_points_are_deterministic_and_in_domain() {
        let data = generate(Distribution::skewed_default(), 400, 31);
        let centers = range_query_centers(&data, 60, 7);
        assert_eq!(centers.len(), 60);
        assert_eq!(centers, range_query_centers(&data, 60, 7));
        for c in &centers {
            assert!((0.0..=1.0).contains(&c.x) && (0.0..=1.0).contains(&c.y));
        }
        let inner = join_points(&data, 80, 9);
        assert_eq!(inner.len(), 80);
        assert_eq!(inner, join_points(&data, 80, 9));
        for p in &inner {
            assert!(p.id >= 1 << 40, "join ids must come from a disjoint space");
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
        // Different seeds give different workloads.
        assert_ne!(inner, join_points(&data, 80, 10));
    }

    #[test]
    fn insertion_points_have_fresh_ids() {
        let data = generate(Distribution::Uniform, 100, 19);
        let ins = insertion_points(&data, 50, 2);
        assert_eq!(ins.len(), 50);
        for p in &ins {
            assert!(p.id >= 100);
            assert!((0.0..=1.0).contains(&p.x));
            assert!((0.0..=1.0).contains(&p.y));
        }
    }
}
