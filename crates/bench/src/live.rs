//! Record-and-replay harness for the concurrent serving engine: run reader
//! threads against a live [`SpatialServer`] while a writer applies a
//! sequenced op stream, then verify **every** recorded answer against a
//! single-threaded `Vec`-scan oracle.
//!
//! The `serve-live` experiment and `tests/serve_concurrent.rs` share this
//! module so the verification semantics cannot drift between the CI gate
//! and the test suite.  The mechanism: every reader query records the
//! write-sequence number its snapshot observed ([`server::Snapshot::seq`]);
//! replaying the writes up to that sequence number into a [`ScanIndex`]
//! reproduces exactly the state the query saw, no matter how the threads
//! interleaved.

use common::brute_force::ScanIndex;
use common::{QueryContext, SpatialIndex};
use datagen::queries::MixedQuery;
use geom::Point;
use server::{SpatialServer, WriteOp};
use std::time::Duration;

/// One recorded reader answer, reduced to ids for the replay comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveAnswer {
    /// Point-query answer (the hit's id).
    Point(Option<u64>),
    /// Window result ids, sorted (visit order is unspecified).
    Window(Vec<u64>),
    /// kNN result ids, closest first (the order is part of the contract).
    Knn(Vec<u64>),
}

/// One reader observation: which query, which write-stream prefix the
/// snapshot observed, and what came back.
#[derive(Debug, Clone)]
pub struct LiveObs {
    /// Write sequence number the snapshot observed.
    pub seq: u64,
    /// The query that was run.
    pub query: MixedQuery,
    /// The recorded answer.
    pub answer: LiveAnswer,
}

/// What [`run_live_serving`] produced: the reader observations plus the
/// phase timings throughput numbers must be computed from.
#[derive(Debug)]
pub struct LiveRun {
    /// Every reader observation (one per read query).
    pub observations: Vec<LiveObs>,
    /// Wall-clock time until the **last reader** finished — read-throughput
    /// numbers divide by this, not by the full run (the deliberately paced
    /// writer may still be draining after the readers are done).
    pub read_wall: Duration,
    /// Time the writer spent inside `server.apply` — the pacing sleeps are
    /// **excluded**, so write-throughput numbers derived from this measure
    /// the server's write path, not the pacing schedule.
    pub write_busy: Duration,
}

/// Splits a [`read_write_workload`](datagen::queries::read_write_workload)
/// stream into the harness's two inputs: the reads (fanned out over reader
/// threads) and the writes (applied in stream order by the writer thread).
pub fn split_stream(ops: &[datagen::queries::ServeOp]) -> (Vec<MixedQuery>, Vec<WriteOp>) {
    use datagen::queries::ServeOp;
    let reads = ops
        .iter()
        .filter_map(|o| match o {
            ServeOp::Read(q) => Some(*q),
            _ => None,
        })
        .collect();
    let writes = ops
        .iter()
        .filter_map(|o| match o {
            ServeOp::Insert(p) => Some(WriteOp::Insert(*p)),
            ServeOp::Delete(p) => Some(WriteOp::Delete(*p)),
            ServeOp::Read(_) => None,
        })
        .collect();
    (reads, writes)
}

/// Runs `readers` reader threads (each taking a stride of `reads`) against
/// the live server while one writer thread applies `writes` in stream
/// order, pacing each write by `write_pace` so the writes span the read
/// phase.  The server's own background compaction runs throughout.
/// Returns every reader observation plus the writer's unpaced busy time.
pub fn run_live_serving(
    server: &SpatialServer,
    reads: &[MixedQuery],
    writes: &[WriteOp],
    readers: usize,
    write_pace: Duration,
) -> LiveRun {
    let mut observations: Vec<LiveObs> = Vec::with_capacity(reads.len());
    let mut write_busy = Duration::ZERO;
    let mut read_wall = Duration::ZERO;
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || {
            let mut busy = Duration::ZERO;
            for op in writes {
                let start = std::time::Instant::now();
                server.apply(*op);
                busy += start.elapsed();
                std::thread::sleep(write_pace);
            }
            busy
        });
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                scope.spawn(move || {
                    let mut cx = QueryContext::new();
                    let mut out = Vec::new();
                    for q in reads.iter().skip(r).step_by(readers) {
                        let snap = server.snapshot();
                        let seq = snap.seq();
                        let answer = match *q {
                            MixedQuery::Point(p) => {
                                LiveAnswer::Point(snap.point_query(&p, &mut cx).map(|f| f.id))
                            }
                            MixedQuery::Window(w) => {
                                let mut ids: Vec<u64> = Vec::new();
                                snap.window_query_visit(&w, &mut cx, &mut |p| ids.push(p.id));
                                ids.sort_unstable();
                                LiveAnswer::Window(ids)
                            }
                            MixedQuery::Knn(p, k) => {
                                let mut ids: Vec<u64> = Vec::with_capacity(k);
                                snap.knn_query_visit(&p, k, &mut cx, &mut |f| ids.push(f.id));
                                LiveAnswer::Knn(ids)
                            }
                        };
                        out.push(LiveObs {
                            seq,
                            query: *q,
                            answer,
                        });
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            observations.extend(h.join().expect("reader thread panicked"));
        }
        read_wall = started.elapsed();
        write_busy = writer.join().expect("writer thread panicked");
    });
    LiveRun {
        observations,
        read_wall,
        write_busy,
    }
}

/// Drives a mixed read stream through any [`SpatialIndex`] — a local
/// index, a server snapshot wrapper, or a `net::RemoteIndex` speaking the
/// wire protocol — recording one [`LiveObs`] per query.  `seq_after` is
/// called immediately after each query and must report the write sequence
/// that query's answer observed (for a remote index, the sequence its
/// response frame carried; for a snapshot, the snapshot's own sequence).
/// This is what lets the same oracle replay verify local and networked
/// serving without per-transport glue.
pub fn observe_reads(
    index: &dyn SpatialIndex,
    reads: &[MixedQuery],
    seq_after: &mut dyn FnMut() -> u64,
) -> Vec<LiveObs> {
    let mut cx = QueryContext::new();
    reads
        .iter()
        .map(|q| {
            let answer = match *q {
                MixedQuery::Point(p) => {
                    LiveAnswer::Point(index.point_query(&p, &mut cx).map(|f| f.id))
                }
                MixedQuery::Window(w) => {
                    let mut ids: Vec<u64> = index
                        .window_query(&w, &mut cx)
                        .iter()
                        .map(|p| p.id)
                        .collect();
                    ids.sort_unstable();
                    LiveAnswer::Window(ids)
                }
                MixedQuery::Knn(p, k) => LiveAnswer::Knn(
                    index
                        .knn_query(&p, k, &mut cx)
                        .iter()
                        .map(|f| f.id)
                        .collect(),
                ),
            };
            LiveObs {
                seq: seq_after(),
                query: *q,
                answer,
            }
        })
        .collect()
}

/// One recorded distance-range answer, reduced to sorted ids (visit order
/// is unspecified).
#[derive(Debug, Clone)]
pub struct RangeObs {
    /// Write sequence the answer observed.
    pub seq: u64,
    /// The query center.
    pub center: Point,
    /// Result ids, sorted.
    pub ids: Vec<u64>,
}

/// One recorded join-probe answer, reduced to sorted `(probe id, match
/// id)` pairs.
#[derive(Debug, Clone)]
pub struct JoinObs {
    /// Write sequence the answer observed.
    pub seq: u64,
    /// The probe set.
    pub probes: Vec<Point>,
    /// `(probe id, match id)` pairs, sorted.
    pub pairs: Vec<(u64, u64)>,
}

/// Drives the two distance-predicate classes the mixed stream does not
/// carry — distance-range at every center, a 4-probe distance join at
/// every fourth — through any [`SpatialIndex`], with the same `seq_after`
/// contract as [`observe_reads`].
pub fn observe_range_join(
    index: &dyn SpatialIndex,
    centers: &[Point],
    radius: f64,
    seq_after: &mut dyn FnMut() -> u64,
) -> (Vec<RangeObs>, Vec<JoinObs>) {
    let mut cx = QueryContext::new();
    let mut ranges = Vec::new();
    let mut joins = Vec::new();
    for (i, c) in centers.iter().enumerate() {
        let mut ids: Vec<u64> = index
            .range_query(c, radius, &mut cx)
            .iter()
            .map(|p| p.id)
            .collect();
        ids.sort_unstable();
        ranges.push(RangeObs {
            seq: seq_after(),
            center: *c,
            ids,
        });
        if i.is_multiple_of(4) {
            let probes: Vec<Point> = centers.iter().skip(i).take(4).copied().collect();
            let mut pairs: Vec<(u64, u64)> = Vec::new();
            index.distance_join_probes(&probes, radius, &mut cx, &mut |m, probe| {
                pairs.push((probe.id, m.id));
            });
            pairs.sort_unstable();
            joins.push(JoinObs {
                seq: seq_after(),
                probes,
                pairs,
            });
        }
    }
    (ranges, joins)
}

/// The distance-predicate side of the replay oracle: sorts range and join
/// observations by observed sequence, applies `writes` up to each prefix
/// into a [`ScanIndex`] over `data`, and compares boundary-inclusively
/// (dist² ≤ radius²).  Range and join answers are exact for every kind, so
/// nothing is ever skipped.
pub fn replay_range_join_against_oracle(
    data: &[Point],
    writes: &[WriteOp],
    ranges: &[RangeObs],
    joins: &[JoinObs],
    radius: f64,
) -> ReplayOutcome {
    enum Rj<'a> {
        Range(&'a RangeObs),
        Join(&'a JoinObs),
    }
    let r_sq = radius * radius;
    let mut rj: Vec<Rj> = ranges
        .iter()
        .map(Rj::Range)
        .chain(joins.iter().map(Rj::Join))
        .collect();
    rj.sort_by_key(|o| match o {
        Rj::Range(r) => r.seq,
        Rj::Join(j) => j.seq,
    });
    let mut oracle = ScanIndex::new(data.to_vec());
    let mut applied = 0usize;
    let mut outcome = ReplayOutcome::default();
    for obs in rj {
        let seq = match &obs {
            Rj::Range(r) => r.seq,
            Rj::Join(j) => j.seq,
        };
        while (applied as u64) < seq {
            match writes[applied] {
                WriteOp::Insert(p) => oracle.insert(p),
                WriteOp::Delete(p) => {
                    oracle.delete(&p);
                }
            }
            applied += 1;
        }
        let ok = match obs {
            Rj::Range(r) => {
                let mut truth: Vec<u64> = oracle
                    .points()
                    .iter()
                    .filter(|p| p.dist_sq(&r.center) <= r_sq)
                    .map(|p| p.id)
                    .collect();
                truth.sort_unstable();
                r.ids == truth
            }
            Rj::Join(j) => {
                let mut truth: Vec<(u64, u64)> = Vec::new();
                for probe in &j.probes {
                    for p in oracle.points() {
                        if p.dist_sq(probe) <= r_sq {
                            truth.push((probe.id, p.id));
                        }
                    }
                }
                truth.sort_unstable();
                j.pairs == truth
            }
        };
        if ok {
            outcome.checked += 1;
        } else {
            outcome.mismatches += 1;
            if outcome.divergences.len() < 5 {
                outcome.divergences.push(format!("range/join at seq {seq}"));
            }
        }
    }
    outcome
}

/// Waits (polling, bounded by `deadline`) until the server's background
/// compactor has completed at least `min` compactions, then returns the
/// current count.  Joining the reader/writer threads does **not** join the
/// compactor — its final rebuild may still be in flight — so assertions on
/// `compactions` must go through this instead of sampling once.
pub fn await_compactions(server: &SpatialServer, min: u64, deadline: Duration) -> u64 {
    let until = std::time::Instant::now() + deadline;
    loop {
        let done = server.stats().compactions;
        if done >= min || std::time::Instant::now() >= until {
            return done;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Outcome of a replay verification.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Answers that were verified and matched.
    pub checked: usize,
    /// Answers skipped because the kind answers that query type
    /// approximately (no exact oracle exists).
    pub skipped: usize,
    /// Human-readable descriptions of the divergences (capped at five).
    pub divergences: Vec<String>,
    /// Total mismatching answers.
    pub mismatches: usize,
}

impl ReplayOutcome {
    /// Whether every verified answer matched the oracle.
    pub fn verified(&self) -> bool {
        self.mismatches == 0
    }
}

/// Top-k ids by `(distance, id)` over a full scan — the same answer as
/// [`common::brute_force::knn_query`] (ids are unique, so the `(distance,
/// id)` order is total) but O(n log k), which keeps replaying thousands of
/// kNN queries against a 100k-point oracle cheap.
fn oracle_knn_ids(points: &[Point], q: &Point, k: usize) -> Vec<u64> {
    let mut best: Vec<(f64, u64)> = Vec::with_capacity(k + 1);
    if k == 0 {
        return Vec::new();
    }
    for p in points {
        let d = p.dist_sq(q);
        if best.len() >= k && (d, p.id) >= best[k - 1] {
            continue;
        }
        let pos = best
            .binary_search_by(|(bd, bid)| {
                bd.partial_cmp(&d)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(bid.cmp(&p.id))
            })
            .unwrap_or_else(|e| e);
        best.insert(pos, (d, p.id));
        best.truncate(k);
    }
    best.into_iter().map(|(_, id)| id).collect()
}

/// The single-threaded replay oracle: sorts the observations by observed
/// sequence number, applies `writes` up to each observation's prefix into a
/// [`ScanIndex`] over `data`, and compares every recorded answer against
/// the naive scan.  Point answers are verified unconditionally (they are
/// exact for every kind); window/kNN answers only when the corresponding
/// flag says the base kind answers them exactly.
pub fn replay_against_oracle(
    data: &[Point],
    writes: &[WriteOp],
    observations: &mut [LiveObs],
    verify_windows: bool,
    verify_knn: bool,
) -> ReplayOutcome {
    observations.sort_by_key(|o| o.seq);
    let mut oracle = ScanIndex::new(data.to_vec());
    let mut cx = QueryContext::new();
    let mut applied = 0usize;
    let mut outcome = ReplayOutcome::default();
    for obs in observations.iter() {
        while (applied as u64) < obs.seq {
            match writes[applied] {
                WriteOp::Insert(p) => oracle.insert(p),
                WriteOp::Delete(p) => {
                    oracle.delete(&p);
                }
            }
            applied += 1;
        }
        let ok = match (&obs.query, &obs.answer) {
            (MixedQuery::Point(p), LiveAnswer::Point(got)) => {
                Some(*got == oracle.point_query(p, &mut cx).map(|x| x.id))
            }
            (MixedQuery::Window(w), LiveAnswer::Window(got)) => verify_windows.then(|| {
                let mut truth: Vec<u64> = oracle
                    .points()
                    .iter()
                    .filter(|p| w.contains(p))
                    .map(|p| p.id)
                    .collect();
                truth.sort_unstable();
                *got == truth
            }),
            (MixedQuery::Knn(p, k), LiveAnswer::Knn(got)) => {
                verify_knn.then(|| *got == oracle_knn_ids(oracle.points(), p, *k))
            }
            // A reader recorded the wrong answer shape for the query.
            _ => Some(false),
        };
        match ok {
            Some(true) => outcome.checked += 1,
            Some(false) => {
                outcome.mismatches += 1;
                if outcome.divergences.len() < 5 {
                    outcome.divergences.push(format!(
                        "seq {}: {:?} -> {:?}",
                        obs.seq, obs.query, obs.answer
                    ));
                }
            }
            None => outcome.skipped += 1,
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::queries::{self, WindowSpec};
    use datagen::{generate, Distribution};
    use registry::{serve_index, IndexConfig, IndexKind, ServerConfig};

    #[test]
    fn split_stream_partitions_the_workload() {
        let data = generate(Distribution::Uniform, 200, 39);
        let ops = queries::read_write_workload(&data, WindowSpec::default(), 5, 300, 0.3, 11);
        let (reads, writes) = split_stream(&ops);
        assert_eq!(
            reads.len() + writes.len(),
            ops.len(),
            "every op lands in exactly one stream"
        );
        assert_eq!(writes.len(), ops.iter().filter(|o| o.is_write()).count());
    }

    #[test]
    fn harness_runs_and_replay_verifies_an_exact_kind() {
        let data = generate(Distribution::skewed_default(), 1_500, 41);
        let ops = queries::read_write_workload(&data, WindowSpec::default(), 5, 400, 0.2, 3);
        let (reads, writes) = split_stream(&ops);
        let server = serve_index(
            IndexKind::Grid,
            &data,
            &IndexConfig::fast(),
            ServerConfig::default().with_compact_threshold((writes.len() / 2).max(4)),
        );
        let run = run_live_serving(&server, &reads, &writes, 3, Duration::from_micros(100));
        let mut obs = run.observations;
        assert_eq!(obs.len(), reads.len());
        assert!(run.write_busy > Duration::ZERO);
        assert!(run.read_wall > Duration::ZERO);
        let compactions = await_compactions(&server, 1, Duration::from_secs(10));
        assert!(compactions >= 1, "compactor never caught up");
        let outcome = replay_against_oracle(&data, &writes, &mut obs, true, true);
        assert!(outcome.verified(), "divergences: {:?}", outcome.divergences);
        assert_eq!(outcome.checked, reads.len());
        assert_eq!(outcome.skipped, 0);
    }

    #[test]
    fn replay_catches_a_corrupted_answer() {
        let data = generate(Distribution::Uniform, 300, 43);
        let q = data[7];
        let mut obs = vec![LiveObs {
            seq: 0,
            query: MixedQuery::Point(q),
            answer: LiveAnswer::Point(Some(q.id + 1)), // wrong id
        }];
        let outcome = replay_against_oracle(&data, &[], &mut obs, true, true);
        assert_eq!(outcome.mismatches, 1);
        assert!(!outcome.verified());
        assert_eq!(outcome.divergences.len(), 1);
    }
}
