//! Experiment-harness library: building the competing indices uniformly and
//! measuring query cost, block accesses, and recall the way §6 of the paper
//! reports them.
//!
//! All indices are constructed through the dynamic registry
//! ([`registry::build_index`]) and measured through the uniform
//! [`common::SpatialIndex`] query API with per-batch [`common::QueryContext`]
//! statistics — there is no per-index special casing anywhere in the
//! harness.
//!
//! The binary `experiments` (in `src/bin/experiments.rs`) uses these helpers
//! to regenerate every table and figure; the benches under `benches/` use
//! them to build fixtures.
//!
//! # Sharded serving benchmarks
//!
//! `benches/sharded_window.rs` compares the sharded engine at 1 / 4 / 8
//! shards on a fixed 50k-point skewed data set under the hotspot window
//! workload.  The expected shape:
//!
//! * **1 shard** — the unsharded index behind a thin routing facade; the
//!   baseline.  Any overhead over the plain index is the cost of the facade
//!   (one MBR intersection test per query) and should be negligible.
//! * **4 / 8 shards** — hotspot queries intersect only the shards covering
//!   the hot region, so `shards_pruned` per query grows with the shard
//!   count while the visited shards shrink; per-query latency drops
//!   accordingly.
//! * **beyond** — once the hot region's shards are already skipped or
//!   split, additional shards only add fan-out bookkeeping; the curve
//!   flattens (and eventually rises).  The `sharded` experiment of the
//!   `experiments` binary reports the same effect with shard counters and
//!   the multi-threaded batch speedup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod live;
pub mod netload;
pub mod summary;

use common::{brute_force, metrics, QueryContext, QueryStats, SpatialIndex};
use geom::{Point, Rect};

pub use registry::{build_index, BaseKind, IndexConfig, IndexKind};

/// A built index together with its construction-time measurement.
pub struct BuiltIndex {
    /// Which family this is.
    pub kind: IndexKind,
    /// The index itself, behind the uniform trait.
    pub index: Box<dyn SpatialIndex>,
    /// Construction wall-clock time in seconds.
    pub build_seconds: f64,
}

/// Builds one index family over the given points, measuring build time.
pub fn build_timed(kind: IndexKind, points: &[Point], cfg: &IndexConfig) -> BuiltIndex {
    let start = std::time::Instant::now();
    let index = build_index(kind, points, cfg);
    BuiltIndex {
        kind,
        index,
        build_seconds: start.elapsed().as_secs_f64(),
    }
}

/// One measured row of an experiment (one index on one workload).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Index family name.
    pub index: String,
    /// Average query (or update) time in microseconds.
    pub avg_time_us: f64,
    /// Average block + node accesses per operation (the paper's
    /// "# block accesses" axis; node visits of the tree baselines are
    /// charged to the same axis, as in §6.1).
    pub avg_block_accesses: f64,
    /// Average candidate points examined per operation.
    pub avg_candidates: f64,
    /// Average recall against brute force (1.0 for exact indices).
    pub recall: f64,
}

fn per_query(v: u64, n: usize) -> f64 {
    v as f64 / n.max(1) as f64
}

/// Measures point queries (as one batch): average latency, accesses, hit
/// rate.
pub fn measure_point_queries(built: &BuiltIndex, queries: &[Point]) -> Measurement {
    let mut cx = QueryContext::new();
    let start = std::time::Instant::now();
    let answers = built.index.point_queries(queries, &mut cx);
    let elapsed = start.elapsed().as_secs_f64();
    let hits = answers.iter().filter(|a| a.is_some()).count();
    let stats = cx.take_stats();
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / queries.len().max(1) as f64,
        avg_block_accesses: per_query(stats.total_accesses(), queries.len()),
        avg_candidates: per_query(stats.candidates_scanned, queries.len()),
        recall: hits as f64 / queries.len().max(1) as f64,
    }
}

/// Measures window queries (as one batch): average latency, accesses and
/// recall against the brute-force ground truth.
pub fn measure_window_queries(built: &BuiltIndex, data: &[Point], windows: &[Rect]) -> Measurement {
    let mut cx = QueryContext::new();
    let start = std::time::Instant::now();
    let results = built.index.window_queries(windows, &mut cx);
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cx.take_stats();
    let mut recalls = Vec::with_capacity(windows.len());
    for (w, got) in windows.iter().zip(&results) {
        let truth = brute_force::window_query(data, w);
        recalls.push(metrics::recall(got, &truth));
    }
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / windows.len().max(1) as f64,
        avg_block_accesses: per_query(stats.total_accesses(), windows.len()),
        avg_candidates: per_query(stats.candidates_scanned, windows.len()),
        recall: metrics::mean(&recalls),
    }
}

/// Measures kNN queries (as one batch): average latency, accesses and
/// recall.
pub fn measure_knn_queries(
    built: &BuiltIndex,
    data: &[Point],
    queries: &[Point],
    k: usize,
) -> Measurement {
    let mut cx = QueryContext::new();
    let start = std::time::Instant::now();
    let results = built.index.knn_queries(queries, k, &mut cx);
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cx.take_stats();
    let mut recalls = Vec::with_capacity(queries.len());
    for (q, got) in queries.iter().zip(&results) {
        let truth = brute_force::knn_query(data, q, k);
        recalls.push(metrics::knn_recall(got, &truth, q, k));
    }
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / queries.len().max(1) as f64,
        avg_block_accesses: per_query(stats.total_accesses(), queries.len()),
        avg_candidates: per_query(stats.candidates_scanned, queries.len()),
        recall: metrics::mean(&recalls),
    }
}

/// Measures distance-range queries (as one batch): average latency,
/// accesses and recall against the brute-force oracle (every family answers
/// distance-range queries exactly, so recall below 1 is a bug the `range`
/// experiment fails on).
pub fn measure_range_queries(
    built: &BuiltIndex,
    data: &[Point],
    centers: &[Point],
    radius: f64,
) -> Measurement {
    let mut cx = QueryContext::new();
    let start = std::time::Instant::now();
    let results = built.index.range_queries(centers, radius, &mut cx);
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cx.take_stats();
    let mut recalls = Vec::with_capacity(centers.len());
    for (c, got) in centers.iter().zip(&results) {
        let truth = brute_force::range_query(data, c, radius);
        recalls.push(metrics::recall(got, &truth));
    }
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / centers.len().max(1) as f64,
        avg_block_accesses: per_query(stats.total_accesses(), centers.len()),
        avg_candidates: per_query(stats.candidates_scanned, centers.len()),
        recall: metrics::mean(&recalls),
    }
}

/// Result of measuring one distance join.
pub struct JoinMeasurement {
    /// The usual per-operation measurement (the join is one operation, so
    /// `avg_time_us` is the total join time in microseconds and `recall`
    /// compares the pair set against the nested-loop oracle).
    pub measurement: Measurement,
    /// Number of qualifying pairs the join produced.
    pub pairs: usize,
}

/// Measures one index-nested distance join of `built` against `other`,
/// verifying the pair set against the brute-force nested-loop oracle over
/// the two raw point sets (`recall` is the fraction of oracle pairs found;
/// any false positive also drags it below 1 through the pair count check in
/// the `join` experiment).
pub fn measure_distance_join(
    built: &BuiltIndex,
    data: &[Point],
    other: &dyn SpatialIndex,
    other_data: &[Point],
    radius: f64,
) -> JoinMeasurement {
    let mut cx = QueryContext::new();
    let start = std::time::Instant::now();
    let got = built.index.distance_join(other, radius, &mut cx);
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cx.take_stats();
    let truth = brute_force::distance_join(data, other_data, radius);
    let mut got_keys: Vec<(u64, u64)> = got.iter().map(|(p, q)| (p.id, q.id)).collect();
    let mut truth_keys: Vec<(u64, u64)> = truth.iter().map(|(p, q)| (p.id, q.id)).collect();
    got_keys.sort_unstable();
    truth_keys.sort_unstable();
    let recall = if got_keys == truth_keys {
        1.0
    } else {
        let found = truth_keys
            .iter()
            .filter(|k| got_keys.binary_search(k).is_ok())
            .count();
        // Penalise false positives as well as misses, so any divergence
        // from the oracle reads as recall < 1.
        found as f64 / truth_keys.len().max(got_keys.len()).max(1) as f64
    };
    JoinMeasurement {
        measurement: Measurement {
            index: built.kind.name().to_string(),
            avg_time_us: elapsed * 1e6,
            avg_block_accesses: stats.total_accesses() as f64,
            avg_candidates: stats.candidates_scanned as f64,
            recall,
        },
        pairs: got.len(),
    }
}

/// Measures the average insertion time over a batch of new points.
pub fn measure_insertions(built: &mut BuiltIndex, inserts: &[Point]) -> Measurement {
    let start = std::time::Instant::now();
    for p in inserts {
        built.index.insert(*p);
    }
    let elapsed = start.elapsed().as_secs_f64();
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / inserts.len().max(1) as f64,
        avg_block_accesses: 0.0,
        avg_candidates: 0.0,
        recall: 1.0,
    }
}

// ---------------------------------------------------------------------
// Persistence replay workload (shared by the snapshot/serve CLI and the
// snapshot round-trip tests, so both enforce the same acceptance criterion)
// ---------------------------------------------------------------------

/// Sizing of the persistence replay workload.
#[derive(Debug, Clone, Copy)]
pub struct ReplaySpec {
    /// Number of point queries.
    pub point_queries: usize,
    /// Number of window queries.
    pub window_queries: usize,
    /// Number of kNN queries.
    pub knn_queries: usize,
    /// `k` of the kNN queries.
    pub k: usize,
}

impl Default for ReplaySpec {
    /// The CLI gate's sizing; tests shrink it for speed.
    fn default() -> Self {
        Self {
            point_queries: 1000,
            window_queries: 100,
            knn_queries: 100,
            k: 25,
        }
    }
}

/// Answers of all three query types plus the merged per-query statistics —
/// what a snapshot must reproduce *byte-identically* after a reload.
pub struct WorkloadAnswers {
    /// Per-query point-query answers.
    pub points: Vec<Option<Point>>,
    /// Per-query window result sets.
    pub windows: Vec<Vec<Point>>,
    /// Per-query kNN result lists.
    pub knn: Vec<Vec<Point>>,
    /// Statistics merged across the whole workload.
    pub stats: QueryStats,
}

impl WorkloadAnswers {
    /// Byte-level equality of answers and cost counters — the persistence
    /// acceptance criterion.
    pub fn matches(&self, other: &WorkloadAnswers) -> bool {
        self.points == other.points
            && self.windows == other.windows
            && self.knn == other.knn
            && self.stats == other.stats
    }
}

/// Runs the standard persistence workload (point, window, and kNN batches,
/// deterministic query generators) through one context.
pub fn replay_workload(
    index: &dyn SpatialIndex,
    data: &[Point],
    spec: &ReplaySpec,
) -> WorkloadAnswers {
    use datagen::queries::{self, WindowSpec};
    let point_qs = queries::point_queries(data, spec.point_queries, 13);
    let window_qs = queries::window_queries(data, WindowSpec::default(), spec.window_queries, 17);
    let knn_qs = queries::knn_queries(data, spec.knn_queries, 19);
    let mut cx = QueryContext::new();
    let points = index.point_queries(&point_qs, &mut cx);
    let windows = index.window_queries(&window_qs, &mut cx);
    let knn = index.knn_queries(&knn_qs, spec.k, &mut cx);
    WorkloadAnswers {
        points,
        windows,
        knn,
        stats: cx.take_stats(),
    }
}

// ---------------------------------------------------------------------
// Machine-readable experiment reports
// ---------------------------------------------------------------------

/// One experiment table: the unit both the markdown output and the JSON
/// summary are built from.
#[derive(Debug, Clone)]
pub struct ReportTable {
    /// Table caption (the figure/table name).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row cells, one inner vector per row.
    pub rows: Vec<Vec<String>>,
}

/// Version of the JSON document layout [`Report::to_json`] emits, recorded
/// as the top-level `schema_version` field so downstream tooling can detect
/// layout changes in archived `bench-summary` artifacts.  History:
///
/// * **1** — `meta` object + `tables` array (unversioned in the artifact).
/// * **2** — adds the explicit `schema_version` field; runs carry
///   self-describing metadata (`experiment`, `kind`, `shards`, `threads`,
///   `seed`, …) in `meta`.
/// * **3** — the networked-serving experiments (`net-serve`/`net-load`)
///   emit per-query-class tail-latency tables whose `p50 time (us)` /
///   `p99 time (us)` columns are load-bearing perf-gate metrics (the
///   `p999 (us)` column is deliberately named without "time" so the gate
///   does not fail on last-permille noise); `meta` gains the load-generator
///   keys (`mode`, `connections`, `rate`).  Layout of `meta`/`tables` is
///   unchanged, so version-2 consumers parse version-3 documents.
pub const BENCH_SUMMARY_SCHEMA_VERSION: u32 = 3;

/// Collects every table an experiments run produces, printing each as
/// markdown as it lands and optionally serialising the whole run as JSON —
/// the machine-readable artifact CI archives as the repo's perf trajectory.
#[derive(Debug, Default)]
pub struct Report {
    /// Run-level metadata (`scale`, `epochs`, the experiment id, …).
    pub meta: Vec<(String, String)>,
    /// The tables, in emission order.
    pub tables: Vec<ReportTable>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one piece of run-level metadata.
    pub fn meta(&mut self, key: &str, value: impl std::fmt::Display) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Prints a table as markdown and records it for the JSON summary.
    pub fn table(&mut self, title: &str, header: &[&str], rows: Vec<Vec<String>>) {
        println!("{}", markdown_table(title, header, &rows));
        self.tables.push(ReportTable {
            title: title.to_string(),
            header: header.iter().map(|h| h.to_string()).collect(),
            rows,
        });
    }

    /// Serialises the report as a JSON document (hand-rolled writer — the
    /// build environment is offline, so no serde).
    pub fn to_json(&self) -> String {
        let mut out =
            format!("{{\n  \"schema_version\": {BENCH_SUMMARY_SCHEMA_VERSION},\n  \"meta\": {{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), json_scalar(v)));
        }
        out.push_str("\n  },\n  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"title\": {},",
                json_string(&t.title)
            ));
            out.push_str("\n      \"header\": [");
            out.push_str(
                &t.header
                    .iter()
                    .map(|h| json_string(h))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push_str("],\n      \"rows\": [");
            for (j, row) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        [");
                out.push_str(
                    &row.iter()
                        .map(|c| json_scalar(c))
                        .collect::<Vec<_>>()
                        .join(", "),
                );
                out.push(']');
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the JSON summary to a file, creating parent directories.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emits a cell as a JSON number when it parses as one (so downstream
/// tooling can plot the trajectory without re-parsing strings), falling back
/// to a JSON string.
fn json_scalar(s: &str) -> String {
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() && !s.is_empty() => s.to_string(),
        _ => json_string(s),
    }
}

/// Formats a list of measurements as a GitHub-flavoured markdown table.
pub fn markdown_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n### {title}\n\n"));
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Convenience: formats a float with three significant decimals.
pub fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, queries, Distribution};

    fn tiny_cfg() -> IndexConfig {
        IndexConfig {
            block_capacity: 20,
            partition_threshold: 500,
            epochs: 15,
            seed: 1,
            ..IndexConfig::default()
        }
    }

    #[test]
    fn all_index_kinds_build_and_answer_point_queries() {
        let data = generate(Distribution::Uniform, 800, 3);
        let qs = queries::point_queries(&data, 50, 5);
        for kind in IndexKind::without_rsmia() {
            let built = build_timed(kind, &data, &tiny_cfg());
            let m = measure_point_queries(&built, &qs);
            assert_eq!(m.recall, 1.0, "{} missed indexed points", kind.name());
            assert!(m.avg_time_us >= 0.0);
            assert!(
                m.avg_block_accesses > 0.0,
                "{} charged nothing",
                kind.name()
            );
            assert!(built.build_seconds >= 0.0);
        }
    }

    #[test]
    fn window_measurement_reports_recall_one_for_exact_indices() {
        let data = generate(Distribution::Normal, 1000, 7);
        let ws = queries::window_queries(&data, queries::WindowSpec::default(), 20, 9);
        for kind in IndexKind::all()
            .into_iter()
            .filter(IndexKind::exact_windows)
        {
            let built = build_timed(kind, &data, &tiny_cfg());
            let m = measure_window_queries(&built, &data, &ws);
            assert!(
                m.recall > 0.999,
                "{} should be exact, recall {}",
                kind.name(),
                m.recall
            );
        }
    }

    #[test]
    fn learned_indices_report_recall_between_zero_and_one() {
        let data = generate(Distribution::skewed_default(), 1500, 11);
        let ws = queries::window_queries(&data, queries::WindowSpec::default(), 20, 13);
        for kind in [IndexKind::Rsmi, IndexKind::Zm] {
            let built = build_timed(kind, &data, &tiny_cfg());
            let m = measure_window_queries(&built, &data, &ws);
            assert!((0.0..=1.0).contains(&m.recall));
        }
    }

    #[test]
    fn knn_measurement_works_for_rsmi_and_hrr() {
        let data = generate(Distribution::Uniform, 1000, 17);
        let qs = queries::knn_queries(&data, 20, 19);
        for kind in [IndexKind::Rsmi, IndexKind::Rsmia, IndexKind::Hrr] {
            let built = build_timed(kind, &data, &tiny_cfg());
            let m = measure_knn_queries(&built, &data, &qs, 5);
            assert!(m.recall > 0.5, "{} recall {}", kind.name(), m.recall);
        }
    }

    #[test]
    fn range_measurement_reports_recall_one_for_every_family() {
        let data = generate(Distribution::skewed_default(), 900, 37);
        let centers = queries::range_query_centers(&data, 25, 39);
        for kind in IndexKind::all() {
            let built = build_timed(kind, &data, &tiny_cfg());
            let m = measure_range_queries(&built, &data, &centers, queries::DEFAULT_RANGE_RADIUS);
            assert_eq!(
                m.recall,
                1.0,
                "{} distance-range answers must be exact",
                kind.name()
            );
            assert!(m.avg_block_accesses > 0.0, "{}", kind.name());
        }
    }

    #[test]
    fn join_measurement_verifies_the_pair_set() {
        let data = generate(Distribution::Uniform, 700, 41);
        let inner = queries::join_points(&data, 150, 43);
        let built = build_timed(IndexKind::Hrr, &data, &tiny_cfg());
        let other = build_index(IndexKind::Kdb, &inner, &tiny_cfg());
        let jm = measure_distance_join(&built, &data, other.as_ref(), &inner, 0.02);
        assert_eq!(jm.measurement.recall, 1.0);
        assert_eq!(
            jm.pairs,
            common::brute_force::distance_join(&data, &inner, 0.02).len()
        );
        assert!(jm.measurement.avg_block_accesses > 0.0);
    }

    #[test]
    fn insertion_measurement_counts_time_per_insert() {
        let data = generate(Distribution::Uniform, 500, 23);
        let ins = queries::insertion_points(&data, 100, 29);
        let mut built = build_timed(IndexKind::Grid, &data, &tiny_cfg());
        let m = measure_insertions(&mut built, &ins);
        assert!(m.avg_time_us >= 0.0);
        assert_eq!(built.index.len(), 600);
    }

    #[test]
    fn batch_and_per_call_point_queries_agree() {
        let data = generate(Distribution::Uniform, 900, 31);
        let qs = queries::point_queries(&data, 64, 33);
        let built = build_timed(IndexKind::Hrr, &data, &tiny_cfg());
        let mut batch_cx = QueryContext::new();
        let batch = built.index.point_queries(&qs, &mut batch_cx);
        let mut single_cx = QueryContext::new();
        let single: Vec<_> = qs
            .iter()
            .map(|q| built.index.point_query(q, &mut single_cx))
            .collect();
        assert_eq!(batch, single);
        assert_eq!(batch_cx.stats, single_cx.stats);
    }

    #[test]
    fn report_collects_tables_and_serialises_json() {
        let mut report = Report::new();
        report.meta("scale", 0.5);
        report.meta("experiment", "table3");
        report.table(
            "Demo",
            &["index", "time (us)"],
            vec![vec!["RSMI".into(), "1.25".into()]],
        );
        assert_eq!(report.tables.len(), 1);
        let json = report.to_json();
        // The document is self-describing: schema version first.
        assert!(
            json.starts_with(&format!(
                "{{\n  \"schema_version\": {BENCH_SUMMARY_SCHEMA_VERSION},"
            )),
            "{json}"
        );
        // Numbers stay numbers, strings get quoted and escaped.
        assert!(json.contains("\"scale\": 0.5"), "{json}");
        assert!(json.contains("\"experiment\": \"table3\""), "{json}");
        assert!(json.contains("\"RSMI\", 1.25"), "{json}");
        assert!(json.contains("\"title\": \"Demo\""), "{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("0.01%"), "\"0.01%\"");
    }

    #[test]
    fn report_json_writes_to_nested_paths() {
        let dir = std::env::temp_dir().join(format!("bench-json-{}", std::process::id()));
        let path = dir.join("nested/summary.json");
        let mut report = Report::new();
        report.meta("experiment", "smoke");
        report.write_json(&path).expect("write json");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn markdown_table_formats_rows() {
        let t = markdown_table(
            "Demo",
            &["index", "time"],
            &[vec!["RSMI".into(), "1.0".into()]],
        );
        assert!(t.contains("### Demo"));
        assert!(t.contains("| RSMI | 1.0 |"));
        assert_eq!(fmt(123.456), "123");
        assert_eq!(fmt(1.234), "1.23");
        assert_eq!(fmt(0.1234), "0.1234");
    }
}
