//! Experiment-harness library: building the competing indices uniformly and
//! measuring query cost, block accesses, and recall the way §6 of the paper
//! reports them.
//!
//! The binary `experiments` (in `src/bin/experiments.rs`) uses these helpers
//! to regenerate every table and figure; the Criterion benches use them to
//! build fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baselines::{GridFile, HilbertRTree, KdbTree, RStarTree, ZOrderModel};
use baselines::zm::ZmConfig;
use common::{brute_force, metrics, SpatialIndex};
use geom::{Point, Rect};
use rsmi::{Rsmi, RsmiConfig};
use serde::Serialize;

/// The index families compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Grid File.
    Grid,
    /// Rank-space Hilbert packed R-tree.
    Hrr,
    /// K-D-B-tree.
    Kdb,
    /// R*-tree (dynamic insertion).
    RStar,
    /// RSMI (approximate window/kNN answers).
    Rsmi,
    /// RSMI with MBR-based exact query answering (only differs at query
    /// time; shares the RSMI structure).
    Rsmia,
    /// Z-order learned model.
    Zm,
}

impl IndexKind {
    /// All families, in the order the paper's legends list them.
    pub fn all() -> Vec<IndexKind> {
        vec![
            IndexKind::Grid,
            IndexKind::Hrr,
            IndexKind::Kdb,
            IndexKind::RStar,
            IndexKind::Rsmi,
            IndexKind::Rsmia,
            IndexKind::Zm,
        ]
    }

    /// The families without the RSMIa duplicate (used for point queries and
    /// update measurements where RSMIa is identical to RSMI).
    pub fn without_rsmia() -> Vec<IndexKind> {
        Self::all().into_iter().filter(|k| *k != IndexKind::Rsmia).collect()
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Grid => "Grid",
            IndexKind::Hrr => "HRR",
            IndexKind::Kdb => "KDB",
            IndexKind::RStar => "RR*",
            IndexKind::Rsmi => "RSMI",
            IndexKind::Rsmia => "RSMIa",
            IndexKind::Zm => "ZM",
        }
    }
}

/// A built index together with its construction-time measurement.
pub struct BuiltIndex {
    /// Which family this is.
    pub kind: IndexKind,
    /// The index itself.
    pub index: AnyIndex,
    /// Construction wall-clock time in seconds.
    pub build_seconds: f64,
}

/// Concrete index storage (avoids `dyn` so the exact-variant methods of RSMI
/// stay reachable).
pub enum AnyIndex {
    /// Grid File.
    Grid(GridFile),
    /// Hilbert R-tree.
    Hrr(HilbertRTree),
    /// K-D-B-tree.
    Kdb(KdbTree),
    /// R*-tree.
    RStar(RStarTree),
    /// RSMI (used for both RSMI and RSMIa rows).
    Rsmi(Rsmi),
    /// Z-order model.
    Zm(ZOrderModel),
}

impl AnyIndex {
    /// Borrow as the common trait object.
    pub fn as_index(&self) -> &dyn SpatialIndex {
        match self {
            AnyIndex::Grid(i) => i,
            AnyIndex::Hrr(i) => i,
            AnyIndex::Kdb(i) => i,
            AnyIndex::RStar(i) => i,
            AnyIndex::Rsmi(i) => i,
            AnyIndex::Zm(i) => i,
        }
    }

    /// Borrow mutably as the common trait object.
    pub fn as_index_mut(&mut self) -> &mut dyn SpatialIndex {
        match self {
            AnyIndex::Grid(i) => i,
            AnyIndex::Hrr(i) => i,
            AnyIndex::Kdb(i) => i,
            AnyIndex::RStar(i) => i,
            AnyIndex::Rsmi(i) => i,
            AnyIndex::Zm(i) => i,
        }
    }
}

/// Tuning shared by all experiment runs.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Block capacity `B` for every index.
    pub block_capacity: usize,
    /// RSMI partition threshold `N`.
    pub partition_threshold: usize,
    /// Training epochs for the learned indices.
    pub epochs: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            block_capacity: 100,
            partition_threshold: 10_000,
            epochs: 30,
            seed: 42,
        }
    }
}

impl HarnessConfig {
    /// The RSMI configuration corresponding to this harness configuration.
    pub fn rsmi_config(&self) -> RsmiConfig {
        RsmiConfig::default()
            .with_block_capacity(self.block_capacity)
            .with_partition_threshold(self.partition_threshold)
            .with_epochs(self.epochs)
    }

    /// The ZM configuration corresponding to this harness configuration.
    pub fn zm_config(&self) -> ZmConfig {
        ZmConfig {
            block_capacity: self.block_capacity,
            epochs: self.epochs,
            ..ZmConfig::default()
        }
    }
}

/// Builds one index family over the given points, measuring build time.
pub fn build_index(kind: IndexKind, points: &[Point], cfg: &HarnessConfig) -> BuiltIndex {
    let pts = points.to_vec();
    let start = std::time::Instant::now();
    let index = match kind {
        IndexKind::Grid => AnyIndex::Grid(GridFile::build(pts, cfg.block_capacity)),
        IndexKind::Hrr => AnyIndex::Hrr(HilbertRTree::build(pts, cfg.block_capacity)),
        IndexKind::Kdb => AnyIndex::Kdb(KdbTree::build(pts, cfg.block_capacity)),
        IndexKind::RStar => AnyIndex::RStar(RStarTree::build(pts, cfg.block_capacity)),
        IndexKind::Rsmi | IndexKind::Rsmia => AnyIndex::Rsmi(Rsmi::build(pts, cfg.rsmi_config())),
        IndexKind::Zm => AnyIndex::Zm(ZOrderModel::build(pts, cfg.zm_config())),
    };
    BuiltIndex {
        kind,
        index,
        build_seconds: start.elapsed().as_secs_f64(),
    }
}

/// One measured row of an experiment (one index on one workload).
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Index family name.
    pub index: String,
    /// Average query (or update) time in microseconds.
    pub avg_time_us: f64,
    /// Average block accesses per operation.
    pub avg_block_accesses: f64,
    /// Average recall against brute force (1.0 for exact indices).
    pub recall: f64,
}

/// Measures point queries: average latency and block accesses.
pub fn measure_point_queries(built: &BuiltIndex, queries: &[Point]) -> Measurement {
    let index = built.index.as_index();
    index.reset_stats();
    let start = std::time::Instant::now();
    let mut hits = 0usize;
    for q in queries {
        if index.point_query(q).is_some() {
            hits += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / queries.len().max(1) as f64,
        avg_block_accesses: index.block_accesses() as f64 / queries.len().max(1) as f64,
        recall: hits as f64 / queries.len().max(1) as f64,
    }
}

/// Measures window queries: average latency, block accesses and recall
/// against the brute-force ground truth.
pub fn measure_window_queries(
    built: &BuiltIndex,
    data: &[Point],
    windows: &[Rect],
) -> Measurement {
    let index = built.index.as_index();
    index.reset_stats();
    let mut recalls = Vec::with_capacity(windows.len());
    let start = std::time::Instant::now();
    let mut results: Vec<Vec<Point>> = Vec::with_capacity(windows.len());
    for w in windows {
        let got = match (&built.index, built.kind) {
            (AnyIndex::Rsmi(r), IndexKind::Rsmia) => r.window_query_exact(w),
            _ => index.window_query(w),
        };
        results.push(got);
    }
    let elapsed = start.elapsed().as_secs_f64();
    for (w, got) in windows.iter().zip(&results) {
        let truth = brute_force::window_query(data, w);
        recalls.push(metrics::recall(got, &truth));
    }
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / windows.len().max(1) as f64,
        avg_block_accesses: index.block_accesses() as f64 / windows.len().max(1) as f64,
        recall: metrics::mean(&recalls),
    }
}

/// Measures kNN queries: average latency, block accesses and recall.
pub fn measure_knn_queries(
    built: &BuiltIndex,
    data: &[Point],
    queries: &[Point],
    k: usize,
) -> Measurement {
    let index = built.index.as_index();
    index.reset_stats();
    let start = std::time::Instant::now();
    let mut results: Vec<Vec<Point>> = Vec::with_capacity(queries.len());
    for q in queries {
        let got = match (&built.index, built.kind) {
            (AnyIndex::Rsmi(r), IndexKind::Rsmia) => r.knn_query_exact(q, k),
            _ => index.knn_query(q, k),
        };
        results.push(got);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let mut recalls = Vec::with_capacity(queries.len());
    for (q, got) in queries.iter().zip(&results) {
        let truth = brute_force::knn_query(data, q, k);
        recalls.push(metrics::knn_recall(got, &truth, q, k));
    }
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / queries.len().max(1) as f64,
        avg_block_accesses: index.block_accesses() as f64 / queries.len().max(1) as f64,
        recall: metrics::mean(&recalls),
    }
}

/// Measures the average insertion time over a batch of new points.
pub fn measure_insertions(built: &mut BuiltIndex, inserts: &[Point]) -> Measurement {
    let start = std::time::Instant::now();
    for p in inserts {
        built.index.as_index_mut().insert(*p);
    }
    let elapsed = start.elapsed().as_secs_f64();
    Measurement {
        index: built.kind.name().to_string(),
        avg_time_us: elapsed * 1e6 / inserts.len().max(1) as f64,
        avg_block_accesses: 0.0,
        recall: 1.0,
    }
}

/// Formats a list of measurements as a GitHub-flavoured markdown table.
pub fn markdown_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n### {title}\n\n"));
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Convenience: formats a float with three significant decimals.
pub fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, queries, Distribution};

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            block_capacity: 20,
            partition_threshold: 500,
            epochs: 15,
            seed: 1,
        }
    }

    #[test]
    fn all_index_kinds_build_and_answer_point_queries() {
        let data = generate(Distribution::Uniform, 800, 3);
        let qs = queries::point_queries(&data, 50, 5);
        for kind in IndexKind::without_rsmia() {
            let built = build_index(kind, &data, &tiny_cfg());
            let m = measure_point_queries(&built, &qs);
            assert_eq!(m.recall, 1.0, "{} missed indexed points", kind.name());
            assert!(m.avg_time_us >= 0.0);
            assert!(built.build_seconds >= 0.0);
        }
    }

    #[test]
    fn window_measurement_reports_recall_one_for_exact_indices() {
        let data = generate(Distribution::Normal, 1000, 7);
        let ws = queries::window_queries(&data, queries::WindowSpec::default(), 20, 9);
        for kind in [IndexKind::Grid, IndexKind::Hrr, IndexKind::Kdb, IndexKind::RStar, IndexKind::Rsmia] {
            let built = build_index(kind, &data, &tiny_cfg());
            let m = measure_window_queries(&built, &data, &ws);
            assert!(
                m.recall > 0.999,
                "{} should be exact, recall {}",
                kind.name(),
                m.recall
            );
        }
    }

    #[test]
    fn learned_indices_report_recall_between_zero_and_one() {
        let data = generate(Distribution::skewed_default(), 1500, 11);
        let ws = queries::window_queries(&data, queries::WindowSpec::default(), 20, 13);
        for kind in [IndexKind::Rsmi, IndexKind::Zm] {
            let built = build_index(kind, &data, &tiny_cfg());
            let m = measure_window_queries(&built, &data, &ws);
            assert!((0.0..=1.0).contains(&m.recall));
        }
    }

    #[test]
    fn knn_measurement_works_for_rsmi_and_hrr() {
        let data = generate(Distribution::Uniform, 1000, 17);
        let qs = queries::knn_queries(&data, 20, 19);
        for kind in [IndexKind::Rsmi, IndexKind::Rsmia, IndexKind::Hrr] {
            let built = build_index(kind, &data, &tiny_cfg());
            let m = measure_knn_queries(&built, &data, &qs, 5);
            assert!(m.recall > 0.5, "{} recall {}", kind.name(), m.recall);
        }
    }

    #[test]
    fn insertion_measurement_counts_time_per_insert() {
        let data = generate(Distribution::Uniform, 500, 23);
        let ins = queries::insertion_points(&data, 100, 29);
        let mut built = build_index(IndexKind::Grid, &data, &tiny_cfg());
        let m = measure_insertions(&mut built, &ins);
        assert!(m.avg_time_us >= 0.0);
        assert_eq!(built.index.as_index().len(), 600);
    }

    #[test]
    fn markdown_table_formats_rows() {
        let t = markdown_table(
            "Demo",
            &["index", "time"],
            &[vec!["RSMI".into(), "1.0".into()]],
        );
        assert!(t.contains("### Demo"));
        assert!(t.contains("| RSMI | 1.0 |"));
        assert_eq!(fmt(123.456), "123");
        assert_eq!(fmt(1.234), "1.23");
        assert_eq!(fmt(0.1234), "0.1234");
    }
}
