//! Closed- and open-loop load generators for the network serving
//! front-end (`crates/net`), reporting tail latency per query class.
//!
//! * **Closed loop** — each connection runs one request at a time; latency
//!   is pure service time and the offered load adapts to the server.  This
//!   is the shape the perf gate tracks (stable on shared runners).
//! * **Open loop** — each connection *schedules* sends at a fixed rate and
//!   pipelines them without waiting; latency is measured from the
//!   **scheduled** send time, so queueing delay under overload is charged
//!   to the request (the standard coordinated-omission correction).  Shed
//!   responses (typed `OVERLOAD`) are counted, not timed.
//!
//! Both generators are deterministic for a `(data, seed)` pair; the
//! workload covers all five query classes plus insert/delete writes.

use crate::Report;
use datagen::queries::{
    join_points, range_query_centers, read_write_workload, MixedQuery, ServeOp, WindowSpec,
};
use geom::{Point, Rect};
use net::wire::{self, Request, Response};
use net::{ErrorCode, NetClient, NetError};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Number of probe points carried by one distance-join probe request.
pub const JOIN_PROBES_PER_REQUEST: usize = 8;

/// One load-generator operation (superset of the read/write serving
/// stream: adds the distance-range and join-probe classes).
#[derive(Debug, Clone)]
pub enum NetOp {
    /// Point lookup.
    Point(Point),
    /// Window query.
    Window(Rect),
    /// kNN query.
    Knn(Point, u32),
    /// Distance-range query.
    Range(Point, f64),
    /// Distance-join probe batch.
    Join(Vec<Point>, f64),
    /// Insert write.
    Insert(Point),
    /// Delete write.
    Delete(Point),
}

impl NetOp {
    /// Stable class label used as the row key of the latency tables.
    pub fn class(&self) -> &'static str {
        match self {
            NetOp::Point(_) => "point",
            NetOp::Window(_) => "window",
            NetOp::Knn(..) => "knn",
            NetOp::Range(..) => "range",
            NetOp::Join(..) => "join-probe",
            NetOp::Insert(_) => "insert",
            NetOp::Delete(_) => "delete",
        }
    }

    fn to_request(&self) -> Request {
        match self {
            NetOp::Point(p) => Request::Point(*p),
            NetOp::Window(w) => Request::Window(*w),
            NetOp::Knn(p, k) => Request::Knn(*p, *k),
            NetOp::Range(p, r) => Request::Range(*p, *r),
            NetOp::Join(probes, r) => Request::JoinProbes(probes.clone(), *r),
            NetOp::Insert(p) => Request::Insert(*p),
            NetOp::Delete(p) => Request::Delete(*p),
        }
    }
}

/// Builds one connection's deterministic op stream: the read/write serving
/// mix of [`read_write_workload`] with every 5th read turned into a
/// distance-range query and every 7th into a join-probe batch, so all five
/// query classes appear.  Insert ids (and deletes targeting them) are
/// shifted by `insert_id_base` so concurrent connections never collide.
pub fn net_workload(
    data: &[Point],
    count: usize,
    k: usize,
    radius: f64,
    write_ratio: f64,
    seed: u64,
    insert_id_base: u64,
) -> Vec<NetOp> {
    let stream = read_write_workload(data, WindowSpec::default(), k, count, write_ratio, seed);
    let centers = range_query_centers(data, count.max(1), seed ^ 0x0A11CE);
    let probe_pool = join_points(data, count.clamp(1, 1024), seed ^ 0x0B0B);
    let fresh = data.len() as u64;
    let remap = |p: Point| {
        if p.id >= fresh {
            Point::with_id(p.x, p.y, p.id + insert_id_base)
        } else {
            p
        }
    };
    let mut read_i = 0usize;
    let mut range_i = 0usize;
    let mut join_i = 0usize;
    stream
        .into_iter()
        .map(|op| match op {
            ServeOp::Insert(p) => NetOp::Insert(remap(p)),
            ServeOp::Delete(p) => NetOp::Delete(remap(p)),
            ServeOp::Read(q) => {
                read_i += 1;
                if read_i.is_multiple_of(5) {
                    let c = centers[range_i % centers.len()];
                    range_i += 1;
                    NetOp::Range(c, radius)
                } else if read_i.is_multiple_of(7) {
                    let start = (join_i * JOIN_PROBES_PER_REQUEST) % probe_pool.len();
                    join_i += 1;
                    let probes: Vec<Point> = (0..JOIN_PROBES_PER_REQUEST)
                        .map(|j| probe_pool[(start + j) % probe_pool.len()])
                        .collect();
                    NetOp::Join(probes, radius)
                } else {
                    match q {
                        MixedQuery::Point(p) => NetOp::Point(p),
                        MixedQuery::Window(w) => NetOp::Window(w),
                        MixedQuery::Knn(p, kk) => NetOp::Knn(p, kk as u32),
                    }
                }
            }
        })
        .collect()
}

/// What a load run produced: latencies per class (microseconds,
/// unsorted), shed/refused counts, and the wall-clock envelope.
#[derive(Debug, Default)]
pub struct NetLoadOutcome {
    /// Recorded latencies in microseconds, keyed by query class.
    pub latencies: BTreeMap<&'static str, Vec<f64>>,
    /// Requests shed by the server's admission control.
    pub shed: usize,
    /// Sheds per query class — the client-side mirror of the server's
    /// `net.shed.<class>` counters, so a telemetry scrape can be
    /// reconciled exactly.
    pub shed_by_class: BTreeMap<&'static str, usize>,
    /// Requests answered successfully.
    pub ok: usize,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl NetLoadOutcome {
    fn absorb(&mut self, other: NetLoadOutcome) {
        for (class, mut v) in other.latencies {
            self.latencies.entry(class).or_default().append(&mut v);
        }
        for (class, n) in other.shed_by_class {
            *self.shed_by_class.entry(class).or_default() += n;
        }
        self.shed += other.shed;
        self.ok += other.ok;
    }

    fn record_shed(&mut self, class: &'static str) {
        self.shed += 1;
        *self.shed_by_class.entry(class).or_default() += 1;
    }

    /// Successfully answered requests of one class.
    pub fn ok_of(&self, class: &str) -> usize {
        self.latencies.get(class).map_or(0, Vec::len)
    }

    /// Sheds of one class.
    pub fn shed_of(&self, class: &str) -> usize {
        self.shed_by_class.get(class).copied().unwrap_or(0)
    }

    /// Total requests that completed (answered or shed).
    pub fn total(&self) -> usize {
        self.ok + self.shed
    }

    /// Completed requests per second over the wall-clock envelope.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Nearest-rank percentile (`q` in `[0, 100]`) of an ascending-sorted
/// slice; 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs one closed-loop client per op stream (one stream = one
/// connection), each sending its ops sequentially and timing every
/// response.  Returns the merged outcome or the first connection error.
pub fn run_closed_loop(addr: &str, streams: &[Vec<NetOp>]) -> Result<NetLoadOutcome, String> {
    let started = Instant::now();
    let results: Vec<Result<NetLoadOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|ops| {
                scope.spawn(move || {
                    let mut client = NetClient::connect_retry(addr, Duration::from_secs(10))
                        .map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut out = NetLoadOutcome::default();
                    for op in ops {
                        let class = op.class();
                        let t0 = Instant::now();
                        let result = match op {
                            NetOp::Point(p) => client.point(p).map(|_| ()),
                            NetOp::Window(w) => client.window(w).map(|_| ()),
                            NetOp::Knn(p, k) => client.knn(p, *k).map(|_| ()),
                            NetOp::Range(p, r) => client.range(p, *r).map(|_| ()),
                            NetOp::Join(probes, r) => client.join_probes(probes, *r).map(|_| ()),
                            NetOp::Insert(p) => client.insert(p).map(|_| ()),
                            NetOp::Delete(p) => client.delete(p).map(|_| ()),
                        };
                        match result {
                            Ok(()) => {
                                let us = t0.elapsed().as_secs_f64() * 1e6;
                                out.latencies.entry(class).or_default().push(us);
                                out.ok += 1;
                            }
                            Err(NetError::Overload) => out.record_shed(class),
                            Err(e) => return Err(format!("{class} query failed: {e}")),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let mut merged = NetLoadOutcome::default();
    for r in results {
        merged.absorb(r?);
    }
    merged.wall = started.elapsed();
    Ok(merged)
}

/// Runs one open-loop client per op stream: a sender half paces one
/// request every `interval` (pipelining without waiting, at most
/// `max_inflight` outstanding) while a receiver half times responses
/// against the **scheduled** send instants.
pub fn run_open_loop(
    addr: &str,
    streams: &[Vec<NetOp>],
    interval: Duration,
    max_inflight: usize,
) -> Result<NetLoadOutcome, String> {
    let started = Instant::now();
    let results: Vec<Result<NetLoadOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|ops| {
                scope.spawn(move || {
                    let client = NetClient::connect_retry(addr, Duration::from_secs(10))
                        .map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut recv_stream = client.into_stream();
                    let mut send_stream = recv_stream
                        .try_clone()
                        .map_err(|e| format!("clone stream: {e}"))?;
                    let (tx, rx) =
                        mpsc::sync_channel::<(&'static str, Instant)>(max_inflight.max(1));
                    let sender = scope.spawn(move || -> Result<(), String> {
                        let t0 = Instant::now();
                        for (i, op) in ops.iter().enumerate() {
                            let scheduled = t0 + interval.mul_f64(i as f64);
                            let now = Instant::now();
                            if scheduled > now {
                                std::thread::sleep(scheduled - now);
                            }
                            // Blocks when max_inflight requests are
                            // outstanding — bounds client memory without
                            // hiding queueing delay (latency is measured
                            // from `scheduled`).
                            tx.send((op.class(), scheduled))
                                .map_err(|_| "receiver hung up".to_string())?;
                            wire::write_frame(&mut send_stream, &op.to_request().encode())
                                .map_err(|e| format!("send: {e}"))?;
                        }
                        Ok(())
                    });
                    let mut out = NetLoadOutcome::default();
                    while let Ok((class, scheduled)) = rx.recv() {
                        let payload = wire::read_frame(&mut recv_stream)
                            .map_err(|e| format!("recv: {e}"))?
                            .ok_or("server closed mid-run")?;
                        match Response::decode(&payload).map_err(|e| e.to_string())? {
                            Response::Error {
                                code: ErrorCode::Overload,
                                ..
                            } => out.record_shed(class),
                            Response::Error { code, message } => {
                                return Err(format!("server refused ({code:?}): {message}"))
                            }
                            _ => {
                                let us = scheduled.elapsed().as_secs_f64() * 1e6;
                                out.latencies.entry(class).or_default().push(us);
                                out.ok += 1;
                            }
                        }
                    }
                    sender
                        .join()
                        .unwrap_or_else(|_| Err("sender panicked".into()))?;
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let mut merged = NetLoadOutcome::default();
    for r in results {
        merged.absorb(r?);
    }
    merged.wall = started.elapsed();
    Ok(merged)
}

/// Emits the per-class tail-latency table.  The `p50 time (us)` and
/// `p99 time (us)` columns are perf-gate metrics (their headers contain
/// "time"); `p999 (us)` and `max (us)` are deliberately reported outside
/// the gate — the last permille of a few hundred samples is noise on
/// shared CI runners.
pub fn emit_latency_table(report: &mut Report, title: &str, outcome: &NetLoadOutcome) {
    let rows: Vec<Vec<String>> = outcome
        .latencies
        .iter()
        .map(|(class, lat)| {
            let mut sorted = lat.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vec![
                (*class).to_string(),
                sorted.len().to_string(),
                crate::fmt(percentile(&sorted, 50.0)),
                crate::fmt(percentile(&sorted, 99.0)),
                crate::fmt(percentile(&sorted, 99.9)),
                crate::fmt(sorted.last().copied().unwrap_or(0.0)),
            ]
        })
        .collect();
    report.table(
        title,
        &[
            "class",
            "requests",
            "p50 time (us)",
            "p99 time (us)",
            "p999 (us)",
            "max (us)",
        ],
        rows,
    );
}

/// Emits the one-row load summary (throughput, shed counts) for one mode.
pub fn emit_summary_table(report: &mut Report, title: &str, mode: &str, outcome: &NetLoadOutcome) {
    report.table(
        title,
        &[
            "mode",
            "requests",
            "answered",
            "shed",
            "wall (s)",
            "throughput (req/s)",
        ],
        vec![vec![
            mode.to_string(),
            outcome.total().to_string(),
            outcome.ok.to_string(),
            outcome.shed.to_string(),
            crate::fmt(outcome.wall.as_secs_f64()),
            crate::fmt(outcome.throughput()),
        ]],
    );
}

/// Reconciles two server telemetry scrapes — taken before and after a load
/// run — against what the load generator itself observed.  For every
/// request class the delta of the server's `net.requests.<class>` counter
/// must equal the client-side completed count **exactly**, and likewise
/// `net.shed.<class>` against the client's typed-OVERLOAD count; the
/// server counts responses it delivered and the closed-loop client counts
/// responses it received, so any drift is a lost or double-counted
/// request.  Returns the per-class reconciliation rows (for the report
/// table) and a list of discrepancies (empty = exact match).
pub fn reconcile_stats(
    baseline: &obs::MetricsSnapshot,
    after: &obs::MetricsSnapshot,
    outcomes: &[&NetLoadOutcome],
) -> (Vec<Vec<String>>, Vec<String>) {
    let delta = |name: &str| -> u64 {
        after
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(baseline.counter(name).unwrap_or(0))
    };
    let mut rows = Vec::new();
    let mut discrepancies = Vec::new();
    for class in net::REQUEST_CLASSES {
        let client_ok: usize = outcomes.iter().map(|o| o.ok_of(class)).sum();
        let client_shed: usize = outcomes.iter().map(|o| o.shed_of(class)).sum();
        let server_ok = delta(&format!("net.requests.{class}"));
        let server_shed = delta(&format!("net.shed.{class}"));
        let matches = server_ok == client_ok as u64 && server_shed == client_shed as u64;
        if server_ok != client_ok as u64 {
            discrepancies.push(format!(
                "{class}: client completed {client_ok} but server counted {server_ok}"
            ));
        }
        if server_shed != client_shed as u64 {
            discrepancies.push(format!(
                "{class}: client saw {client_shed} sheds but server counted {server_shed}"
            ));
        }
        rows.push(vec![
            class.to_string(),
            client_ok.to_string(),
            server_ok.to_string(),
            client_shed.to_string(),
            server_shed.to_string(),
            if matches { "yes" } else { "NO" }.to_string(),
        ]);
    }
    (rows, discrepancies)
}

/// Column headers for the [`reconcile_stats`] table.  Deliberately free of
/// the word "time": reconciliation counts are not perf-gate metrics.
pub const RECONCILE_HEADER: [&str; 6] = [
    "class",
    "client completed",
    "server completed",
    "client shed",
    "server shed",
    "exact match",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 99.9), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn workload_is_deterministic_and_covers_every_class() {
        let data: Vec<Point> = (0..500)
            .map(|i| Point::with_id((i as f64 * 0.377) % 1.0, (i as f64 * 0.618) % 1.0, i))
            .collect();
        let a = net_workload(&data, 400, 5, 0.02, 0.2, 42, 1 << 33);
        let b = net_workload(&data, 400, 5, 0.02, 0.2, 42, 1 << 33);
        assert_eq!(a.len(), 400);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class(), y.class());
        }
        let mut classes: Vec<&str> = a.iter().map(|op| op.class()).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(
            classes,
            vec![
                "delete",
                "insert",
                "join-probe",
                "knn",
                "point",
                "range",
                "window"
            ]
        );
        // Insert ids are shifted past the collision base.
        for op in &a {
            if let NetOp::Insert(p) = op {
                assert!(p.id >= (1 << 33));
            }
        }
    }

    #[test]
    fn reconciliation_is_exact_and_flags_drift() {
        let registry = obs::MetricsRegistry::new();
        let baseline = registry.snapshot();
        registry.counter("net.requests.point").add(7);
        registry.counter("net.requests.insert").add(2);
        registry.counter("net.shed.window").add(1);
        let after = registry.snapshot();

        let mut out = NetLoadOutcome::default();
        out.latencies.insert("point", vec![1.0; 7]);
        out.latencies.insert("insert", vec![1.0; 2]);
        out.record_shed("window");
        out.ok = 9;

        let (rows, bad) = reconcile_stats(&baseline, &after, &[&out]);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(rows.len(), net::REQUEST_CLASSES.len());
        assert!(rows.iter().all(|r| r[5] == "yes"), "{rows:?}");

        // A lost response shows up as a per-class discrepancy.
        registry.counter("net.requests.point").inc();
        let drifted = registry.snapshot();
        let (rows, bad) = reconcile_stats(&baseline, &drifted, &[&out]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("point"), "{bad:?}");
        assert!(rows.iter().any(|r| r[5] == "NO"));
    }
}
