//! Reading and comparing `bench-summary` JSON artifacts — the parser side
//! of the CI perf-regression gate.
//!
//! [`Report::to_json`](crate::Report::to_json) writes the artifacts with a
//! hand-rolled serialiser (the build environment is offline, so no serde);
//! this module is the matching hand-rolled reader.  It parses the JSON
//! subset the writer emits (objects, arrays, strings, finite numbers,
//! booleans, null), extracts per-kind latency metrics from the tables, and
//! compares two runs, flagging every metric whose latency regressed beyond
//! a tolerance — the contract the CI gate enforces between the committed
//! baseline (or the previous run's artifact) and the current run.

use std::collections::BTreeMap;

/// A parsed JSON value (the subset the report writer emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.  Errors carry the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of document".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {}", *pos)),
                };
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 character, not just one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

// ---------------------------------------------------------------------
// Latency-metric extraction and run-to-run comparison
// ---------------------------------------------------------------------

/// One latency datapoint extracted from a bench summary: a (table, row
/// label, column) coordinate plus its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Table title the value came from.
    pub table: String,
    /// Row label (the first cell — the index-kind column in the range/join
    /// tables).
    pub label: String,
    /// Column header (a header containing "time").
    pub column: String,
    /// The measured value.
    pub value: f64,
}

impl Metric {
    /// The comparison key: same table + label + column = same metric.
    pub fn key(&self) -> String {
        format!("{} / {} / {}", self.table, self.label, self.column)
    }
}

/// Extracts every latency metric from a parsed bench summary: for each
/// table, each numeric cell in a column whose header contains `"time"`,
/// keyed by the row's first cell.  Verifies the document carries a
/// `schema_version` (the self-description contract every summary has
/// honoured since schema 2).
pub fn latency_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    metrics_matching(doc, "time")
}

/// Extracts every throughput metric (column header containing
/// `"throughput"`) — the higher-is-better twin of [`latency_metrics`],
/// compared with [`compare_throughput`].  The two column families are
/// disjoint by construction: throughput headers never contain "time" and
/// latency headers never contain "throughput", so each gate mode sees only
/// its own direction.
pub fn throughput_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    metrics_matching(doc, "throughput")
}

fn metrics_matching(doc: &Json, needle: &str) -> Result<Vec<Metric>, String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("summary has no schema_version — not a bench-summary document")?;
    if version < 2.0 {
        return Err(format!("unsupported bench-summary schema {version}"));
    }
    let tables = doc
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or("summary has no tables array")?;
    let mut out = Vec::new();
    for table in tables {
        let title = table
            .get("title")
            .and_then(Json::as_str)
            .ok_or("table without title")?;
        let header = table
            .get("header")
            .and_then(Json::as_arr)
            .ok_or("table without header")?;
        let time_cols: Vec<(usize, String)> = header
            .iter()
            .enumerate()
            .filter_map(|(i, h)| {
                h.as_str()
                    .filter(|name| name.to_ascii_lowercase().contains(needle))
                    .map(|name| (i, name.to_string()))
            })
            .collect();
        if time_cols.is_empty() {
            continue;
        }
        let rows = table
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("table without rows")?;
        for row in rows {
            let cells = row.as_arr().ok_or("row is not an array")?;
            let label = match cells.first() {
                Some(Json::Str(s)) => s.clone(),
                Some(Json::Num(v)) => format!("{v}"),
                _ => continue,
            };
            for (col, name) in &time_cols {
                if let Some(value) = cells.get(*col).and_then(Json::as_num) {
                    out.push(Metric {
                        table: title.to_string(),
                        label: label.clone(),
                        column: name.clone(),
                        value,
                    });
                }
            }
        }
    }
    Ok(out)
}

/// One compared metric with its actual baseline-vs-current numbers — the
/// structured form behind the gate's per-metric output, so CI logs show
/// *how far* every metric moved, not just pass/fail.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// The metric's comparison key (`table / label / column`).
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Percentage change (`+` = slower); 0.0 when either side is below the
    /// noise floor.
    pub delta_pct: f64,
    /// Whether the delta exceeded the gate tolerance.
    pub regressed: bool,
}

impl Delta {
    /// The one-line rendering CI logs show.
    pub fn render(&self) -> String {
        format!(
            "{}: baseline {:.3}, current {:.3} ({:+.1}%) {}",
            self.key,
            self.baseline,
            self.current,
            self.delta_pct,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Outcome of comparing a current run against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Every compared metric with its actual values, sorted worst
    /// regression first — the diagnostic CI prints.
    pub deltas: Vec<Delta>,
    /// One formatted line per compared metric (baseline, current, delta),
    /// in the same worst-first order as [`Comparison::deltas`].
    pub lines: Vec<String>,
    /// Metrics that regressed beyond the tolerance.
    pub regressions: Vec<String>,
    /// Baseline metrics missing from the current run (coverage loss —
    /// treated as failures so a kind cannot silently drop out of the gate).
    pub missing: Vec<String>,
    /// Metrics compared.
    pub compared: usize,
}

impl Comparison {
    /// Whether the current run passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// The single metric that moved the most toward slower, if any
    /// compared metric moved at all — the headline CI prints.
    pub fn worst(&self) -> Option<&Delta> {
        self.deltas.first().filter(|d| d.delta_pct > 0.0)
    }

    /// The throughput-direction headline: the metric that dropped the most,
    /// if any dropped at all.  Valid on [`compare_throughput`] results,
    /// whose deltas are sorted worst drop (most negative) first.
    pub fn worst_drop(&self) -> Option<&Delta> {
        self.deltas.first().filter(|d| d.delta_pct < 0.0)
    }
}

/// Compares two metric sets: every baseline metric must exist in the
/// current run and must not exceed `baseline * (1 + max_regression)`.
/// Metrics only present in the current run (new kinds) pass silently.
/// The returned deltas carry the actual values and are sorted worst
/// regression first.
pub fn compare(baseline: &[Metric], current: &[Metric], max_regression: f64) -> Comparison {
    let current_by_key: BTreeMap<String, f64> =
        current.iter().map(|m| (m.key(), m.value)).collect();
    let mut out = Comparison::default();
    for base in baseline {
        let key = base.key();
        let Some(&now) = current_by_key.get(&key) else {
            out.missing.push(key);
            continue;
        };
        out.compared += 1;
        // Noise guard: a value below the floor (1e-3 of the table's unit)
        // was never a meaningful measurement, so a comparison involving one
        // on EITHER side is treated as unchanged — a sub-floor baseline
        // must not turn timer jitter in the current run into a regression.
        let floor = 1e-3;
        let ratio = if base.value < floor || now < floor {
            1.0
        } else {
            now / base.value
        };
        let delta_pct = (ratio - 1.0) * 100.0;
        let regressed = ratio > 1.0 + max_regression;
        if regressed {
            out.regressions.push(format!(
                "{key}: {:.3} -> {now:.3} (+{delta_pct:.1}%)",
                base.value
            ));
        }
        out.deltas.push(Delta {
            key,
            baseline: base.value,
            current: now,
            delta_pct,
            regressed,
        });
    }
    // Worst first: the regression (or near-miss) CI should look at leads
    // the log; ties and improvements follow in descending delta order.
    out.deltas.sort_by(|a, b| {
        b.delta_pct
            .partial_cmp(&a.delta_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&b.key))
    });
    out.lines = out.deltas.iter().map(Delta::render).collect();
    out
}

/// Compares two **throughput** metric sets — the higher-is-better inverse
/// of [`compare`]: every baseline metric must exist in the current run,
/// must not fall below `baseline * (1 - max_drop)`, and must not fall
/// below the absolute `floor` (pass `0.0` for no floor).  The floor fails
/// a metric even when the committed baseline itself is already below it —
/// that is the point of a floor: it cannot be ratcheted down by re-running
/// the baseline on a slow machine.  Deltas are sorted worst drop first;
/// `delta_pct` keeps its `compare` meaning (`-` = lower than baseline).
pub fn compare_throughput(
    baseline: &[Metric],
    current: &[Metric],
    max_drop: f64,
    floor: f64,
) -> Comparison {
    let current_by_key: BTreeMap<String, f64> =
        current.iter().map(|m| (m.key(), m.value)).collect();
    let mut out = Comparison::default();
    for base in baseline {
        let key = base.key();
        let Some(&now) = current_by_key.get(&key) else {
            out.missing.push(key);
            continue;
        };
        out.compared += 1;
        // Same noise guard as `compare`: a sub-floor measurement on either
        // side was never meaningful, so the ratio is treated as unchanged
        // (the absolute throughput floor below still applies).
        let noise = 1e-3;
        let ratio = if base.value < noise || now < noise {
            1.0
        } else {
            now / base.value
        };
        let delta_pct = (ratio - 1.0) * 100.0;
        let dropped = ratio < 1.0 - max_drop;
        let under_floor = floor > 0.0 && now < floor;
        let regressed = dropped || under_floor;
        if dropped {
            out.regressions.push(format!(
                "{key}: {:.3} -> {now:.3} ({delta_pct:.1}%)",
                base.value
            ));
        }
        if under_floor {
            out.regressions
                .push(format!("{key}: {now:.3} is below the floor {floor:.3}"));
        }
        out.deltas.push(Delta {
            key,
            baseline: base.value,
            current: now,
            delta_pct,
            regressed,
        });
    }
    // Worst drop first — the inverse of `compare`'s ordering.
    out.deltas.sort_by(|a, b| {
        a.delta_pct
            .partial_cmp(&b.delta_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&b.key))
    });
    out.lines = out.deltas.iter().map(Delta::render).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary(time_us: f64) -> String {
        let mut report = crate::Report::new();
        report.meta("experiment", "range");
        report.meta("kind", "all");
        report.table(
            "Range — test",
            &["index", "query time (us)", "blocks"],
            vec![
                vec!["HRR".into(), format!("{time_us}"), "4.0".into()],
                vec!["Grid".into(), "2.0".into(), "6.0".into()],
            ],
        );
        report.to_json()
    }

    #[test]
    fn parses_what_the_report_writer_emits() {
        let doc = parse(&sample_summary(1.5)).expect("parse");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_num),
            Some(crate::BENCH_SUMMARY_SCHEMA_VERSION as f64)
        );
        let metrics = latency_metrics(&doc).expect("metrics");
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].label, "HRR");
        assert_eq!(metrics[0].value, 1.5);
        assert_eq!(metrics[1].label, "Grid");
    }

    #[test]
    fn parser_rejects_garbage_and_handles_escapes() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        let doc = parse("{\"s\": \"a\\\"b\\n\\u0041\", \"n\": -1.5e2, \"b\": true, \"z\": null}")
            .expect("parse");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"b\nA"));
        assert_eq!(doc.get("n").and_then(Json::as_num), Some(-150.0));
        assert_eq!(doc.get("b"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("z"), Some(&Json::Null));
    }

    #[test]
    fn unversioned_documents_are_rejected() {
        let doc = parse("{\"tables\": []}").expect("parse");
        assert!(latency_metrics(&doc).is_err());
    }

    #[test]
    fn comparison_flags_regressions_beyond_the_tolerance() {
        let base = latency_metrics(&parse(&sample_summary(1.0)).unwrap()).unwrap();
        let ok = latency_metrics(&parse(&sample_summary(1.2)).unwrap()).unwrap();
        let bad = latency_metrics(&parse(&sample_summary(1.6)).unwrap()).unwrap();
        let cmp = compare(&base, &ok, 0.25);
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        assert_eq!(cmp.compared, 2);
        let cmp = compare(&base, &bad, 0.25);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("HRR"), "{:?}", cmp.regressions);
    }

    #[test]
    fn missing_kinds_fail_the_gate() {
        let base = latency_metrics(&parse(&sample_summary(1.0)).unwrap()).unwrap();
        let cmp = compare(&base, &base[..1], 0.25);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing.len(), 1);
        // The reverse (new kinds in current) passes.
        let cmp = compare(&base[..1], &base, 0.25);
        assert!(cmp.passed());
    }

    #[test]
    fn deltas_carry_actual_values_worst_first() {
        let base = latency_metrics(&parse(&sample_summary(1.0)).unwrap()).unwrap();
        // HRR slows to 1.6 (+60%), Grid speeds up 2.0 -> 1.0 (-50%).
        let mut current = base.clone();
        current[0].value = 1.6;
        current[1].value = 1.0;
        let cmp = compare(&base, &current, 0.25);
        assert_eq!(cmp.deltas.len(), 2);
        // Worst regression leads.
        assert!(cmp.deltas[0].key.contains("HRR"));
        assert_eq!(cmp.deltas[0].baseline, 1.0);
        assert_eq!(cmp.deltas[0].current, 1.6);
        assert!((cmp.deltas[0].delta_pct - 60.0).abs() < 1e-9);
        assert!(cmp.deltas[0].regressed);
        assert!(cmp.deltas[1].key.contains("Grid"));
        assert!((cmp.deltas[1].delta_pct - -50.0).abs() < 1e-9);
        assert!(!cmp.deltas[1].regressed);
        // The headline is the worst mover; lines render in the same order.
        assert_eq!(cmp.worst().unwrap().key, cmp.deltas[0].key);
        assert!(cmp.lines[0].contains("+60.0%"), "{:?}", cmp.lines);
        // An all-improvement run has no "worst regression" headline.
        let better = compare(
            &base,
            &{
                let mut c = base.clone();
                c[0].value = 0.5;
                c[1].value = 1.5;
                c
            },
            0.25,
        );
        assert!(better.worst().is_none());
    }

    fn sample_scan_summary(hrr_qps: f64) -> String {
        let mut report = crate::Report::new();
        report.meta("experiment", "scan");
        report.meta("kind", "all");
        report.table(
            "Scan throughput — test",
            &[
                "index",
                "window throughput (q/s)",
                "point throughput (q/s)",
                "window recall",
            ],
            vec![
                vec![
                    "HRR".into(),
                    format!("{hrr_qps}"),
                    "9000.0".into(),
                    "1.0".into(),
                ],
                vec![
                    "Grid".into(),
                    "5000.0".into(),
                    "8000.0".into(),
                    "1.0".into(),
                ],
            ],
        );
        report.to_json()
    }

    #[test]
    fn throughput_metrics_see_only_throughput_columns() {
        let doc = parse(&sample_scan_summary(4000.0)).expect("parse");
        let tp = throughput_metrics(&doc).expect("metrics");
        assert_eq!(tp.len(), 4); // 2 kinds x 2 throughput columns
        assert!(tp.iter().all(|m| m.column.contains("throughput")));
        // The latency gate must not see higher-is-better columns, and the
        // throughput gate must not see latency columns.
        assert!(latency_metrics(&doc).expect("metrics").is_empty());
        let lat_doc = parse(&sample_summary(1.0)).expect("parse");
        assert!(throughput_metrics(&lat_doc).expect("metrics").is_empty());
    }

    #[test]
    fn throughput_comparison_fails_on_drops_not_gains() {
        let base = throughput_metrics(&parse(&sample_scan_summary(4000.0)).unwrap()).unwrap();
        // +50% throughput passes; -40% fails at a 25% tolerance.
        let faster = throughput_metrics(&parse(&sample_scan_summary(6000.0)).unwrap()).unwrap();
        let slower = throughput_metrics(&parse(&sample_scan_summary(2400.0)).unwrap()).unwrap();
        let cmp = compare_throughput(&base, &faster, 0.25, 0.0);
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        assert_eq!(cmp.compared, 4);
        assert!(cmp.worst_drop().is_none());
        let cmp = compare_throughput(&base, &slower, 0.25, 0.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("HRR"), "{:?}", cmp.regressions);
        // Worst drop leads the deltas.
        assert!(cmp.deltas[0].key.contains("HRR"));
        assert!((cmp.deltas[0].delta_pct - -40.0).abs() < 1e-9);
        assert_eq!(cmp.worst_drop().unwrap().key, cmp.deltas[0].key);
    }

    #[test]
    fn throughput_floor_is_absolute() {
        let base = throughput_metrics(&parse(&sample_scan_summary(4000.0)).unwrap()).unwrap();
        // 3500 q/s is only a 12.5% drop (within tolerance) but is below a
        // 3600 q/s floor — the floor alone must fail the gate.
        let current = throughput_metrics(&parse(&sample_scan_summary(3500.0)).unwrap()).unwrap();
        let cmp = compare_throughput(&base, &current, 0.25, 3600.0);
        assert!(!cmp.passed());
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("below the floor")),
            "{:?}",
            cmp.regressions
        );
        // Without the floor the same run passes.
        assert!(compare_throughput(&base, &current, 0.25, 0.0).passed());
        // Missing kinds still fail in throughput mode.
        let cmp = compare_throughput(&base, &current[..1], 0.25, 0.0);
        assert!(!cmp.passed());
        assert!(!cmp.missing.is_empty());
    }

    #[test]
    fn sub_floor_noise_never_regresses() {
        let mk = |v: f64| Metric {
            table: "t".into(),
            label: "x".into(),
            column: "time".into(),
            value: v,
        };
        // Both sides below the floor.
        let cmp = compare(&[mk(0.0001)], &[mk(0.0009)], 0.25);
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        // Only the baseline below the floor: the current value is jitter on
        // the same scale, not a regression.
        let cmp = compare(&[mk(0.0005)], &[mk(0.0015)], 0.25);
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        // Both sides above the floor still regress normally.
        let cmp = compare(&[mk(1.0)], &[mk(1.6)], 0.25);
        assert!(!cmp.passed());
    }
}
