//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! Usage:
//!
//! ```text
//! experiments <id> [--scale S] [--epochs E] [--only INDEX[,INDEX...]]
//!                  [--shards N] [--threads N]
//! experiments all
//! ```
//!
//! where `<id>` is one of `table3`, `table4`, `fig6` … `fig19`,
//! `ablation-rank`, `ablation-curve`, `ablation-grouping`, `sharded`, or
//! `all`, and `--only` restricts the cross-family figures to the named index
//! families (parsed through the registry, e.g. `--only RSMI,HRR`).
//!
//! `sharded` is not a paper figure: it measures the sharded serving engine
//! (`crates/engine`) against the unsharded families — shard fan-out
//! (`shards_visited` / `shards_pruned`) on a hotspot window workload and the
//! wall-clock speedup of the multi-threaded batch executor.  `--shards` and
//! `--threads` parameterise it (defaults 4 and 4).
//!
//! Every index is constructed through the dynamic registry
//! (`registry::build_index`) and measured through the uniform
//! `common::SpatialIndex` API — the binary contains no per-index special
//! casing.  The only concrete-type access is in `table4`/`ablation-rank`,
//! which report *internal model error bounds* of the two learned families,
//! a diagnostic the uniform query API deliberately does not expose.
//!
//! The paper's experiments run on up to 128 million points and train each
//! sub-model for 500 epochs (16 h of training for the largest data set).
//! The harness defaults reproduce the *shape* of every experiment at laptop
//! scale: data sizes are tens of thousands of points and epochs are reduced.
//! `--scale` multiplies all data-set sizes and `--epochs` restores any epoch
//! count, so the experiments can be pushed back toward paper scale on bigger
//! machines.

use bench::{
    build_timed, fmt, markdown_table, measure_insertions, measure_knn_queries,
    measure_point_queries, measure_window_queries, IndexConfig, IndexKind,
};
use common::QueryContext;
use datagen::queries::{self, WindowSpec};
use datagen::{generate, Distribution};
use geom::Point;

/// One window-experiment configuration: axis label, data set, query windows.
type WindowConfig = (String, Vec<Point>, Vec<geom::Rect>);
/// One kNN-experiment configuration: axis label, data set, query points, k.
type KnnConfig = (String, Vec<Point>, Vec<Point>, usize);

const POINT_QUERIES: usize = 1000;
const RANGE_QUERIES: usize = 100;
const SEED: u64 = 42;

#[derive(Clone)]
struct Opts {
    scale: f64,
    epochs: usize,
    only: Option<Vec<IndexKind>>,
    shards: usize,
    threads: usize,
}

impl Opts {
    fn n_default(&self) -> usize {
        (20_000.0 * self.scale) as usize
    }

    fn sizes(&self) -> Vec<usize> {
        [5_000.0, 10_000.0, 20_000.0, 40_000.0]
            .iter()
            .map(|s| (s * self.scale) as usize)
            .collect()
    }

    fn harness(&self) -> IndexConfig {
        IndexConfig {
            block_capacity: 100,
            partition_threshold: 5_000,
            epochs: self.epochs,
            seed: SEED,
            shards: self.shards,
            threads: self.threads,
            ..IndexConfig::default()
        }
    }

    /// The families a cross-family experiment should cover, honouring
    /// `--only`.
    fn kinds(&self, base: Vec<IndexKind>) -> Vec<IndexKind> {
        match &self.only {
            None => base,
            Some(only) => base.into_iter().filter(|k| only.contains(k)).collect(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = String::from("all");
    let mut opts = Opts {
        scale: 1.0,
        epochs: 30,
        only: None,
        shards: 4,
        threads: 4,
    };
    let mut it = args.iter().peekable();
    if let Some(first) = it.peek() {
        if !first.starts_with("--") {
            which = it.next().unwrap().clone();
        }
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(1.0);
            }
            "--epochs" => {
                opts.epochs = it.next().and_then(|v| v.parse().ok()).unwrap_or(30);
            }
            "--shards" => {
                opts.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or(4);
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or(4);
            }
            "--only" => {
                let spec = it.next().cloned().unwrap_or_default();
                let kinds: Result<Vec<IndexKind>, String> =
                    spec.split(',').map(str::parse).collect();
                match kinds {
                    Ok(kinds) if !kinds.is_empty() => opts.only = Some(kinds),
                    Ok(_) => {
                        eprintln!("--only expects a comma-separated list of index names");
                        std::process::exit(2);
                    }
                    Err(e) => {
                        eprintln!("--only: {e}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    println!("# RSMI reproduction experiments");
    println!(
        "\n_scale = {} (default data set = {} points), epochs = {}, B = 100_\n",
        opts.scale,
        opts.n_default(),
        opts.epochs
    );

    let all = which == "all";
    let run = |name: &str| all || which == name;

    if run("table3") {
        table3(&opts);
    }
    if run("table4") {
        table4(&opts);
    }
    if run("fig6") || run("fig7") {
        fig6_7(&opts);
    }
    if run("fig8") || run("fig9") {
        fig8_9(&opts);
    }
    if run("fig10") {
        fig10(&opts);
    }
    if run("fig11") {
        fig11(&opts);
    }
    if run("fig12") {
        fig12(&opts);
    }
    if run("fig13") {
        fig13(&opts);
    }
    if run("fig14") {
        fig14(&opts);
    }
    if run("fig15") {
        fig15(&opts);
    }
    if run("fig16") {
        fig16(&opts);
    }
    if run("fig17") || run("fig18") || run("fig19") {
        fig17_18_19(&opts);
    }
    if run("sharded") {
        sharded(&opts);
    }
    if run("ablation-rank") {
        ablation_rank(&opts);
    }
    if run("ablation-curve") {
        ablation_curve(&opts);
    }
    if run("ablation-grouping") {
        ablation_grouping(&opts);
    }
}

fn dataset(dist: Distribution, n: usize) -> Vec<Point> {
    generate(dist, n, SEED)
}

// ---------------------------------------------------------------------
// Table 3: impact of the partition threshold N
// ---------------------------------------------------------------------
fn table3(opts: &Opts) {
    let n = (50_000.0 * opts.scale) as usize;
    let data = dataset(Distribution::skewed_default(), n);
    let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
    let thresholds = [1_000usize, 2_500, 5_000, 10_000, 20_000];
    let mut rows = Vec::new();
    for &threshold in &thresholds {
        let cfg = opts.harness().with_partition_threshold(threshold);
        let built = build_timed(IndexKind::Rsmi, &data, &cfg);
        let m = measure_point_queries(&built, &point_qs);
        rows.push(vec![
            threshold.to_string(),
            fmt(built.build_seconds),
            built.index.height().to_string(),
            fmt(built.index.size_bytes() as f64 / (1024.0 * 1024.0)),
            fmt(m.avg_block_accesses),
            fmt(m.avg_time_us),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &format!("Table 3 — impact of partition threshold N (Skewed, n = {n})"),
            &[
                "N",
                "construction (s)",
                "height",
                "index size (MB)",
                "point-query block accesses",
                "point-query time (us)"
            ],
            &rows
        )
    );
}

// ---------------------------------------------------------------------
// Table 4: prediction error bounds of ZM and RSMI
// ---------------------------------------------------------------------
fn table4(opts: &Opts) {
    // Error bounds are internal model diagnostics, not part of the uniform
    // query API, so this table uses the concrete learned types directly.
    let cfg = opts.harness();
    let mut rows = Vec::new();
    for dist in Distribution::all() {
        let data = dataset(dist, opts.n_default());
        let rsmi = rsmi::Rsmi::build(data.clone(), cfg.rsmi_config());
        let stats = rsmi.stats();
        let zm = baselines::ZOrderModel::build(data, cfg.zm_config());
        let (zb, za) = zm.error_bounds_blocks();
        rows.push(vec![
            dist.name().to_string(),
            format!("({zb}, {za})"),
            format!("({}, {})", stats.max_err_below, stats.max_err_above),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &format!(
                "Table 4 — prediction error bounds in blocks (err_l, err_a), n = {}",
                opts.n_default()
            ),
            &["data set", "ZM", "RSMI"],
            &rows
        )
    );
}

// ---------------------------------------------------------------------
// Figures 6 & 7: point queries, index size, construction time vs distribution
// ---------------------------------------------------------------------
fn fig6_7(opts: &Opts) {
    let cfg = opts.harness();
    let mut q_rows = Vec::new();
    let mut s_rows = Vec::new();
    for dist in Distribution::all() {
        let data = dataset(dist, opts.n_default());
        let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
        for kind in opts.kinds(IndexKind::without_rsmia()) {
            let built = build_timed(kind, &data, &cfg);
            let m = measure_point_queries(&built, &point_qs);
            q_rows.push(vec![
                dist.name().to_string(),
                m.index.clone(),
                fmt(m.avg_time_us),
                fmt(m.avg_block_accesses),
            ]);
            s_rows.push(vec![
                dist.name().to_string(),
                built.kind.name().to_string(),
                fmt(built.index.size_bytes() as f64 / (1024.0 * 1024.0)),
                fmt(built.build_seconds),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &format!(
                "Figure 6 — point query vs data distribution (n = {})",
                opts.n_default()
            ),
            &["data set", "index", "query time (us)", "block accesses"],
            &q_rows
        )
    );
    println!(
        "{}",
        markdown_table(
            &format!(
                "Figure 7 — index size and construction time vs data distribution (n = {})",
                opts.n_default()
            ),
            &["data set", "index", "size (MB)", "construction (s)"],
            &s_rows
        )
    );
}

// ---------------------------------------------------------------------
// Figures 8 & 9: point queries, size, construction vs data-set size
// ---------------------------------------------------------------------
fn fig8_9(opts: &Opts) {
    let cfg = opts.harness();
    let mut q_rows = Vec::new();
    let mut s_rows = Vec::new();
    for n in opts.sizes() {
        let data = dataset(Distribution::skewed_default(), n);
        let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
        for kind in opts.kinds(IndexKind::without_rsmia()) {
            let built = build_timed(kind, &data, &cfg);
            let m = measure_point_queries(&built, &point_qs);
            q_rows.push(vec![
                n.to_string(),
                m.index.clone(),
                fmt(m.avg_time_us),
                fmt(m.avg_block_accesses),
            ]);
            s_rows.push(vec![
                n.to_string(),
                built.kind.name().to_string(),
                fmt(built.index.size_bytes() as f64 / (1024.0 * 1024.0)),
                fmt(built.build_seconds),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            "Figure 8 — point query vs data set size (Skewed)",
            &["n", "index", "query time (us)", "block accesses"],
            &q_rows
        )
    );
    println!(
        "{}",
        markdown_table(
            "Figure 9 — index size and construction time vs data set size (Skewed)",
            &["n", "index", "size (MB)", "construction (s)"],
            &s_rows
        )
    );
}

// ---------------------------------------------------------------------
// Window-query figures
// ---------------------------------------------------------------------
fn window_experiment(
    title: &str,
    axis: &str,
    configs: &[WindowConfig],
    cfg: &IndexConfig,
    opts: &Opts,
) {
    let mut rows = Vec::new();
    for (label, data, windows) in configs {
        for kind in opts.kinds(IndexKind::all()) {
            let built = build_timed(kind, data, cfg);
            let m = measure_window_queries(&built, data, windows);
            rows.push(vec![
                label.clone(),
                m.index.clone(),
                fmt(m.avg_time_us / 1000.0),
                fmt(m.recall),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(title, &[axis, "index", "query time (ms)", "recall"], &rows)
    );
}

fn fig10(opts: &Opts) {
    let cfg = opts.harness();
    let configs: Vec<WindowConfig> = Distribution::all()
        .iter()
        .map(|&dist| {
            let data = dataset(dist, opts.n_default());
            let ws = queries::window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 2);
            (dist.name().to_string(), data, ws)
        })
        .collect();
    window_experiment(
        &format!(
            "Figure 10 — window query vs data distribution (n = {}, 0.01% windows)",
            opts.n_default()
        ),
        "data set",
        &configs,
        &cfg,
        opts,
    );
}

fn fig11(opts: &Opts) {
    let cfg = opts.harness();
    let configs: Vec<WindowConfig> = opts
        .sizes()
        .into_iter()
        .map(|n| {
            let data = dataset(Distribution::skewed_default(), n);
            let ws = queries::window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 2);
            (n.to_string(), data, ws)
        })
        .collect();
    window_experiment(
        "Figure 11 — window query vs data set size (Skewed)",
        "n",
        &configs,
        &cfg,
        opts,
    );
}

fn fig12(opts: &Opts) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let configs: Vec<WindowConfig> = queries::WINDOW_SIZE_PERCENTS
        .iter()
        .map(|&pct| {
            let spec = WindowSpec {
                area_percent: pct,
                aspect_ratio: 1.0,
            };
            let ws = queries::window_queries(&data, spec, RANGE_QUERIES, 3);
            (format!("{pct}%"), data.clone(), ws)
        })
        .collect();
    window_experiment(
        &format!(
            "Figure 12 — window query vs query window size (Skewed, n = {})",
            opts.n_default()
        ),
        "window size",
        &configs,
        &cfg,
        opts,
    );
}

fn fig13(opts: &Opts) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let configs: Vec<WindowConfig> = queries::ASPECT_RATIOS
        .iter()
        .map(|&ratio| {
            let spec = WindowSpec {
                area_percent: 0.01,
                aspect_ratio: ratio,
            };
            let ws = queries::window_queries(&data, spec, RANGE_QUERIES, 5);
            (format!("{ratio}"), data.clone(), ws)
        })
        .collect();
    window_experiment(
        &format!(
            "Figure 13 — window query vs aspect ratio (Skewed, n = {})",
            opts.n_default()
        ),
        "aspect ratio",
        &configs,
        &cfg,
        opts,
    );
}

// ---------------------------------------------------------------------
// kNN figures
// ---------------------------------------------------------------------
fn knn_experiment(title: &str, axis: &str, configs: &[KnnConfig], cfg: &IndexConfig, opts: &Opts) {
    let mut rows = Vec::new();
    for (label, data, qs, k) in configs {
        for kind in opts.kinds(IndexKind::all()) {
            let built = build_timed(kind, data, cfg);
            let m = measure_knn_queries(&built, data, qs, *k);
            rows.push(vec![
                label.clone(),
                m.index.clone(),
                fmt(m.avg_time_us / 1000.0),
                fmt(m.recall),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(title, &[axis, "index", "query time (ms)", "recall"], &rows)
    );
}

fn fig14(opts: &Opts) {
    let cfg = opts.harness();
    let configs: Vec<KnnConfig> = Distribution::all()
        .iter()
        .map(|&dist| {
            let data = dataset(dist, opts.n_default());
            let qs = queries::knn_queries(&data, RANGE_QUERIES, 7);
            (dist.name().to_string(), data, qs, 25)
        })
        .collect();
    knn_experiment(
        &format!(
            "Figure 14 — kNN query vs data distribution (k = 25, n = {})",
            opts.n_default()
        ),
        "data set",
        &configs,
        &cfg,
        opts,
    );
}

fn fig15(opts: &Opts) {
    let cfg = opts.harness();
    let configs: Vec<KnnConfig> = opts
        .sizes()
        .into_iter()
        .map(|n| {
            let data = dataset(Distribution::skewed_default(), n);
            let qs = queries::knn_queries(&data, RANGE_QUERIES, 7);
            (n.to_string(), data, qs, 25)
        })
        .collect();
    knn_experiment(
        "Figure 15 — kNN query vs data set size (Skewed, k = 25)",
        "n",
        &configs,
        &cfg,
        opts,
    );
}

fn fig16(opts: &Opts) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let qs = queries::knn_queries(&data, RANGE_QUERIES, 7);
    let configs: Vec<KnnConfig> = queries::K_VALUES
        .iter()
        .map(|&k| (k.to_string(), data.clone(), qs.clone(), k))
        .collect();
    knn_experiment(
        &format!(
            "Figure 16 — kNN query vs k (Skewed, n = {})",
            opts.n_default()
        ),
        "k",
        &configs,
        &cfg,
        opts,
    );
}

// ---------------------------------------------------------------------
// Figures 17–19: update handling
// ---------------------------------------------------------------------
fn fig17_18_19(opts: &Opts) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let total_inserts = data.len() / 2;
    let all_inserts = queries::insertion_points(&data, total_inserts, 11);
    let batch = data.len() / 10;

    let mut insert_rows = Vec::new();
    let mut point_rows = Vec::new();
    let mut window_rows = Vec::new();
    let mut knn_rows = Vec::new();

    for kind in opts.kinds(IndexKind::without_rsmia()) {
        let mut built = build_timed(kind, &data, &cfg);
        let mut all_points = data.clone();
        for step in 1..=5usize {
            let slice = &all_inserts[(step - 1) * batch..step * batch];
            let m = measure_insertions(&mut built, slice);
            all_points.extend_from_slice(slice);
            let pct = step * 10;

            insert_rows.push(vec![format!("{pct}%"), m.index.clone(), fmt(m.avg_time_us)]);

            let point_qs = queries::point_queries(&all_points, POINT_QUERIES, 13);
            let pm = measure_point_queries(&built, &point_qs);
            point_rows.push(vec![
                format!("{pct}%"),
                pm.index.clone(),
                fmt(pm.avg_time_us),
                fmt(pm.avg_block_accesses),
            ]);

            let ws = queries::window_queries(&all_points, WindowSpec::default(), RANGE_QUERIES, 17);
            let wm = measure_window_queries(&built, &all_points, &ws);
            window_rows.push(vec![
                format!("{pct}%"),
                wm.index.clone(),
                fmt(wm.avg_time_us / 1000.0),
                fmt(wm.recall),
            ]);

            let knn_qs = queries::knn_queries(&all_points, RANGE_QUERIES, 19);
            let km = measure_knn_queries(&built, &all_points, &knn_qs, 25);
            knn_rows.push(vec![
                format!("{pct}%"),
                km.index.clone(),
                fmt(km.avg_time_us / 1000.0),
                fmt(km.recall),
            ]);
        }
    }

    // RSMIr rows: the same registry-built RSMI, with the trait's `rebuild`
    // maintenance hook invoked after every 10 % batch; insertion time is
    // amortised over the rebuilds.
    if opts.kinds(vec![IndexKind::Rsmi]).contains(&IndexKind::Rsmi) {
        let mut built = build_timed(IndexKind::Rsmi, &data, &cfg);
        let mut all_points = data.clone();
        for step in 1..=5usize {
            let slice = &all_inserts[(step - 1) * batch..step * batch];
            let start = std::time::Instant::now();
            for p in slice {
                built.index.insert(*p);
            }
            built.index.rebuild();
            let amortised = start.elapsed().as_secs_f64() * 1e6 / slice.len() as f64;
            all_points.extend_from_slice(slice);
            let pct = step * 10;
            insert_rows.push(vec![format!("{pct}%"), "RSMIr".to_string(), fmt(amortised)]);

            let point_qs = queries::point_queries(&all_points, POINT_QUERIES, 13);
            let mut cx = QueryContext::new();
            let qstart = std::time::Instant::now();
            let _ = built.index.point_queries(&point_qs, &mut cx);
            let us = qstart.elapsed().as_secs_f64() * 1e6 / point_qs.len() as f64;
            let stats = cx.take_stats();
            let blocks = stats.total_accesses() as f64 / point_qs.len() as f64;
            point_rows.push(vec![
                format!("{pct}%"),
                "RSMIr".to_string(),
                fmt(us),
                fmt(blocks),
            ]);
        }
    }

    println!(
        "{}",
        markdown_table(
            &format!(
                "Figure 17a — insertion time (Skewed, n = {})",
                opts.n_default()
            ),
            &["inserted", "index", "insert time (us)"],
            &insert_rows
        )
    );
    println!(
        "{}",
        markdown_table(
            "Figure 17b — point queries after insertions",
            &["inserted", "index", "query time (us)", "block accesses"],
            &point_rows
        )
    );
    println!(
        "{}",
        markdown_table(
            "Figure 18 — window queries after insertions",
            &["inserted", "index", "query time (ms)", "recall"],
            &window_rows
        )
    );
    println!(
        "{}",
        markdown_table(
            "Figure 19 — kNN queries after insertions",
            &["inserted", "index", "query time (ms)", "recall"],
            &knn_rows
        )
    );
}

// ---------------------------------------------------------------------
// Sharded serving engine (crates/engine)
// ---------------------------------------------------------------------
fn sharded(opts: &Opts) {
    use registry::BaseKind;

    let n = opts.n_default();
    let data = dataset(Distribution::skewed_default(), n);
    let windows = queries::hotspot_window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 3);
    let cfg = opts.harness();

    // `--only` may name either form of a family (`HRR` or `sharded-hrr`);
    // both select the same comparison row.
    let bases: Vec<BaseKind> = BaseKind::all()
        .into_iter()
        .filter(|b| match &opts.only {
            None => true,
            Some(only) => only.contains(&b.unsharded()) || only.contains(&b.sharded()),
        })
        .filter(|b| *b != BaseKind::Rsmia)
        .collect();

    let mut rows = Vec::new();
    for base in bases {
        // Reference: the unsharded family on the same batch workload.
        let flat = build_timed(base.unsharded(), &data, &cfg);
        let mut cx = QueryContext::new();
        let start = std::time::Instant::now();
        let _ = flat.index.window_queries(&windows, &mut cx);
        let flat_ms = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;

        // Sharded composition, same inner family.  One build serves both
        // timings: a sequential per-call loop (the --threads 1 path) and the
        // parallel batch entry point (--threads N).
        let built = build_timed(base.sharded(), &data, &cfg);
        let mut seq_cx = QueryContext::new();
        let start = std::time::Instant::now();
        for w in &windows {
            let _ = built.index.window_query(w, &mut seq_cx);
        }
        let seq_ms = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;
        let stats = seq_cx.take_stats();

        let mut par_cx = QueryContext::new();
        let start = std::time::Instant::now();
        let _ = built.index.window_queries(&windows, &mut par_cx);
        let par_ms = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;

        let per_query = |v: u64| v as f64 / windows.len() as f64;
        rows.push(vec![
            built.kind.name().to_string(),
            fmt(flat_ms),
            fmt(seq_ms),
            fmt(par_ms),
            fmt(seq_ms / par_ms.max(1e-9)),
            fmt(per_query(stats.shards_visited)),
            fmt(per_query(stats.shards_pruned)),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &format!(
                "Sharded serving — hotspot windows (Skewed, n = {n}, S = {}, {} worker threads)",
                opts.shards, opts.threads
            ),
            &[
                "index",
                "unsharded (ms)",
                "sharded 1-thread (ms)",
                &format!("sharded {}-thread (ms)", opts.threads),
                "batch speedup",
                "shards visited/query",
                "shards pruned/query",
            ],
            &rows
        )
    );
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------
fn ablation_rank(opts: &Opts) {
    // Error bounds are internal model diagnostics (see `table4`), so the
    // concrete RSMI type is used here; the query measurement itself goes
    // through the uniform API.
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let mut rows = Vec::new();
    for (label, use_rank) in [("rank-space (paper)", true), ("raw coordinates", false)] {
        let cfg = opts.harness().rsmi_config().with_rank_space(use_rank);
        let index = rsmi::Rsmi::build(data.clone(), cfg);
        let stats = index.stats();
        let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
        let mut cx = QueryContext::new();
        use common::SpatialIndex;
        let _ = index.point_queries(&point_qs, &mut cx);
        let blocks = cx.take_stats().total_accesses() as f64 / point_qs.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("({}, {})", stats.max_err_below, stats.max_err_above),
            fmt(blocks),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            "Ablation — rank-space ordering vs raw-coordinate ordering (Skewed)",
            &[
                "leaf ordering",
                "max (err_l, err_a)",
                "point-query block accesses"
            ],
            &rows
        )
    );
}

fn ablation_curve(opts: &Opts) {
    use sfc::CurveKind;
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let ws = queries::window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 2);
    let mut rows = Vec::new();
    for (label, curve) in [
        ("Hilbert (paper default)", CurveKind::Hilbert),
        ("Z-curve", CurveKind::Z),
    ] {
        let cfg = IndexConfig {
            curve,
            ..opts.harness()
        };
        let built = build_timed(IndexKind::Rsmi, &data, &cfg);
        let m = measure_window_queries(&built, &data, &ws);
        rows.push(vec![
            label.to_string(),
            fmt(m.avg_time_us / 1000.0),
            fmt(m.recall),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            "Ablation — ordering curve for RSMI window queries (Skewed)",
            &["curve", "window query time (ms)", "recall"],
            &rows
        )
    );
}

fn ablation_grouping(opts: &Opts) {
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
    let mut rows = Vec::new();
    for (label, by_prediction) in [
        ("model predictions (paper)", true),
        ("true grid cells", false),
    ] {
        // `group_by_prediction` is an RSMI-internal ablation knob, not a
        // registry parameter; the measurement still goes through the
        // uniform API.
        let cfg = opts
            .harness()
            .rsmi_config()
            .with_group_by_prediction(by_prediction);
        let index = rsmi::Rsmi::build(data.clone(), cfg);
        let mut cx = QueryContext::new();
        use common::SpatialIndex;
        let hits = index
            .point_queries(&point_qs, &mut cx)
            .iter()
            .filter(|a| a.is_some())
            .count();
        rows.push(vec![
            label.to_string(),
            fmt(hits as f64 / point_qs.len() as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            "Ablation — grouping points by model prediction vs true cell (Skewed)",
            &["grouping", "point-query hit rate"],
            &rows
        )
    );
}
