//! Regenerates every table and figure of the paper's evaluation (§6), and
//! drives the persistence subsystem from the command line.
//!
//! Usage:
//!
//! ```text
//! experiments <id> [--scale S] [--epochs E] [--only INDEX[,INDEX...]]
//!                  [--shards N] [--threads N] [--json PATH]
//!                  [--path PATH] [--kind KIND]
//!                  [--readers N] [--write-ratio R] [--queries N]
//!                  [--radius R] [--join-ratio R]
//!                  [--port P] [--addr A] [--connections N] [--duration S]
//!                  [--rate R] [--shutdown-server]
//! experiments all
//! ```
//!
//! where `<id>` is one of `table3`, `table4`, `fig6` … `fig19`,
//! `ablation-rank`, `ablation-curve`, `ablation-grouping`, `sharded`,
//! `range`, `join`, `scan`, `snapshot`, `serve`, `serve-live`,
//! `net-serve`, `net-load`, `net-stats`, `shard-serve`, `route-serve`,
//! or `all`, and
//! `--only` restricts the cross-family figures to the named index families
//! (parsed through the registry, e.g. `--only RSMI,HRR`).  A missing or
//! unknown experiment id, and any flag with a missing, unparsable, or
//! out-of-range value, prints usage and exits with status 2.
//!
//! `range` and `join` measure the distance-predicate query classes across
//! **all 14 registered kinds** (leaf families and their sharded
//! compositions): `range` runs a batch of distance-range queries of
//! `--radius` and verifies every answer against the brute-force oracle;
//! `join` builds a second (inner) index of `--join-ratio` times the data
//! size per kind and runs the index-nested `distance_join`, verifying the
//! pair set against the nested-loop oracle.  Both exit 1 on any oracle
//! divergence, and their JSON summaries (`BENCH_range.json` /
//! `BENCH_join.json` in CI) are the inputs of the perf-regression gate
//! (see the `perf_gate` binary).
//!
//! `scan` is the throughput side of the same gate: it measures
//! window/range/point query **throughput** (queries per second, best of
//! three batches) across all 14 registered kinds at one fixed scale, and
//! verifies the distance-range answers against the brute-force oracle
//! (exact for every family — window and point recall are reported but are
//! legitimately below 1 for the approximate learned families).  Its
//! summary (`BENCH_scan.json` in CI, committed as
//! `ci/BENCH_baseline_scan.json`) feeds `perf_gate --throughput`, which
//! fails CI when any kind's throughput drops below the absolute floor or
//! regresses beyond the tolerance against the baseline — the gate that
//! locks in the struct-of-arrays scan-kernel speedup.
//!
//! `--json PATH` additionally writes the run's tables as a machine-readable
//! JSON summary (hand-rolled writer, no serde) — CI archives it as the
//! repo's perf-trajectory artifact.
//!
//! `sharded` is not a paper figure: it measures the sharded serving engine
//! (`crates/engine`) against the unsharded families — shard fan-out
//! (`shards_visited` / `shards_pruned`) on a hotspot window workload and the
//! wall-clock speedup of the multi-threaded batch executor.  `--shards` and
//! `--threads` parameterise it (defaults 4 and 4).
//!
//! `serve-live` drives the **concurrent serving engine** (`crates/server`):
//! it builds the index selected by `--kind` (default `HRR`) over the
//! scaled data set (default 100k points), then runs `--readers` reader
//! threads (default 8) against one writer thread applying a
//! `--write-ratio` (default 0.1) read/write workload.  Every reader query
//! records the write-sequence number its snapshot observed; after the run
//! the whole interleaving is replayed single-threadedly against a naive
//! `Vec`-scan oracle and **every** answer is compared — any divergence
//! exits 1.  Background compaction must swap at least one epoch while the
//! readers run (readers never block on it; that's the point), and the
//! throughput summary is what CI archives as `BENCH_serve.json`.
//!
//! `net-serve` and `net-load` are the two halves of the **network serving
//! front-end** (`crates/net`).  `net-serve` builds the index selected by
//! `--kind` (default `HRR`) — or warm-starts from a `--path` snapshot —
//! and serves it over the length-prefixed binary wire protocol on
//! `127.0.0.1:--port`, printing the bound address on stdout; it drains and
//! exits 0 on a wire `Shutdown` request or after `--duration` seconds.
//! `net-load` drives `--connections` closed-loop client connections (plus
//! an open-loop pass at `--rate` requests/s per connection when given)
//! through all five query classes and both write kinds, and reports
//! p50/p99 tail latency per class — the `BENCH_net.json` columns CI's
//! perf-regression gate tracks.  `--shutdown-server` sends the graceful
//! shutdown after the run so a scripted server process can be reaped.
//! With `--verify-stats`, net-load additionally scrapes the server's live
//! telemetry (the wire `STATS`/`EVENTS` requests) before, during, and
//! after the run and reconciles the server's per-class request/shed
//! counters against its own counts **exactly** — plus requires at least
//! one background compaction (or epoch swap) in the event journal — and
//! exits 1 on any drift.  `net-stats` is the standalone scraper: it
//! connects to `--addr`, decodes one telemetry snapshot (counters,
//! gauges, latency histograms, lifecycle events) and prints it as tables
//! (or `--json`), optionally sending the graceful shutdown afterwards.
//!
//! `shard-serve` and `route-serve` are the two halves of the
//! **multi-process distributed serving** topology (`crates/router`).
//! `shard-serve` extracts shard `--shard` from the sharded snapshot at
//! `--path` and serves it over the wire protocol on `127.0.0.1:--port` —
//! the unchanged single-process serving loop over one shard's data.
//! `route-serve` loads *only the routing metadata* (partitioner + per-shard
//! MBRs) from the same snapshot and serves the full query surface by
//! scatter/gather over the shard servers listed in `--shard-addrs`
//! (`;`-separated shards, each a `,`-separated replica list).  The router
//! speaks the same wire protocol on both sides, so `net-load`, `net-stats`,
//! and `--shutdown-server` (which propagates a graceful drain to every
//! shard server) work against it unmodified.
//!
//! `snapshot` and `serve` drive persistence end-to-end.  `snapshot` builds
//! the index selected by `--kind` (default `sharded-hrr`), runs the query
//! workload, saves a versioned binary snapshot to `--path`, drops the
//! index, loads it back, and asserts the replayed workload is answer- and
//! stats-identical.  `serve` is the restart side: in a *fresh process* it
//! loads the snapshot from `--path`, rebuilds the same index from scratch
//! (the builds are deterministic), and diffs the two — the CI persistence
//! gate runs the pair as consecutive process invocations.  Both exit 1 on
//! any mismatch.
//!
//! Every index is constructed through the dynamic registry
//! (`registry::build_index`) and measured through the uniform
//! `common::SpatialIndex` API — the binary contains no per-index special
//! casing.  The only concrete-type access is in `table4`/`ablation-rank`,
//! which report *internal model error bounds* of the two learned families,
//! a diagnostic the uniform query API deliberately does not expose.
//!
//! The paper's experiments run on up to 128 million points and train each
//! sub-model for 500 epochs (16 h of training for the largest data set).
//! The harness defaults reproduce the *shape* of every experiment at laptop
//! scale: data sizes are tens of thousands of points and epochs are reduced.
//! `--scale` multiplies all data-set sizes and `--epochs` restores any epoch
//! count, so the experiments can be pushed back toward paper scale on bigger
//! machines.

use bench::{
    build_timed, fmt, measure_insertions, measure_knn_queries, measure_point_queries,
    measure_window_queries, replay_workload, IndexConfig, IndexKind, ReplaySpec, Report,
};
use common::QueryContext;
use datagen::queries::{self, WindowSpec};
use datagen::{generate, Distribution};
use geom::Point;
use registry::BaseKind;
use std::path::PathBuf;

/// One window-experiment configuration: axis label, data set, query windows.
type WindowConfig = (String, Vec<Point>, Vec<geom::Rect>);
/// One kNN-experiment configuration: axis label, data set, query points, k.
type KnnConfig = (String, Vec<Point>, Vec<Point>, usize);

const POINT_QUERIES: usize = 1000;
const RANGE_QUERIES: usize = 100;
/// The scan experiment feeds a throughput *gate*, so its per-round
/// measurement windows must be long enough to dominate timer and scheduler
/// noise: queries run microseconds each, so the gate's batches are several
/// times the latency experiments' (a 100-query round is ~2 ms of wall
/// clock — one scheduler hiccup halves its observed rate).
const SCAN_POINT_QUERIES: usize = 4 * POINT_QUERIES;
const SCAN_RANGE_QUERIES: usize = 10 * RANGE_QUERIES;
/// Best-of-N rounds for the scan gate (the other experiments use 1): the
/// maximum observed rate is the noise-robust estimator on a shared runner.
const SCAN_ROUNDS: usize = 5;
const SEED: u64 = 42;

const USAGE: &str = "\
usage: experiments <id> [flags]

experiment ids:
  table3 table4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
  fig16 fig17 fig18 fig19 ablation-rank ablation-curve ablation-grouping
  sharded range join scan snapshot serve serve-live net-serve net-load
  net-stats shard-serve route-serve all

flags:
  --scale S        multiply all data-set sizes by S (default 1.0)
  --epochs E       training epochs for the learned indices (default 30)
  --only LIST      restrict cross-family experiments to these families,
                   comma-separated (e.g. --only RSMI,HRR)
  --shards N       shard count for the sharded engine (default 4)
  --threads N      worker threads for batch execution (default 4)
  --json PATH      also write the run's tables as a JSON summary
  --path PATH      snapshot file for the snapshot/serve experiments
  --kind KIND      index family for snapshot/serve/serve-live
                   (default sharded-hrr; serve-live defaults to HRR)
  --readers N      reader threads for serve-live (default 8)
  --write-ratio R  write share of the serve-live workload (default 0.1)
  --queries N      queries per reader thread for serve-live (default 500)
  --radius R       query radius for the range/join experiments, as a
                   fraction of the unit data space (default 0.02; must be
                   finite and positive)
  --join-ratio R   inner-index size of the join experiment as a fraction of
                   the data size (default 0.25; must be in (0, 1])
  --port P         net-serve: TCP port to bind on 127.0.0.1 (default 0 =
                   ephemeral; the bound address is printed on stdout)
  --addr A         net-load: server address to connect to
                   (default 127.0.0.1:7878)
  --connections N  net-load: concurrent client connections (default 4)
  --duration S     net-serve: serve for S seconds, then drain and exit 0
                   (default: serve until a wire Shutdown request arrives)
  --rate R         net-load: additionally run an open-loop pass at R
                   requests/s per connection (default 0 = closed loop only)
  --shutdown-server  net-load/net-stats: send a graceful Shutdown to the
                   server after the run (lets CI reap the background
                   process)
  --verify-stats   net-load: scrape live telemetry before/during/after the
                   run and require the server's per-class counters to
                   reconcile exactly with the load generator (exit 1 on
                   drift or if no compaction/epoch-swap event appears)
  --compact-threshold N  net-serve/shard-serve: delta ops that trigger a
                   background compaction (default 1024)
  --shard I        shard-serve: which shard of the --path snapshot to
                   extract and serve (default 0)
  --shard-addrs L  route-serve: shard server addresses — ';' separates
                   shards (in shard order), ',' separates replicas of one
                   shard (e.g. 'h1:7001,h2:7001;h1:7002')";

const KNOWN_EXPERIMENTS: &[&str] = &[
    "table3",
    "table4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "ablation-rank",
    "ablation-curve",
    "ablation-grouping",
    "sharded",
    "range",
    "join",
    "scan",
    "snapshot",
    "serve",
    "serve-live",
    "net-serve",
    "net-load",
    "net-stats",
    "shard-serve",
    "route-serve",
    "all",
];

/// Prints an argument error plus usage and exits with status 2 (the
/// misuse-of-CLI convention); experiment *failures* exit with status 1.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

#[derive(Clone)]
struct Opts {
    scale: f64,
    epochs: usize,
    only: Option<Vec<IndexKind>>,
    shards: usize,
    threads: usize,
    json: Option<PathBuf>,
    path: Option<PathBuf>,
    kind: Option<IndexKind>,
    readers: usize,
    write_ratio: f64,
    queries: usize,
    radius: f64,
    join_ratio: f64,
    port: u16,
    addr: String,
    connections: usize,
    duration: Option<f64>,
    rate: f64,
    shutdown_server: bool,
    verify_stats: bool,
    compact_threshold: Option<usize>,
    shard: usize,
    shard_addrs: Option<String>,
}

impl Opts {
    fn n_default(&self) -> usize {
        (20_000.0 * self.scale) as usize
    }

    fn sizes(&self) -> Vec<usize> {
        [5_000.0, 10_000.0, 20_000.0, 40_000.0]
            .iter()
            .map(|s| (s * self.scale) as usize)
            .collect()
    }

    fn harness(&self) -> IndexConfig {
        IndexConfig {
            block_capacity: 100,
            partition_threshold: 5_000,
            epochs: self.epochs,
            seed: SEED,
            shards: self.shards,
            threads: self.threads,
            ..IndexConfig::default()
        }
    }

    /// The families a cross-family experiment should cover, honouring
    /// `--only`.
    fn kinds(&self, base: Vec<IndexKind>) -> Vec<IndexKind> {
        match &self.only {
            None => base,
            Some(only) => base.into_iter().filter(|k| only.contains(k)).collect(),
        }
    }
}

/// Reads the value of `flag` from the argument stream, exiting with usage
/// on a missing value or a parse failure — flags never fall back silently.
fn flag_value<T: std::str::FromStr>(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> T {
    let Some(raw) = it.next() else {
        usage_error(&format!("{flag} requires a value"));
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => usage_error(&format!("{flag}: cannot parse '{raw}'")),
    }
}

fn parse_args(args: &[String]) -> (String, Opts) {
    let mut opts = Opts {
        scale: 1.0,
        epochs: 30,
        only: None,
        shards: 4,
        threads: 4,
        json: None,
        path: None,
        kind: None,
        readers: 8,
        write_ratio: 0.1,
        queries: 500,
        radius: queries::DEFAULT_RANGE_RADIUS,
        join_ratio: 0.25,
        port: 0,
        addr: "127.0.0.1:7878".to_string(),
        connections: 4,
        duration: None,
        rate: 0.0,
        shutdown_server: false,
        verify_stats: false,
        compact_threshold: None,
        shard: 0,
        shard_addrs: None,
    };
    let mut it = args.iter().peekable();
    let Some(first) = it.next() else {
        usage_error("missing experiment name");
    };
    if first.starts_with("--") {
        usage_error("the experiment name must come before any flags");
    }
    let which = first.clone();
    if !KNOWN_EXPERIMENTS.contains(&which.as_str()) {
        usage_error(&format!("unknown experiment '{which}'"));
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = flag_value(&mut it, "--scale");
                if opts.scale <= 0.0 || !opts.scale.is_finite() {
                    usage_error("--scale must be positive");
                }
            }
            "--epochs" => opts.epochs = flag_value(&mut it, "--epochs"),
            "--shards" => {
                opts.shards = flag_value(&mut it, "--shards");
                if opts.shards == 0 {
                    usage_error("--shards must be positive");
                }
            }
            "--threads" => {
                opts.threads = flag_value(&mut it, "--threads");
                if opts.threads == 0 {
                    usage_error("--threads must be positive");
                }
            }
            "--only" => {
                let Some(spec) = it.next() else {
                    usage_error("--only requires a comma-separated list of index names");
                };
                let kinds: Result<Vec<IndexKind>, String> =
                    spec.split(',').map(str::parse).collect();
                match kinds {
                    Ok(kinds) if !kinds.is_empty() => opts.only = Some(kinds),
                    Ok(_) => usage_error("--only expects at least one index name"),
                    Err(e) => usage_error(&format!("--only: {e}")),
                }
            }
            "--json" => opts.json = Some(PathBuf::from(flag_value::<String>(&mut it, "--json"))),
            "--path" => opts.path = Some(PathBuf::from(flag_value::<String>(&mut it, "--path"))),
            "--kind" => opts.kind = Some(flag_value(&mut it, "--kind")),
            "--readers" => {
                opts.readers = flag_value(&mut it, "--readers");
                if opts.readers == 0 {
                    usage_error("--readers must be positive");
                }
            }
            "--write-ratio" => {
                opts.write_ratio = flag_value(&mut it, "--write-ratio");
                if !(0.0..1.0).contains(&opts.write_ratio) {
                    usage_error("--write-ratio must be in [0, 1)");
                }
            }
            "--queries" => {
                opts.queries = flag_value(&mut it, "--queries");
                if opts.queries == 0 {
                    usage_error("--queries must be positive");
                }
            }
            "--radius" => {
                opts.radius = flag_value(&mut it, "--radius");
                if !opts.radius.is_finite() || opts.radius <= 0.0 {
                    usage_error("--radius must be finite and positive");
                }
            }
            "--join-ratio" => {
                opts.join_ratio = flag_value(&mut it, "--join-ratio");
                if !opts.join_ratio.is_finite() || opts.join_ratio <= 0.0 || opts.join_ratio > 1.0 {
                    usage_error("--join-ratio must be in (0, 1]");
                }
            }
            "--port" => opts.port = flag_value(&mut it, "--port"),
            "--addr" => {
                opts.addr = flag_value(&mut it, "--addr");
                if !opts.addr.contains(':') {
                    usage_error("--addr must be host:port");
                }
            }
            "--connections" => {
                opts.connections = flag_value(&mut it, "--connections");
                if opts.connections == 0 {
                    usage_error("--connections must be positive");
                }
            }
            "--duration" => {
                let d: f64 = flag_value(&mut it, "--duration");
                if !d.is_finite() || d <= 0.0 {
                    usage_error("--duration must be finite and positive");
                }
                opts.duration = Some(d);
            }
            "--rate" => {
                opts.rate = flag_value(&mut it, "--rate");
                if !opts.rate.is_finite() || opts.rate < 0.0 {
                    usage_error("--rate must be finite and non-negative");
                }
            }
            "--shutdown-server" => opts.shutdown_server = true,
            "--verify-stats" => opts.verify_stats = true,
            "--compact-threshold" => {
                let t: usize = flag_value(&mut it, "--compact-threshold");
                if t == 0 {
                    usage_error("--compact-threshold must be positive");
                }
                opts.compact_threshold = Some(t);
            }
            "--shard" => opts.shard = flag_value(&mut it, "--shard"),
            "--shard-addrs" => {
                let spec: String = flag_value(&mut it, "--shard-addrs");
                if spec
                    .split(';')
                    .any(|shard| shard.split(',').any(|addr| !addr.contains(':')))
                {
                    usage_error("--shard-addrs entries must be host:port");
                }
                opts.shard_addrs = Some(spec);
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
    }
    (which, opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (which, opts) = parse_args(&args);

    println!("# RSMI reproduction experiments");
    println!(
        "\n_scale = {} (default data set = {} points), epochs = {}, B = 100_\n",
        opts.scale,
        opts.n_default(),
        opts.epochs
    );

    let mut report = Report::new();
    report.meta("experiment", &which);
    report.meta("scale", opts.scale);
    report.meta("epochs", opts.epochs);
    report.meta("shards", opts.shards);
    report.meta("threads", opts.threads);
    report.meta("seed", SEED);
    report.meta("radius", opts.radius);
    report.meta("join_ratio", opts.join_ratio);
    // The kind the run measured: explicit --kind, or the experiment's own
    // default for the single-kind experiments, or "all" for the
    // cross-family figures — the bench-summary artifact must be
    // self-describing.
    let effective_kind =
        opts.kind
            .map(|k| k.name().to_string())
            .unwrap_or_else(|| match which.as_str() {
                "snapshot" | "serve" => snapshot_kind(&opts).name().to_string(),
                "serve-live" => serve_live_kind(&opts).name().to_string(),
                "net-serve" => net_serve_kind(&opts).name().to_string(),
                // net-load/net-stats are pure clients; the served kind
                // lives in the net-serve run's own summary.
                "net-load" | "net-stats" => "remote".to_string(),
                // shard-serve/route-serve take their kind from the
                // snapshot header at runtime.
                "shard-serve" => "snapshot-shard".to_string(),
                "route-serve" => "router".to_string(),
                _ => "all".to_string(),
            });
    report.meta("kind", effective_kind);

    let all = which == "all";
    let run = |name: &str| all || which == name;
    // Set by the verified experiments (snapshot/serve/serve-live and the
    // range/join oracle checks); a mismatch fails the run after the JSON
    // summary is written.
    let mut failed = false;

    if run("table3") {
        table3(&opts, &mut report);
    }
    if run("table4") {
        table4(&opts, &mut report);
    }
    if run("fig6") || run("fig7") {
        fig6_7(&opts, &mut report);
    }
    if run("fig8") || run("fig9") {
        fig8_9(&opts, &mut report);
    }
    if run("fig10") {
        fig10(&opts, &mut report);
    }
    if run("fig11") {
        fig11(&opts, &mut report);
    }
    if run("fig12") {
        fig12(&opts, &mut report);
    }
    if run("fig13") {
        fig13(&opts, &mut report);
    }
    if run("fig14") {
        fig14(&opts, &mut report);
    }
    if run("fig15") {
        fig15(&opts, &mut report);
    }
    if run("fig16") {
        fig16(&opts, &mut report);
    }
    if run("fig17") || run("fig18") || run("fig19") {
        fig17_18_19(&opts, &mut report);
    }
    if run("sharded") {
        sharded(&opts, &mut report);
    }
    if run("range") {
        failed |= !range_experiment(&opts, &mut report);
    }
    if run("join") {
        failed |= !join_experiment(&opts, &mut report);
    }
    if run("scan") {
        failed |= !scan_experiment(&opts, &mut report);
    }
    if which == "snapshot" {
        failed |= !snapshot_experiment(&opts, &mut report);
    }
    if which == "serve" {
        failed |= !serve_experiment(&opts, &mut report);
    }
    if which == "serve-live" {
        failed |= !serve_live(&opts, &mut report);
    }
    if which == "net-serve" {
        failed |= !net_serve(&opts, &mut report);
    }
    if which == "net-load" {
        failed |= !net_load(&opts, &mut report);
    }
    if which == "net-stats" {
        failed |= !net_stats(&opts, &mut report);
    }
    if which == "shard-serve" {
        failed |= !shard_serve(&opts, &mut report);
    }
    if which == "route-serve" {
        failed |= !route_serve(&opts, &mut report);
    }
    if run("ablation-rank") {
        ablation_rank(&opts, &mut report);
    }
    if run("ablation-curve") {
        ablation_curve(&opts, &mut report);
    }
    if run("ablation-grouping") {
        ablation_grouping(&opts, &mut report);
    }

    if let Some(json_path) = &opts.json {
        if let Err(e) = report.write_json(json_path) {
            eprintln!(
                "failed to write JSON summary to {}: {e}",
                json_path.display()
            );
            std::process::exit(1);
        }
        println!("_JSON summary written to {}_", json_path.display());
    }
    if failed {
        std::process::exit(1);
    }
}

fn dataset(dist: Distribution, n: usize) -> Vec<Point> {
    generate(dist, n, SEED)
}

// ---------------------------------------------------------------------
// Table 3: impact of the partition threshold N
// ---------------------------------------------------------------------
fn table3(opts: &Opts, report: &mut Report) {
    let n = (50_000.0 * opts.scale) as usize;
    let data = dataset(Distribution::skewed_default(), n);
    let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
    let thresholds = [1_000usize, 2_500, 5_000, 10_000, 20_000];
    let mut rows = Vec::new();
    for &threshold in &thresholds {
        let cfg = opts.harness().with_partition_threshold(threshold);
        let built = build_timed(IndexKind::Rsmi, &data, &cfg);
        let m = measure_point_queries(&built, &point_qs);
        rows.push(vec![
            threshold.to_string(),
            fmt(built.build_seconds),
            built.index.height().to_string(),
            fmt(built.index.size_bytes() as f64 / (1024.0 * 1024.0)),
            fmt(m.avg_block_accesses),
            fmt(m.avg_time_us),
        ]);
    }
    report.table(
        &format!("Table 3 — impact of partition threshold N (Skewed, n = {n})"),
        &[
            "N",
            "construction (s)",
            "height",
            "index size (MB)",
            "point-query block accesses",
            "point-query time (us)",
        ],
        rows,
    );
}

// ---------------------------------------------------------------------
// Table 4: prediction error bounds of ZM and RSMI
// ---------------------------------------------------------------------
fn table4(opts: &Opts, report: &mut Report) {
    // Error bounds are internal model diagnostics, not part of the uniform
    // query API, so this table uses the concrete learned types directly.
    let cfg = opts.harness();
    let mut rows = Vec::new();
    for dist in Distribution::all() {
        let data = dataset(dist, opts.n_default());
        let rsmi = rsmi::Rsmi::build(data.clone(), cfg.rsmi_config());
        let stats = rsmi.stats();
        let zm = baselines::ZOrderModel::build(data, cfg.zm_config());
        let (zb, za) = zm.error_bounds_blocks();
        rows.push(vec![
            dist.name().to_string(),
            format!("({zb}, {za})"),
            format!("({}, {})", stats.max_err_below, stats.max_err_above),
        ]);
    }
    report.table(
        &format!(
            "Table 4 — prediction error bounds in blocks (err_l, err_a), n = {}",
            opts.n_default()
        ),
        &["data set", "ZM", "RSMI"],
        rows,
    );
}

// ---------------------------------------------------------------------
// Figures 6 & 7: point queries, index size, construction time vs distribution
// ---------------------------------------------------------------------
fn fig6_7(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let mut q_rows = Vec::new();
    let mut s_rows = Vec::new();
    for dist in Distribution::all() {
        let data = dataset(dist, opts.n_default());
        let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
        for kind in opts.kinds(IndexKind::without_rsmia()) {
            let built = build_timed(kind, &data, &cfg);
            let m = measure_point_queries(&built, &point_qs);
            q_rows.push(vec![
                dist.name().to_string(),
                m.index.clone(),
                fmt(m.avg_time_us),
                fmt(m.avg_block_accesses),
            ]);
            s_rows.push(vec![
                dist.name().to_string(),
                built.kind.name().to_string(),
                fmt(built.index.size_bytes() as f64 / (1024.0 * 1024.0)),
                fmt(built.build_seconds),
            ]);
        }
    }
    report.table(
        &format!(
            "Figure 6 — point query vs data distribution (n = {})",
            opts.n_default()
        ),
        &["data set", "index", "query time (us)", "block accesses"],
        q_rows,
    );
    report.table(
        &format!(
            "Figure 7 — index size and construction time vs data distribution (n = {})",
            opts.n_default()
        ),
        &["data set", "index", "size (MB)", "construction (s)"],
        s_rows,
    );
}

// ---------------------------------------------------------------------
// Figures 8 & 9: point queries, size, construction vs data-set size
// ---------------------------------------------------------------------
fn fig8_9(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let mut q_rows = Vec::new();
    let mut s_rows = Vec::new();
    for n in opts.sizes() {
        let data = dataset(Distribution::skewed_default(), n);
        let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
        for kind in opts.kinds(IndexKind::without_rsmia()) {
            let built = build_timed(kind, &data, &cfg);
            let m = measure_point_queries(&built, &point_qs);
            q_rows.push(vec![
                n.to_string(),
                m.index.clone(),
                fmt(m.avg_time_us),
                fmt(m.avg_block_accesses),
            ]);
            s_rows.push(vec![
                n.to_string(),
                built.kind.name().to_string(),
                fmt(built.index.size_bytes() as f64 / (1024.0 * 1024.0)),
                fmt(built.build_seconds),
            ]);
        }
    }
    report.table(
        "Figure 8 — point query vs data set size (Skewed)",
        &["n", "index", "query time (us)", "block accesses"],
        q_rows,
    );
    report.table(
        "Figure 9 — index size and construction time vs data set size (Skewed)",
        &["n", "index", "size (MB)", "construction (s)"],
        s_rows,
    );
}

// ---------------------------------------------------------------------
// Window-query figures
// ---------------------------------------------------------------------
fn window_experiment(
    title: &str,
    axis: &str,
    configs: &[WindowConfig],
    cfg: &IndexConfig,
    opts: &Opts,
    report: &mut Report,
) {
    let mut rows = Vec::new();
    for (label, data, windows) in configs {
        for kind in opts.kinds(IndexKind::all()) {
            let built = build_timed(kind, data, cfg);
            let m = measure_window_queries(&built, data, windows);
            rows.push(vec![
                label.clone(),
                m.index.clone(),
                fmt(m.avg_time_us / 1000.0),
                fmt(m.recall),
            ]);
        }
    }
    report.table(title, &[axis, "index", "query time (ms)", "recall"], rows);
}

fn fig10(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let configs: Vec<WindowConfig> = Distribution::all()
        .iter()
        .map(|&dist| {
            let data = dataset(dist, opts.n_default());
            let ws = queries::window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 2);
            (dist.name().to_string(), data, ws)
        })
        .collect();
    window_experiment(
        &format!(
            "Figure 10 — window query vs data distribution (n = {}, 0.01% windows)",
            opts.n_default()
        ),
        "data set",
        &configs,
        &cfg,
        opts,
        report,
    );
}

fn fig11(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let configs: Vec<WindowConfig> = opts
        .sizes()
        .into_iter()
        .map(|n| {
            let data = dataset(Distribution::skewed_default(), n);
            let ws = queries::window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 2);
            (n.to_string(), data, ws)
        })
        .collect();
    window_experiment(
        "Figure 11 — window query vs data set size (Skewed)",
        "n",
        &configs,
        &cfg,
        opts,
        report,
    );
}

fn fig12(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let configs: Vec<WindowConfig> = queries::WINDOW_SIZE_PERCENTS
        .iter()
        .map(|&pct| {
            let spec = WindowSpec {
                area_percent: pct,
                aspect_ratio: 1.0,
            };
            let ws = queries::window_queries(&data, spec, RANGE_QUERIES, 3);
            (format!("{pct}%"), data.clone(), ws)
        })
        .collect();
    window_experiment(
        &format!(
            "Figure 12 — window query vs query window size (Skewed, n = {})",
            opts.n_default()
        ),
        "window size",
        &configs,
        &cfg,
        opts,
        report,
    );
}

fn fig13(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let configs: Vec<WindowConfig> = queries::ASPECT_RATIOS
        .iter()
        .map(|&ratio| {
            let spec = WindowSpec {
                area_percent: 0.01,
                aspect_ratio: ratio,
            };
            let ws = queries::window_queries(&data, spec, RANGE_QUERIES, 5);
            (format!("{ratio}"), data.clone(), ws)
        })
        .collect();
    window_experiment(
        &format!(
            "Figure 13 — window query vs aspect ratio (Skewed, n = {})",
            opts.n_default()
        ),
        "aspect ratio",
        &configs,
        &cfg,
        opts,
        report,
    );
}

// ---------------------------------------------------------------------
// kNN figures
// ---------------------------------------------------------------------
fn knn_experiment(
    title: &str,
    axis: &str,
    configs: &[KnnConfig],
    cfg: &IndexConfig,
    opts: &Opts,
    report: &mut Report,
) {
    let mut rows = Vec::new();
    for (label, data, qs, k) in configs {
        for kind in opts.kinds(IndexKind::all()) {
            let built = build_timed(kind, data, cfg);
            let m = measure_knn_queries(&built, data, qs, *k);
            rows.push(vec![
                label.clone(),
                m.index.clone(),
                fmt(m.avg_time_us / 1000.0),
                fmt(m.recall),
            ]);
        }
    }
    report.table(title, &[axis, "index", "query time (ms)", "recall"], rows);
}

fn fig14(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let configs: Vec<KnnConfig> = Distribution::all()
        .iter()
        .map(|&dist| {
            let data = dataset(dist, opts.n_default());
            let qs = queries::knn_queries(&data, RANGE_QUERIES, 7);
            (dist.name().to_string(), data, qs, 25)
        })
        .collect();
    knn_experiment(
        &format!(
            "Figure 14 — kNN query vs data distribution (k = 25, n = {})",
            opts.n_default()
        ),
        "data set",
        &configs,
        &cfg,
        opts,
        report,
    );
}

fn fig15(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let configs: Vec<KnnConfig> = opts
        .sizes()
        .into_iter()
        .map(|n| {
            let data = dataset(Distribution::skewed_default(), n);
            let qs = queries::knn_queries(&data, RANGE_QUERIES, 7);
            (n.to_string(), data, qs, 25)
        })
        .collect();
    knn_experiment(
        "Figure 15 — kNN query vs data set size (Skewed, k = 25)",
        "n",
        &configs,
        &cfg,
        opts,
        report,
    );
}

fn fig16(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let qs = queries::knn_queries(&data, RANGE_QUERIES, 7);
    let configs: Vec<KnnConfig> = queries::K_VALUES
        .iter()
        .map(|&k| (k.to_string(), data.clone(), qs.clone(), k))
        .collect();
    knn_experiment(
        &format!(
            "Figure 16 — kNN query vs k (Skewed, n = {})",
            opts.n_default()
        ),
        "k",
        &configs,
        &cfg,
        opts,
        report,
    );
}

// ---------------------------------------------------------------------
// Figures 17–19: update handling
// ---------------------------------------------------------------------
fn fig17_18_19(opts: &Opts, report: &mut Report) {
    let cfg = opts.harness();
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let total_inserts = data.len() / 2;
    let all_inserts = queries::insertion_points(&data, total_inserts, 11);
    let batch = data.len() / 10;

    let mut insert_rows = Vec::new();
    let mut point_rows = Vec::new();
    let mut window_rows = Vec::new();
    let mut knn_rows = Vec::new();

    for kind in opts.kinds(IndexKind::without_rsmia()) {
        let mut built = build_timed(kind, &data, &cfg);
        let mut all_points = data.clone();
        for step in 1..=5usize {
            let slice = &all_inserts[(step - 1) * batch..step * batch];
            let m = measure_insertions(&mut built, slice);
            all_points.extend_from_slice(slice);
            let pct = step * 10;

            insert_rows.push(vec![format!("{pct}%"), m.index.clone(), fmt(m.avg_time_us)]);

            let point_qs = queries::point_queries(&all_points, POINT_QUERIES, 13);
            let pm = measure_point_queries(&built, &point_qs);
            point_rows.push(vec![
                format!("{pct}%"),
                pm.index.clone(),
                fmt(pm.avg_time_us),
                fmt(pm.avg_block_accesses),
            ]);

            let ws = queries::window_queries(&all_points, WindowSpec::default(), RANGE_QUERIES, 17);
            let wm = measure_window_queries(&built, &all_points, &ws);
            window_rows.push(vec![
                format!("{pct}%"),
                wm.index.clone(),
                fmt(wm.avg_time_us / 1000.0),
                fmt(wm.recall),
            ]);

            let knn_qs = queries::knn_queries(&all_points, RANGE_QUERIES, 19);
            let km = measure_knn_queries(&built, &all_points, &knn_qs, 25);
            knn_rows.push(vec![
                format!("{pct}%"),
                km.index.clone(),
                fmt(km.avg_time_us / 1000.0),
                fmt(km.recall),
            ]);
        }
    }

    // RSMIr rows: the same registry-built RSMI, with the trait's `rebuild`
    // maintenance hook invoked after every 10 % batch; insertion time is
    // amortised over the rebuilds.
    if opts.kinds(vec![IndexKind::Rsmi]).contains(&IndexKind::Rsmi) {
        let mut built = build_timed(IndexKind::Rsmi, &data, &cfg);
        let mut all_points = data.clone();
        for step in 1..=5usize {
            let slice = &all_inserts[(step - 1) * batch..step * batch];
            let start = std::time::Instant::now();
            for p in slice {
                built.index.insert(*p);
            }
            built.index.rebuild();
            let amortised = start.elapsed().as_secs_f64() * 1e6 / slice.len() as f64;
            all_points.extend_from_slice(slice);
            let pct = step * 10;
            insert_rows.push(vec![format!("{pct}%"), "RSMIr".to_string(), fmt(amortised)]);

            let point_qs = queries::point_queries(&all_points, POINT_QUERIES, 13);
            let mut cx = QueryContext::new();
            let qstart = std::time::Instant::now();
            let _ = built.index.point_queries(&point_qs, &mut cx);
            let us = qstart.elapsed().as_secs_f64() * 1e6 / point_qs.len() as f64;
            let stats = cx.take_stats();
            let blocks = stats.total_accesses() as f64 / point_qs.len() as f64;
            point_rows.push(vec![
                format!("{pct}%"),
                "RSMIr".to_string(),
                fmt(us),
                fmt(blocks),
            ]);
        }
    }

    report.table(
        &format!(
            "Figure 17a — insertion time (Skewed, n = {})",
            opts.n_default()
        ),
        &["inserted", "index", "insert time (us)"],
        insert_rows,
    );
    report.table(
        "Figure 17b — point queries after insertions",
        &["inserted", "index", "query time (us)", "block accesses"],
        point_rows,
    );
    report.table(
        "Figure 18 — window queries after insertions",
        &["inserted", "index", "query time (ms)", "recall"],
        window_rows,
    );
    report.table(
        "Figure 19 — kNN queries after insertions",
        &["inserted", "index", "query time (ms)", "recall"],
        knn_rows,
    );
}

// ---------------------------------------------------------------------
// Sharded serving engine (crates/engine)
// ---------------------------------------------------------------------
fn sharded(opts: &Opts, report: &mut Report) {
    let n = opts.n_default();
    let data = dataset(Distribution::skewed_default(), n);
    let windows = queries::hotspot_window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 3);
    let cfg = opts.harness();

    // `--only` may name either form of a family (`HRR` or `sharded-hrr`);
    // both select the same comparison row.
    let bases: Vec<BaseKind> = BaseKind::all()
        .into_iter()
        .filter(|b| match &opts.only {
            None => true,
            Some(only) => only.contains(&b.unsharded()) || only.contains(&b.sharded()),
        })
        .filter(|b| *b != BaseKind::Rsmia)
        .collect();

    let mut rows = Vec::new();
    for base in bases {
        // Reference: the unsharded family on the same batch workload.
        let flat = build_timed(base.unsharded(), &data, &cfg);
        let mut cx = QueryContext::new();
        let start = std::time::Instant::now();
        let _ = flat.index.window_queries(&windows, &mut cx);
        let flat_ms = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;

        // Sharded composition, same inner family.  One build serves both
        // timings: a sequential per-call loop (the --threads 1 path) and the
        // parallel batch entry point (--threads N).
        let built = build_timed(base.sharded(), &data, &cfg);
        let mut seq_cx = QueryContext::new();
        let start = std::time::Instant::now();
        for w in &windows {
            let _ = built.index.window_query(w, &mut seq_cx);
        }
        let seq_ms = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;
        let stats = seq_cx.take_stats();

        let mut par_cx = QueryContext::new();
        let start = std::time::Instant::now();
        let _ = built.index.window_queries(&windows, &mut par_cx);
        let par_ms = start.elapsed().as_secs_f64() * 1e3 / windows.len() as f64;

        let per_query = |v: u64| v as f64 / windows.len() as f64;
        rows.push(vec![
            built.kind.name().to_string(),
            fmt(flat_ms),
            fmt(seq_ms),
            fmt(par_ms),
            fmt(seq_ms / par_ms.max(1e-9)),
            fmt(per_query(stats.shards_visited)),
            fmt(per_query(stats.shards_pruned)),
        ]);
    }
    report.table(
        &format!(
            "Sharded serving — hotspot windows (Skewed, n = {n}, S = {}, {} worker threads)",
            opts.shards, opts.threads
        ),
        &[
            "index",
            "unsharded (ms)",
            "sharded 1-thread (ms)",
            &format!("sharded {}-thread (ms)", opts.threads),
            "batch speedup",
            "shards visited/query",
            "shards pruned/query",
        ],
        rows,
    );
}

// ---------------------------------------------------------------------
// Distance-range and distance-join experiments (all 14 registered kinds)
// ---------------------------------------------------------------------

/// `range`: a batch of distance-range queries per kind, every answer
/// verified against the brute-force oracle (distance-range queries are
/// exact for every family).  Returns whether every kind verified.
fn range_experiment(opts: &Opts, report: &mut Report) -> bool {
    use bench::measure_range_queries;
    let n = opts.n_default();
    let data = dataset(Distribution::skewed_default(), n);
    let centers = queries::range_query_centers(&data, RANGE_QUERIES, 23);
    let cfg = opts.harness();
    let mut verified = true;
    let mut rows = Vec::new();
    for kind in opts.kinds(IndexKind::all_with_sharded()) {
        let built = build_timed(kind, &data, &cfg);
        // Best-of-3 timing: the perf gate compares these latencies across
        // runs (and runner machines), so the minimum — the classic
        // noise-robust estimator — is reported, while every repetition's
        // answers are still oracle-verified.
        let mut m = measure_range_queries(&built, &data, &centers, opts.radius);
        for _ in 0..2 {
            let again = measure_range_queries(&built, &data, &centers, opts.radius);
            if again.recall < m.recall {
                m.recall = again.recall;
            }
            if again.avg_time_us < m.avg_time_us {
                m.avg_time_us = again.avg_time_us;
            }
        }
        if m.recall < 1.0 {
            verified = false;
            eprintln!(
                "range experiment FAILED: {} recall {} against the oracle",
                kind.name(),
                m.recall
            );
        }
        rows.push(vec![
            m.index.clone(),
            fmt(m.avg_time_us),
            fmt(m.avg_block_accesses),
            fmt(m.avg_candidates),
            fmt(m.recall),
        ]);
    }
    report.table(
        &format!(
            "Distance-range queries — r = {} (Skewed, n = {n}, {} queries)",
            opts.radius, RANGE_QUERIES
        ),
        &[
            "index",
            "query time (us)",
            "block accesses",
            "candidates",
            "oracle recall",
        ],
        rows,
    );
    verified
}

/// `join`: the index-nested distance join per kind — outer index over the
/// data set, inner index of `--join-ratio` times its size built from the
/// same kind — with the pair set verified against the nested-loop oracle.
/// Returns whether every kind verified.
fn join_experiment(opts: &Opts, report: &mut Report) -> bool {
    use bench::measure_distance_join;
    let n = opts.n_default();
    let data = dataset(Distribution::skewed_default(), n);
    let inner_n = ((n as f64 * opts.join_ratio) as usize).max(1);
    let inner = queries::join_points(&data, inner_n, 29);
    let cfg = opts.harness();
    let mut verified = true;
    let mut rows = Vec::new();
    for kind in opts.kinds(IndexKind::all_with_sharded()) {
        let built = build_timed(kind, &data, &cfg);
        let other = bench::build_index(kind, &inner, &cfg);
        // Best-of-3 timing for the perf gate (see `range_experiment`); every
        // repetition's pair set is still oracle-verified.
        let mut jm = measure_distance_join(&built, &data, other.as_ref(), &inner, opts.radius);
        for _ in 0..2 {
            let again = measure_distance_join(&built, &data, other.as_ref(), &inner, opts.radius);
            if again.measurement.recall < jm.measurement.recall {
                jm.measurement.recall = again.measurement.recall;
            }
            if again.measurement.avg_time_us < jm.measurement.avg_time_us {
                jm.measurement.avg_time_us = again.measurement.avg_time_us;
            }
        }
        if jm.measurement.recall < 1.0 {
            verified = false;
            eprintln!(
                "join experiment FAILED: {} pair set diverged from the oracle (recall {})",
                kind.name(),
                jm.measurement.recall
            );
        }
        rows.push(vec![
            jm.measurement.index.clone(),
            fmt(jm.measurement.avg_time_us / 1000.0),
            jm.pairs.to_string(),
            fmt(jm.measurement.avg_block_accesses),
            if jm.measurement.recall >= 1.0 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    report.table(
        &format!(
            "Distance join — r = {} (Skewed, outer n = {n}, inner n = {inner_n})",
            opts.radius
        ),
        &[
            "index",
            "join time (ms)",
            "pairs",
            "block accesses",
            "oracle match",
        ],
        rows,
    );
    verified
}

/// `scan`: window/range/point query **throughput** (queries per second)
/// per kind at one fixed scale — the input of the CI throughput floor
/// (`perf_gate --throughput`).  Best-of-3 batches per class; the
/// distance-range answers are oracle-verified (exact for every family)
/// and any recall below 1 fails the run.  Window and point recall are
/// reported but not gated: the approximate learned families legitimately
/// miss there (a paper property, not a bug).  Returns whether every kind
/// verified.
fn scan_experiment(opts: &Opts, report: &mut Report) -> bool {
    use bench::measure_range_queries;
    let n = opts.n_default();
    let data = dataset(Distribution::skewed_default(), n);
    let windows = queries::window_queries(&data, WindowSpec::default(), SCAN_RANGE_QUERIES, 37);
    let centers = queries::range_query_centers(&data, SCAN_RANGE_QUERIES, 23);
    let point_qs = queries::point_queries(&data, SCAN_POINT_QUERIES, 31);
    let cfg = opts.harness();
    // Throughput from a best-of-SCAN_ROUNDS per-query latency: the maximum
    // observed rate is the noise-robust estimator, mirroring the
    // minimum-latency convention of the range/join experiments.
    let throughput = |avg_time_us: f64| {
        if avg_time_us > 0.0 {
            1e6 / avg_time_us
        } else {
            0.0
        }
    };
    let mut verified = true;
    let mut rows = Vec::new();
    for kind in opts.kinds(IndexKind::all_with_sharded()) {
        let built = build_timed(kind, &data, &cfg);
        let mut wm = measure_window_queries(&built, &data, &windows);
        let mut rm = measure_range_queries(&built, &data, &centers, opts.radius);
        let mut pm = measure_point_queries(&built, &point_qs);
        for _ in 1..SCAN_ROUNDS {
            let again = measure_window_queries(&built, &data, &windows);
            wm.avg_time_us = wm.avg_time_us.min(again.avg_time_us);
            wm.recall = wm.recall.min(again.recall);
            let again = measure_range_queries(&built, &data, &centers, opts.radius);
            rm.avg_time_us = rm.avg_time_us.min(again.avg_time_us);
            rm.recall = rm.recall.min(again.recall);
            let again = measure_point_queries(&built, &point_qs);
            pm.avg_time_us = pm.avg_time_us.min(again.avg_time_us);
            pm.recall = pm.recall.min(again.recall);
        }
        if rm.recall < 1.0 {
            verified = false;
            eprintln!(
                "scan experiment FAILED: {} range recall {} against the oracle",
                kind.name(),
                rm.recall
            );
        }
        rows.push(vec![
            wm.index.clone(),
            fmt(throughput(wm.avg_time_us)),
            fmt(throughput(rm.avg_time_us)),
            fmt(throughput(pm.avg_time_us)),
            fmt(wm.recall),
            fmt(rm.recall),
            fmt(pm.recall),
        ]);
    }
    // Column names deliberately say "throughput", never "time": the
    // latency side of the perf gate keys on "time" columns and must not
    // see these higher-is-better numbers, while `perf_gate --throughput`
    // keys on "throughput" columns.
    report.table(
        &format!(
            "Scan throughput — window/range/point (Skewed, n = {n}, \
             {SCAN_RANGE_QUERIES} windows, {SCAN_RANGE_QUERIES} ranges at r = {}, \
             {SCAN_POINT_QUERIES} points)",
            opts.radius
        ),
        &[
            "index",
            "window throughput (q/s)",
            "range throughput (q/s)",
            "point throughput (q/s)",
            "window recall",
            "range recall",
            "point recall",
        ],
        rows,
    );
    verified
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------
fn ablation_rank(opts: &Opts, report: &mut Report) {
    // Error bounds are internal model diagnostics (see `table4`), so the
    // concrete RSMI type is used here; the query measurement itself goes
    // through the uniform API.
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let mut rows = Vec::new();
    for (label, use_rank) in [("rank-space (paper)", true), ("raw coordinates", false)] {
        let cfg = opts.harness().rsmi_config().with_rank_space(use_rank);
        let index = rsmi::Rsmi::build(data.clone(), cfg);
        let stats = index.stats();
        let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
        let mut cx = QueryContext::new();
        use common::SpatialIndex;
        let _ = index.point_queries(&point_qs, &mut cx);
        let blocks = cx.take_stats().total_accesses() as f64 / point_qs.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("({}, {})", stats.max_err_below, stats.max_err_above),
            fmt(blocks),
        ]);
    }
    report.table(
        "Ablation — rank-space ordering vs raw-coordinate ordering (Skewed)",
        &[
            "leaf ordering",
            "max (err_l, err_a)",
            "point-query block accesses",
        ],
        rows,
    );
}

fn ablation_curve(opts: &Opts, report: &mut Report) {
    use sfc::CurveKind;
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let ws = queries::window_queries(&data, WindowSpec::default(), RANGE_QUERIES, 2);
    let mut rows = Vec::new();
    for (label, curve) in [
        ("Hilbert (paper default)", CurveKind::Hilbert),
        ("Z-curve", CurveKind::Z),
    ] {
        let cfg = IndexConfig {
            curve,
            ..opts.harness()
        };
        let built = build_timed(IndexKind::Rsmi, &data, &cfg);
        let m = measure_window_queries(&built, &data, &ws);
        rows.push(vec![
            label.to_string(),
            fmt(m.avg_time_us / 1000.0),
            fmt(m.recall),
        ]);
    }
    report.table(
        "Ablation — ordering curve for RSMI window queries (Skewed)",
        &["curve", "window query time (ms)", "recall"],
        rows,
    );
}

fn ablation_grouping(opts: &Opts, report: &mut Report) {
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let point_qs = queries::point_queries(&data, POINT_QUERIES, 1);
    let mut rows = Vec::new();
    for (label, by_prediction) in [
        ("model predictions (paper)", true),
        ("true grid cells", false),
    ] {
        // `group_by_prediction` is an RSMI-internal ablation knob, not a
        // registry parameter; the measurement still goes through the
        // uniform API.
        let cfg = opts
            .harness()
            .rsmi_config()
            .with_group_by_prediction(by_prediction);
        let index = rsmi::Rsmi::build(data.clone(), cfg);
        let mut cx = QueryContext::new();
        use common::SpatialIndex;
        let hits = index
            .point_queries(&point_qs, &mut cx)
            .iter()
            .filter(|a| a.is_some())
            .count();
        rows.push(vec![
            label.to_string(),
            fmt(hits as f64 / point_qs.len() as f64),
        ]);
    }
    report.table(
        "Ablation — grouping points by model prediction vs true cell (Skewed)",
        &["grouping", "point-query hit rate"],
        rows,
    );
}

// ---------------------------------------------------------------------
// Persistence: the snapshot / serve pair (build-once, restart-fast)
// ---------------------------------------------------------------------

fn snapshot_kind(opts: &Opts) -> IndexKind {
    opts.kind.unwrap_or_else(|| BaseKind::Hrr.sharded())
}

fn snapshot_path(opts: &Opts) -> PathBuf {
    match &opts.path {
        Some(p) => p.clone(),
        None => usage_error("the snapshot/serve experiments require --path FILE"),
    }
}

/// `snapshot`: build → workload → save → drop → load → replay → assert
/// identical answers and stats, all in one process.  Returns whether the
/// round trip verified.
fn snapshot_experiment(opts: &Opts, report: &mut Report) -> bool {
    let kind = snapshot_kind(opts);
    let path = snapshot_path(opts);
    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let cfg = opts.harness();

    let built = build_timed(kind, &data, &cfg);
    let reference = replay_workload(built.index.as_ref(), &data, &ReplaySpec::default());

    let start = std::time::Instant::now();
    if let Err(e) = registry::save_index(built.index.as_ref(), &path) {
        eprintln!("failed to save snapshot to {}: {e}", path.display());
        return false;
    }
    let save_s = start.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    drop(built);

    let start = std::time::Instant::now();
    let loaded = match registry::load_index(&path) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("failed to load snapshot from {}: {e}", path.display());
            return false;
        }
    };
    let load_s = start.elapsed().as_secs_f64();
    let replayed = replay_workload(loaded.as_ref(), &data, &ReplaySpec::default());
    let verified = reference.matches(&replayed);

    report.table(
        &format!(
            "Snapshot round trip — {} (Skewed, n = {})",
            kind.name(),
            data.len()
        ),
        &[
            "index",
            "snapshot (MB)",
            "save (ms)",
            "load (ms)",
            "blocks/workload",
            "identical answers + stats",
        ],
        vec![vec![
            kind.name().to_string(),
            fmt(file_bytes as f64 / (1024.0 * 1024.0)),
            fmt(save_s * 1e3),
            fmt(load_s * 1e3),
            replayed.stats.blocks_touched.to_string(),
            if verified { "yes" } else { "NO" }.to_string(),
        ]],
    );
    if !verified {
        eprintln!("snapshot round trip FAILED: loaded index diverged from the built one");
    }
    verified
}

/// `serve`: the restart side of the pair.  Loads the snapshot written by a
/// previous `snapshot` invocation (a different process), rebuilds the same
/// index deterministically from the same parameters, and diffs the replayed
/// workload answers and statistics.  Returns whether they match.
fn serve_experiment(opts: &Opts, report: &mut Report) -> bool {
    let path = snapshot_path(opts);
    let start = std::time::Instant::now();
    let loaded = match registry::load_index(&path) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("failed to load snapshot from {}: {e}", path.display());
            return false;
        }
    };
    let load_s = start.elapsed().as_secs_f64();

    let kind = match &opts.kind {
        Some(k) => *k,
        // The snapshot header knows what it holds; its display name parses
        // back through the registry.
        None => match loaded.name().parse() {
            Ok(k) => k,
            Err(_) => {
                eprintln!("snapshot holds unregistered kind '{}'", loaded.name());
                return false;
            }
        },
    };
    if kind.name() != loaded.name() {
        eprintln!(
            "--kind {} does not match the snapshot's kind {}",
            kind.name(),
            loaded.name()
        );
        return false;
    }

    let data = dataset(Distribution::skewed_default(), opts.n_default());
    let fresh = build_timed(kind, &data, &opts.harness());
    if fresh.index.len() != loaded.len() {
        eprintln!(
            "snapshot holds {} points but the fresh build has {} — were snapshot and serve \
             invoked with the same --scale?",
            loaded.len(),
            fresh.index.len()
        );
        return false;
    }
    let from_snapshot = replay_workload(loaded.as_ref(), &data, &ReplaySpec::default());
    let from_build = replay_workload(fresh.index.as_ref(), &data, &ReplaySpec::default());
    let verified = from_snapshot.matches(&from_build);

    report.table(
        &format!(
            "Serve from snapshot — {} (Skewed, n = {})",
            kind.name(),
            data.len()
        ),
        &[
            "index",
            "load (ms)",
            "fresh build (s)",
            "restart speedup",
            "identical answers + stats",
        ],
        vec![vec![
            kind.name().to_string(),
            fmt(load_s * 1e3),
            fmt(fresh.build_seconds),
            fmt(fresh.build_seconds / load_s.max(1e-9)),
            if verified { "yes" } else { "NO" }.to_string(),
        ]],
    );
    if !verified {
        eprintln!("serve verification FAILED: snapshot diverged from the fresh build");
    }
    verified
}

// ---------------------------------------------------------------------
// Live concurrent serving: readers + writer + compaction, oracle-verified
// ---------------------------------------------------------------------

fn serve_live_kind(opts: &Opts) -> IndexKind {
    opts.kind.unwrap_or(IndexKind::Hrr)
}

/// `serve-live`: builds a `SpatialServer` over the scaled data set, runs
/// `--readers` reader threads concurrently with one writer thread applying
/// a `--write-ratio` read/write workload, then replays the recorded
/// interleaving single-threadedly against a `Vec`-scan oracle
/// (`bench::live`, shared with `tests/serve_concurrent.rs`): every
/// point-query answer is verified for every kind, and window/kNN answers
/// for exact kinds.  Background compaction must swap at least one epoch
/// under the readers.  Returns whether everything verified.
fn serve_live(opts: &Opts, report: &mut Report) -> bool {
    let kind = serve_live_kind(opts);
    let n = (100_000.0 * opts.scale) as usize;
    let data = dataset(Distribution::skewed_default(), n);
    let k = 25;

    // One stream at the requested write ratio; reads fan out over the
    // reader threads, writes stay in stream order on the writer thread.
    let total_reads_target = opts.readers * opts.queries;
    let total_ops = (total_reads_target as f64 / (1.0 - opts.write_ratio)).round() as usize;
    let ops = queries::read_write_workload(
        &data,
        WindowSpec::default(),
        k,
        total_ops,
        opts.write_ratio,
        SEED ^ 0xA11E,
    );
    let (reads, mut writes) = bench::live::split_stream(&ops);
    // `Rsmi::delete` treats id 0 as a location wildcard, which the serving
    // layer must answer with a full-rebuild pass; redirect the rare delete
    // of the id-0 point so the learned kinds exercise the partial path for
    // the whole run (for exact-id kinds the redirect is just a different,
    // equally valid victim).
    for w in writes.iter_mut() {
        if let server::WriteOp::Delete(p) = w {
            if p.id == 0 {
                *w = server::WriteOp::Delete(data[1]);
            }
        }
    }

    let cfg = opts.harness();
    let threshold = (writes.len() / 4).max(16);
    // Policy-driven compaction: kinds with maintenance support serve their
    // epoch swaps as drift-triggered partial rebuilds, everything else
    // falls back to the full fold-and-rebuild pass automatically.
    let policy = registry::CompactionPolicy::default()
        .with_ops_trigger(threshold)
        .with_drift_trigger(0.05);
    let start = std::time::Instant::now();
    let server = registry::serve_index(
        kind,
        &data,
        &cfg,
        registry::ServerConfig::default().with_policy(policy),
    );
    let build_s = start.elapsed().as_secs_f64();

    // Serve: N readers snapshot-and-query, 1 writer applies the write
    // stream (paced so it spans the read phase), compaction runs in the
    // server's own background thread throughout.  The shared harness in
    // `bench::live` records (observed seq, answer) per query.
    let run = bench::live::run_live_serving(
        &server,
        &reads,
        &writes,
        opts.readers,
        std::time::Duration::from_micros(500),
    );
    let mut observations = run.observations;
    // The writer is deliberately paced to span the read phase, so the two
    // throughput numbers use their own clocks: reads over the readers'
    // wall time, writes over the writer's unpaced busy time.
    let read_wall_s = run.read_wall.as_secs_f64();
    let write_busy_s = run.write_busy.as_secs_f64();

    // Readers must have been served across epoch swaps: with this many
    // writes the background compactor is required to fold at least once —
    // but its final rebuild may still be in flight when the threads join,
    // so wait for it rather than sampling the counter once.
    let compactions = if writes.len() >= threshold {
        bench::live::await_compactions(&server, 1, std::time::Duration::from_secs(30))
    } else {
        server.stats().compactions
    };
    let compaction_ok = writes.len() < threshold || compactions >= 1;
    if !compaction_ok {
        eprintln!(
            "serve-live FAILED: {} writes buffered but no background compaction ran",
            writes.len()
        );
    }

    // Single-threaded replay oracle: every recorded answer is compared
    // against a naive scan of the write prefix its snapshot observed.
    let outcome = bench::live::replay_against_oracle(
        &data,
        &writes,
        &mut observations,
        kind.exact_windows(),
        kind.exact_knn(),
    );
    let (checked, skipped) = (outcome.checked, outcome.skipped);
    for d in &outcome.divergences {
        eprintln!("serve-live divergence at {d}");
    }
    if !outcome.verified() {
        eprintln!(
            "serve-live FAILED: {} of {} verified answers diverged from the \
             single-threaded replay oracle",
            outcome.mismatches,
            checked + outcome.mismatches
        );
    }
    // Maintenance contract: a learned kind under an incremental policy
    // must have served its swaps with partial passes, and every
    // writer-visible swap pause must fit the policy's pause budget.
    let stats = server.stats();
    let learned = matches!(
        kind,
        IndexKind::Rsmi
            | IndexKind::Rsmia
            | IndexKind::Sharded(BaseKind::Rsmi)
            | IndexKind::Sharded(BaseKind::Rsmia)
    );
    let mut maint_ok = true;
    if learned && stats.compactions > 0 && stats.partial_compactions == 0 {
        eprintln!(
            "serve-live FAILED: {} epoch swaps on {} but none ran as a partial pass",
            stats.compactions,
            kind.name()
        );
        maint_ok = false;
    }
    let journal = server.telemetry().journal.snapshot();
    let mut pause_us: Vec<u64> = Vec::new();
    let mut rebuild_us: Vec<u64> = Vec::new();
    for e in &journal.events {
        match e.kind {
            obs::EventKind::PartialCompactionEnd {
                pause_us: p,
                rebuild_us: r,
                ..
            } => {
                pause_us.push(p);
                rebuild_us.push(r);
            }
            obs::EventKind::CompactionEnd { pause_us: p, .. } => pause_us.push(p),
            _ => {}
        }
    }
    let worst_pause = pause_us.iter().copied().max().unwrap_or(0);
    if worst_pause >= policy.pause_budget_us {
        eprintln!(
            "serve-live FAILED: swap pause {worst_pause}us exceeded the \
             {}us policy budget",
            policy.pause_budget_us
        );
        maint_ok = false;
    }
    let verified = outcome.verified() && compaction_ok && maint_ok;

    report.meta("readers", opts.readers);
    report.meta("write_ratio", opts.write_ratio);
    report.meta("queries_per_reader", opts.queries);
    report.meta("verified_answers", checked);
    report.table(
        &format!(
            "Live serving — {} readers + 1 writer, {:.0}% writes (Skewed, n = {n}, {})",
            opts.readers,
            opts.write_ratio * 100.0,
            kind.name()
        ),
        &[
            "index",
            "build (s)",
            "reads",
            "writes",
            "read throughput (q/s)",
            "write throughput (op/s, unpaced)",
            "epochs swapped",
            "answers verified",
            "oracle match",
        ],
        vec![vec![
            kind.name().to_string(),
            fmt(build_s),
            observations.len().to_string(),
            writes.len().to_string(),
            fmt(observations.len() as f64 / read_wall_s.max(1e-9)),
            fmt(writes.len() as f64 / write_busy_s.max(1e-9)),
            compactions.to_string(),
            format!("{checked} (+{skipped} unverified approximate)"),
            if verified { "yes" } else { "NO" }.to_string(),
        ]],
    );

    // The maintenance datapoint (BENCH_maint.json in the CI maintenance
    // gate): swap counts plus the pause/rebuild tails.  The "time" columns
    // are what perf_gate gates against the committed baseline.
    let p99 = |series: &[u64]| -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        let mut v = series.to_vec();
        v.sort_unstable();
        v[((v.len() - 1) * 99) / 100] as f64 / 1_000.0
    };
    report.table(
        &format!("Incremental maintenance — {}", kind.name()),
        &[
            "index",
            "epochs swapped",
            "partial passes",
            "full passes",
            "subtree rebuilds",
            "swap pause p99 time (ms)",
            "partial rebuild p99 time (ms)",
        ],
        vec![vec![
            kind.name().to_string(),
            stats.compactions.to_string(),
            stats.partial_compactions.to_string(),
            (stats.compactions - stats.partial_compactions).to_string(),
            stats.subtree_rebuilds.to_string(),
            fmt(p99(&pause_us)),
            fmt(p99(&rebuild_us)),
        ]],
    );
    verified
}

// ---------------------------------------------------------------------
// Network serving: net-serve (server process) and net-load (load gen)
// ---------------------------------------------------------------------

fn net_serve_kind(opts: &Opts) -> IndexKind {
    opts.kind.unwrap_or(IndexKind::Hrr)
}

/// `net-serve`: builds (or warm-starts from `--path` snapshot) a
/// `SpatialServer` and serves it over the wire protocol on
/// `127.0.0.1:--port` until a wire `Shutdown` request arrives (or
/// `--duration` elapses), then drains in-flight work, refuses new
/// requests, joins every listener/worker thread, and reports the session
/// counters.  A client disconnecting mid-request only drops that
/// connection.
fn net_serve(opts: &Opts, report: &mut Report) -> bool {
    let kind = net_serve_kind(opts);
    let cfg = opts.harness();
    // One unified serving configuration — bind address, warm start,
    // compaction, admission — consumed by both the engine construction
    // (`registry::serve_config`) and the network loop (`net::serve_config`).
    let mut serve =
        server::ServeConfig::default().with_bind_addr(format!("127.0.0.1:{}", opts.port));
    if let Some(t) = opts.compact_threshold {
        serve = serve.with_compact_threshold(t);
    }
    if let Some(path) = &opts.path {
        // Warm start: recover the points and the index from a versioned
        // snapshot instead of rebuilding from raw data.
        if !path.exists() {
            eprintln!("net-serve: snapshot {} does not exist", path.display());
            return false;
        }
        serve = serve.with_warm_start(path);
        println!("_warm start from snapshot {}_", path.display());
    }
    let data = match &opts.path {
        Some(_) => Vec::new(),
        None => {
            let n = (100_000.0 * opts.scale) as usize;
            dataset(Distribution::skewed_default(), n)
        }
    };
    let build_start = std::time::Instant::now();
    let server = match registry::serve_config(kind, &data, &cfg, &serve) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("net-serve: cannot start the serving engine: {e}");
            return false;
        }
    };
    let build_s = build_start.elapsed().as_secs_f64();
    let points_served = server.len();

    // Keep a handle on the engine: its telemetry registry outlives the
    // serve loop and backs the shutdown summary below.
    let engine = std::sync::Arc::new(server);
    let handle = match net::serve_config(std::sync::Arc::clone(&engine), &serve) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("net-serve: cannot bind {}: {e}", serve.bind_addr);
            return false;
        }
    };
    // CI and scripts parse this line to learn the (possibly ephemeral)
    // port; flush so a pipe reader sees it before the serve loop blocks.
    println!("netserve listening on {}", handle.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let deadline = opts
        .duration
        .map(|d| std::time::Instant::now() + std::time::Duration::from_secs_f64(d));
    loop {
        if handle.is_stopped() {
            break;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            handle.shutdown();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let stats = handle.stats();
    // Drain: in-flight responses flush, then every thread joins — a
    // leaked listener thread would hang the process right here.
    handle.join();

    // Shutdown summary: the session's telemetry registry and event
    // journal outlive the serve loop on the engine Arc, so the per-class
    // totals here are final (every worker has delivered and counted).
    let telemetry = engine.telemetry();
    let metrics = telemetry.metrics.snapshot();
    let events = telemetry.journal.snapshot();
    let uptime_s = telemetry.journal.uptime_us() as f64 / 1e6;
    let compactions = events
        .events
        .iter()
        .filter(|e| matches!(e.kind, obs::EventKind::CompactionEnd { .. }))
        .count();
    let drained = events
        .events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            obs::EventKind::Shutdown { drained, .. } => Some(drained),
            _ => None,
        })
        .unwrap_or(0);
    let mut total_completed = 0u64;
    let mut total_shed = 0u64;
    let class_rows: Vec<Vec<String>> = net::REQUEST_CLASSES
        .iter()
        .map(|class| {
            let done = metrics
                .counter(&format!("net.requests.{class}"))
                .unwrap_or(0);
            let shed = metrics.counter(&format!("net.shed.{class}")).unwrap_or(0);
            total_completed += done;
            total_shed += shed;
            let lat = metrics.histogram(&format!("net.latency_us.{class}"));
            vec![
                class.to_string(),
                done.to_string(),
                shed.to_string(),
                lat.map_or(0, |h| h.percentile(50.0)).to_string(),
                lat.map_or(0, |h| h.percentile(99.0)).to_string(),
            ]
        })
        .collect();
    println!(
        "netserve shutdown: uptime {uptime_s:.1}s, {total_completed} completed, \
         {total_shed} shed, {drained} drained in flight, {compactions} compactions, \
         {} journal events",
        events.events.len()
    );
    report.table(
        "Shutdown summary — per-class session telemetry",
        &["class", "completed", "shed", "p50 (us)", "p99 (us)"],
        class_rows,
    );

    report.meta("port", opts.port);
    report.table(
        &format!(
            "Network serving session ({}, warm_start = {})",
            kind.name(),
            opts.path.is_some(),
        ),
        &[
            "index",
            "points",
            "build (s)",
            "connections",
            "requests",
            "shed",
            "batches",
            "mean batch size",
        ],
        vec![vec![
            kind.name().to_string(),
            points_served.to_string(),
            fmt(build_s),
            stats.connections.to_string(),
            stats.requests.to_string(),
            stats.shed.to_string(),
            stats.batches.to_string(),
            fmt(stats.batched as f64 / (stats.batches as f64).max(1.0)),
        ]],
    );
    true
}

/// `net-load`: drives `--connections` closed-loop client connections (and,
/// with `--rate`, an open-loop pass) against a running net-serve at
/// `--addr`, reporting p50/p99 tail latency per query class — the columns
/// the perf gate tracks — plus shed counts and throughput.
fn net_load(opts: &Opts, report: &mut Report) -> bool {
    use bench::netload;

    let n = (100_000.0 * opts.scale) as usize;
    // The same deterministic data set net-serve builds from at the same
    // --scale, so point lookups hit and deletes target real points.
    let data = dataset(Distribution::skewed_default(), n);
    let k = 25;
    let streams: Vec<Vec<netload::NetOp>> = (0..opts.connections)
        .map(|c| {
            netload::net_workload(
                &data,
                opts.queries,
                k,
                opts.radius,
                opts.write_ratio,
                SEED ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                // Disjoint fresh-id planes per connection.
                (1 << 33) + ((c as u64) << 24),
            )
        })
        .collect();
    report.meta(
        "mode",
        if opts.rate > 0.0 {
            "closed+open"
        } else {
            "closed"
        },
    );
    report.meta("connections", opts.connections);
    report.meta("rate", opts.rate);
    report.meta("write_ratio", opts.write_ratio);
    report.meta("queries_per_connection", opts.queries);
    report.meta("verify_stats", opts.verify_stats);

    // --verify-stats: a baseline scrape before any load, and a background
    // scraper hammering STATS *during* the run (the scrape path bypasses
    // admission control, so it must keep answering under full load).
    let verifier = if opts.verify_stats {
        match StatsVerifier::start(&opts.addr) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("net-load: --verify-stats baseline scrape failed: {e}");
                return false;
            }
        }
    } else {
        None
    };

    let closed = match netload::run_closed_loop(&opts.addr, &streams) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("net-load: closed loop failed: {e}");
            return false;
        }
    };
    netload::emit_latency_table(
        report,
        "Networked serving — closed-loop tail latency per class",
        &closed,
    );
    netload::emit_summary_table(
        report,
        "Networked serving — closed-loop summary",
        "closed",
        &closed,
    );
    let mut ok = closed.ok > 0;
    if !ok {
        eprintln!("net-load: no request was answered (all shed or none sent)");
    }

    let mut open_outcome = None;
    if opts.rate > 0.0 {
        let interval = std::time::Duration::from_secs_f64(1.0 / opts.rate);
        match netload::run_open_loop(&opts.addr, &streams, interval, 64) {
            Ok(open) => {
                netload::emit_latency_table(
                    report,
                    "Networked serving — open-loop tail latency per class",
                    &open,
                );
                netload::emit_summary_table(
                    report,
                    "Networked serving — open-loop summary",
                    "open",
                    &open,
                );
                open_outcome = Some(open);
            }
            Err(e) => {
                eprintln!("net-load: open loop failed: {e}");
                ok = false;
            }
        }
    }

    if let Some(verifier) = verifier {
        let mut outcomes: Vec<&netload::NetLoadOutcome> = vec![&closed];
        if let Some(open) = &open_outcome {
            outcomes.push(open);
        }
        ok &= verifier.finish(&outcomes, report);
    }

    if opts.shutdown_server {
        let sent = net::NetClient::connect(&opts.addr)
            .and_then(|mut c| c.shutdown_server())
            .is_ok();
        if !sent {
            eprintln!("net-load: could not deliver the shutdown request");
            ok = false;
        }
    }
    ok
}

/// Live-telemetry verification harness for `net-load --verify-stats`: a
/// baseline STATS scrape before the load starts, a background thread
/// scraping throughout the run (the scrape path bypasses admission
/// control, so it must keep answering under full load, and counters must
/// never go backwards), then a drain-side reconciliation of the server's
/// per-class request/shed counters against the load generator's own
/// counts — exact, or the run fails.
struct StatsVerifier {
    addr: String,
    baseline: obs::MetricsSnapshot,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    scraper: std::thread::JoinHandle<Result<usize, String>>,
}

impl StatsVerifier {
    fn start(addr: &str) -> Result<Self, String> {
        let mut client = net::NetClient::connect_retry(addr, std::time::Duration::from_secs(10))
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let (_, baseline) = client.stats().map_err(|e| format!("baseline STATS: {e}"))?;
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let scraper = {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || -> Result<usize, String> {
                let mut prev: std::collections::BTreeMap<String, u64> = Default::default();
                let mut scrapes = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (_, snap) = client.stats().map_err(|e| format!("mid-run STATS: {e}"))?;
                    for (name, v) in &snap.counters {
                        if prev.get(name).is_some_and(|&old| *v < old) {
                            return Err(format!(
                                "counter {name} went backwards: {} -> {v}",
                                prev[name]
                            ));
                        }
                        prev.insert(name.clone(), *v);
                    }
                    scrapes += 1;
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                Ok(scrapes)
            })
        };
        Ok(Self {
            addr: addr.to_string(),
            baseline,
            stop,
            scraper,
        })
    }

    fn finish(self, outcomes: &[&bench::netload::NetLoadOutcome], report: &mut Report) -> bool {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let mut ok = true;
        let mid_scrapes = match self
            .scraper
            .join()
            .unwrap_or_else(|_| Err("scraper panicked".into()))
        {
            Ok(n) if n > 0 => n,
            Ok(_) => {
                eprintln!("net-load: the mid-run scraper never completed a scrape");
                ok = false;
                0
            }
            Err(e) => {
                eprintln!("net-load: mid-run telemetry scraper failed: {e}");
                ok = false;
                0
            }
        };

        let mut client =
            match net::NetClient::connect_retry(&self.addr, std::time::Duration::from_secs(10)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("net-load: drain-side connect {}: {e}", self.addr);
                    return false;
                }
            };
        let after = match client.stats() {
            Ok((_, snap)) => snap,
            Err(e) => {
                eprintln!("net-load: drain-side STATS failed: {e}");
                return false;
            }
        };
        let (rows, discrepancies) =
            bench::netload::reconcile_stats(&self.baseline, &after, outcomes);
        report.table(
            "Telemetry reconciliation — server counters vs load generator",
            &bench::netload::RECONCILE_HEADER,
            rows,
        );
        for d in &discrepancies {
            eprintln!("net-load: telemetry drift: {d}");
        }
        ok &= discrepancies.is_empty();

        // The run's writes must have driven background compaction; the
        // final fold may still be in flight when the load ends, so poll
        // the journal rather than sampling it once.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut saw_compaction = false;
        loop {
            match client.events(0) {
                Ok((_, events)) => {
                    saw_compaction = events.events.iter().any(|e| {
                        matches!(
                            e.kind,
                            obs::EventKind::CompactionEnd { .. } | obs::EventKind::EpochSwap { .. }
                        )
                    });
                }
                Err(e) => {
                    eprintln!("net-load: EVENTS scrape failed: {e}");
                    ok = false;
                    break;
                }
            }
            if saw_compaction || std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        if !saw_compaction {
            eprintln!(
                "net-load: no compaction/epoch-swap event in the journal after the run \
                 (did the workload buffer enough writes for the server's compact threshold?)"
            );
            ok = false;
        }
        println!(
            "telemetry verification: {mid_scrapes} mid-run scrapes, per-class counters {}, \
             compaction event {}",
            if discrepancies.is_empty() {
                "reconciled exactly".to_string()
            } else {
                format!("{} DISCREPANCIES", discrepancies.len())
            },
            if saw_compaction { "present" } else { "MISSING" },
        );
        ok
    }
}

/// `net-stats`: the standalone telemetry scraper — connects to a running
/// net-serve, decodes one wire STATS snapshot plus the EVENTS journal,
/// and prints them as tables (counters, gauges, latency distributions,
/// lifecycle events).  With `--shutdown-server` it then asks the server
/// to drain — the shape the CI observability gate uses to archive the
/// final telemetry as `BENCH_obs.json` and reap the background process.
fn net_stats(opts: &Opts, report: &mut Report) -> bool {
    report.meta("addr", &opts.addr);
    let mut client =
        match net::NetClient::connect_retry(&opts.addr, std::time::Duration::from_secs(10)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("net-stats: connect {}: {e}", opts.addr);
                return false;
            }
        };
    let (seq, metrics) = match client.stats() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("net-stats: STATS request failed: {e}");
            return false;
        }
    };
    let (_, events) = match client.events(0) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("net-stats: EVENTS request failed: {e}");
            return false;
        }
    };
    report.meta("seq", seq);

    report.table(
        "Telemetry — counters",
        &["counter", "value"],
        metrics
            .counters
            .iter()
            .map(|(k, v)| vec![k.clone(), v.to_string()])
            .collect(),
    );
    report.table(
        "Telemetry — gauges",
        &["gauge", "value"],
        metrics
            .gauges
            .iter()
            .map(|(k, v)| vec![k.clone(), v.to_string()])
            .collect(),
    );
    report.table(
        "Telemetry — distributions",
        &["histogram", "count", "mean", "p50", "p99", "p999", "max"],
        metrics
            .histograms
            .iter()
            .map(|(k, h)| {
                vec![
                    k.clone(),
                    h.count.to_string(),
                    fmt(h.mean()),
                    h.percentile(50.0).to_string(),
                    h.percentile(99.0).to_string(),
                    h.percentile(99.9).to_string(),
                    if h.count == 0 { 0 } else { h.max }.to_string(),
                ]
            })
            .collect(),
    );
    report.table(
        &format!(
            "Telemetry — lifecycle events ({} dropped from the bounded journal)",
            events.dropped
        ),
        &["seq", "at (s)", "event", "details"],
        events
            .events
            .iter()
            .map(|e| {
                vec![
                    e.seq.to_string(),
                    fmt(e.at_us as f64 / 1e6),
                    e.kind.name().to_string(),
                    e.kind.describe(),
                ]
            })
            .collect(),
    );

    if opts.shutdown_server {
        if let Err(e) = client.shutdown_server() {
            eprintln!("net-stats: could not deliver the shutdown request: {e}");
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------
// Distributed serving: shard-serve (one shard's process) and route-serve
// ---------------------------------------------------------------------

/// `shard-serve`: extracts shard `--shard` from the sharded snapshot at
/// `--path`, warm-starts a `SpatialServer` over it, and serves it over the
/// wire protocol on `127.0.0.1:--port` — the single-process serving loop,
/// unchanged, over one shard's data.  Exits on a wire `Shutdown` (which
/// the router propagates on drain) or after `--duration` seconds.
fn shard_serve(opts: &Opts, report: &mut Report) -> bool {
    let path = snapshot_path(opts);
    let bytes = match registry::load_shard_snapshot(&path, opts.shard) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "shard-serve: cannot extract shard {} from {}: {e}",
                opts.shard,
                path.display()
            );
            return false;
        }
    };
    let mut serve =
        server::ServeConfig::default().with_bind_addr(format!("127.0.0.1:{}", opts.port));
    if let Some(t) = opts.compact_threshold {
        serve = serve.with_compact_threshold(t);
    }
    let server =
        match registry::serve_snapshot_bytes(&bytes, &opts.harness(), serve.server_config()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shard-serve: cannot serve shard {}: {e}", opts.shard);
                return false;
            }
        };
    let points = server.len();
    let engine = std::sync::Arc::new(server);
    let handle = match net::serve_config(std::sync::Arc::clone(&engine), &serve) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("shard-serve: cannot bind {}: {e}", serve.bind_addr);
            return false;
        }
    };
    // The router (and CI scripts) parse this line for the bound address.
    println!(
        "shardserve shard {} listening on {} ({points} points)",
        opts.shard,
        handle.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let deadline = opts
        .duration
        .map(|d| std::time::Instant::now() + std::time::Duration::from_secs_f64(d));
    loop {
        if handle.is_stopped() {
            break;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            handle.shutdown();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let stats = handle.stats();
    handle.join();
    println!(
        "shardserve shutdown: shard {}, {} connections, {} requests, {} shed",
        opts.shard, stats.connections, stats.requests, stats.shed
    );
    report.meta("shard", opts.shard);
    report.table(
        "Shard serving session",
        &["shard", "points", "connections", "requests", "shed"],
        vec![vec![
            opts.shard.to_string(),
            points.to_string(),
            stats.connections.to_string(),
            stats.requests.to_string(),
            stats.shed.to_string(),
        ]],
    );
    true
}

/// `route-serve`: loads only the routing metadata (frozen partitioner +
/// per-shard MBRs) from the sharded snapshot at `--path` — never any
/// shard's data — and serves the full five-class query surface on
/// `127.0.0.1:--port` by scatter/gather over the shard servers in
/// `--shard-addrs`.  A wire `Shutdown` drains the router's own clients
/// first, then propagates the graceful shutdown to every shard replica.
fn route_serve(opts: &Opts, report: &mut Report) -> bool {
    let path = snapshot_path(opts);
    let (kind, manifest) = match registry::load_shard_manifest(&path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "route-serve: cannot read routing metadata from {}: {e}",
                path.display()
            );
            return false;
        }
    };
    let Some(spec) = &opts.shard_addrs else {
        usage_error("route-serve requires --shard-addrs");
    };
    let replicas: Vec<Vec<String>> = spec
        .split(';')
        .map(|shard| shard.split(',').map(str::to_string).collect())
        .collect();
    let n_shards = manifest.shard_count();
    let serve = server::ServeConfig::default().with_bind_addr(format!("127.0.0.1:{}", opts.port));
    let handle = match router::serve(manifest, replicas, &serve) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("route-serve: cannot start the router: {e}");
            return false;
        }
    };
    // CI and scripts parse this line for the bound address.
    println!(
        "router listening on {} ({} shards, kind {})",
        handle.local_addr(),
        n_shards,
        kind.name()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let deadline = opts
        .duration
        .map(|d| std::time::Instant::now() + std::time::Duration::from_secs_f64(d));
    loop {
        if handle.is_stopped() {
            break;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            handle.shutdown();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let stats = handle.stats();
    let metrics = handle.telemetry().metrics.snapshot();
    // Drain own clients, then propagate the shutdown to every shard
    // replica — after this join no child server should be serving.
    handle.join();
    let visited = metrics.counter("router.shards_visited").unwrap_or(0);
    let pruned = metrics.counter("router.shards_pruned").unwrap_or(0);
    let failovers = metrics.counter("router.replica_failovers").unwrap_or(0);
    println!(
        "router shutdown: {} connections, {} requests, {} shed, \
         {visited} shards visited, {pruned} pruned, {failovers} replica failovers",
        stats.connections, stats.requests, stats.shed
    );
    report.meta("shards", n_shards);
    report.table(
        &format!("Router session — {} shards ({})", n_shards, kind.name()),
        &[
            "shards",
            "connections",
            "requests",
            "shed",
            "shards visited",
            "shards pruned",
            "replica failovers",
        ],
        vec![vec![
            n_shards.to_string(),
            stats.connections.to_string(),
            stats.requests.to_string(),
            stats.shed.to_string(),
            visited.to_string(),
            pruned.to_string(),
            failovers.to_string(),
        ]],
    );
    true
}
