//! CI perf-regression gate: compares the per-kind latencies of a fresh
//! `bench-summary` JSON run against a baseline run and fails on regression.
//!
//! Usage:
//!
//! ```text
//! perf_gate --baseline BASELINE.json --current CURRENT.json
//!           [--max-regression-pct P]
//! ```
//!
//! Both files are `bench-summary` documents written by the `experiments`
//! binary (`--json`); the gate extracts every numeric cell in a column whose
//! header contains `"time"`, keyed by `(table title, row label, column)`.
//! For each metric present in the baseline:
//!
//! * missing from the current run → **fail** (a kind cannot silently drop
//!   out of the gate), and
//! * `current > baseline * (1 + P/100)` → **fail** (default P = 25).
//!
//! Metrics that only exist in the current run (new kinds, new tables) pass:
//! the gate ratchets coverage forward, never blocks it.  Exit status: 0 on
//! pass, 1 on regression/coverage loss or unreadable input, 2 on CLI
//! misuse.  In CI the baseline is the previous run's `bench-summary`
//! artifact when one can be downloaded, falling back to the committed
//! `ci/BENCH_baseline_*.json` files — see `.github/workflows/ci.yml` and
//! the Perf gate section of `docs/ARCHITECTURE.md` for the contract.

use bench::summary;
use std::path::PathBuf;

const USAGE: &str = "\
usage: perf_gate --baseline FILE --current FILE [--max-regression-pct P]

  --baseline FILE          baseline bench-summary JSON (previous artifact
                           or the committed ci/BENCH_baseline_*.json)
  --current FILE           the fresh run's bench-summary JSON
  --max-regression-pct P   allowed latency growth in percent (default 25)";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn load_metrics(path: &PathBuf, role: &str) -> Vec<summary::Metric> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: cannot read {role} {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let doc = match summary::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "perf_gate: {role} {} is not valid JSON: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    };
    match summary::latency_metrics(&doc) {
        Ok(m) => m,
        Err(e) => {
            eprintln!(
                "perf_gate: {role} {} is not a bench summary: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut max_pct: f64 = 25.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => usage_error("--baseline requires a value"),
            },
            "--current" => match it.next() {
                Some(v) => current = Some(PathBuf::from(v)),
                None => usage_error("--current requires a value"),
            },
            "--max-regression-pct" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v.is_finite() && v >= 0.0 => max_pct = v,
                Some(_) => usage_error("--max-regression-pct must be a non-negative number"),
                None => usage_error("--max-regression-pct requires a value"),
            },
            other => usage_error(&format!("unknown argument: {other}")),
        }
    }
    let Some(baseline) = baseline else {
        usage_error("--baseline is required");
    };
    let Some(current) = current else {
        usage_error("--current is required");
    };

    let base_metrics = load_metrics(&baseline, "baseline");
    let curr_metrics = load_metrics(&current, "current");
    if base_metrics.is_empty() {
        eprintln!(
            "perf_gate: baseline {} contains no latency metrics",
            baseline.display()
        );
        std::process::exit(1);
    }

    let cmp = summary::compare(&base_metrics, &curr_metrics, max_pct / 100.0);
    println!(
        "# perf gate — {} vs {} (allowed +{max_pct}%)\n",
        current.display(),
        baseline.display()
    );
    // Per-metric actual deltas, worst regression first — the diagnostic a
    // red (or almost-red) gate run is read by.
    for line in &cmp.lines {
        println!("{line}");
    }
    for key in &cmp.missing {
        println!("{key}: present in baseline, MISSING from current run");
    }
    println!(
        "\n{} metrics compared, {} regressed, {} missing",
        cmp.compared,
        cmp.regressions.len(),
        cmp.missing.len()
    );
    if let Some(worst) = cmp.worst() {
        println!(
            "worst mover: {} {:+.1}% ({:.3} -> {:.3}, allowed +{max_pct}%)",
            worst.key, worst.delta_pct, worst.baseline, worst.current
        );
    }
    if !cmp.passed() {
        for r in &cmp.regressions {
            eprintln!("perf_gate: REGRESSION {r}");
        }
        for m in &cmp.missing {
            eprintln!("perf_gate: MISSING {m}");
        }
        std::process::exit(1);
    }
}
