//! CI perf-regression gate: compares the per-kind latencies of a fresh
//! `bench-summary` JSON run against a baseline run and fails on regression.
//!
//! Usage:
//!
//! ```text
//! perf_gate --baseline BASELINE.json --current CURRENT.json
//!           [--max-regression-pct P] [--throughput [--floor F]]
//! ```
//!
//! Both files are `bench-summary` documents written by the `experiments`
//! binary (`--json`); the gate extracts every numeric cell in a column whose
//! header contains `"time"` (or `"throughput"` in `--throughput` mode),
//! keyed by `(table title, row label, column)`.  For each metric present in
//! the baseline:
//!
//! * missing from the current run → **fail** (a kind cannot silently drop
//!   out of the gate), and
//! * latency mode: `current > baseline * (1 + P/100)` → **fail**
//!   (default P = 25), or
//! * throughput mode: `current < baseline * (1 - P/100)` → **fail**, and
//!   `current < F` (the absolute minimum-throughput floor, when given) →
//!   **fail** — the floor holds even against a baseline that is itself
//!   below it, so a slow baseline refresh cannot ratchet the floor down.
//!
//! Metrics that only exist in the current run (new kinds, new tables) pass:
//! the gate ratchets coverage forward, never blocks it.  Exit status: 0 on
//! pass, 1 on regression/coverage loss or unreadable input, 2 on CLI
//! misuse.  In CI the baseline is the previous run's `bench-summary`
//! artifact when one can be downloaded, falling back to the committed
//! `ci/BENCH_baseline_*.json` files — see `.github/workflows/ci.yml` and
//! the Perf gate section of `docs/ARCHITECTURE.md` for the contract.

use bench::summary;
use std::path::PathBuf;

const USAGE: &str = "\
usage: perf_gate --baseline FILE --current FILE [--max-regression-pct P]
                 [--throughput [--floor F]]

  --baseline FILE          baseline bench-summary JSON (previous artifact
                           or the committed ci/BENCH_baseline_*.json)
  --current FILE           the fresh run's bench-summary JSON
  --max-regression-pct P   allowed latency growth (or throughput drop, in
                           --throughput mode) in percent (default 25)
  --throughput             gate on \"throughput\" columns instead of
                           \"time\" columns; higher is better, so the gate
                           fails on drops
  --floor F                --throughput only: absolute minimum throughput
                           (q/s) any metric may report, regardless of the
                           baseline";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn load_metrics(path: &PathBuf, role: &str, throughput: bool) -> Vec<summary::Metric> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: cannot read {role} {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let doc = match summary::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "perf_gate: {role} {} is not valid JSON: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    };
    let metrics = if throughput {
        summary::throughput_metrics(&doc)
    } else {
        summary::latency_metrics(&doc)
    };
    match metrics {
        Ok(m) => m,
        Err(e) => {
            eprintln!(
                "perf_gate: {role} {} is not a bench summary: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut max_pct: f64 = 25.0;
    let mut throughput = false;
    let mut floor: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => usage_error("--baseline requires a value"),
            },
            "--current" => match it.next() {
                Some(v) => current = Some(PathBuf::from(v)),
                None => usage_error("--current requires a value"),
            },
            "--max-regression-pct" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v.is_finite() && v >= 0.0 => max_pct = v,
                Some(_) => usage_error("--max-regression-pct must be a non-negative number"),
                None => usage_error("--max-regression-pct requires a value"),
            },
            "--throughput" => throughput = true,
            "--floor" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v.is_finite() && v > 0.0 => floor = Some(v),
                Some(_) => usage_error("--floor must be a positive number"),
                None => usage_error("--floor requires a value"),
            },
            other => usage_error(&format!("unknown argument: {other}")),
        }
    }
    let Some(baseline) = baseline else {
        usage_error("--baseline is required");
    };
    let Some(current) = current else {
        usage_error("--current is required");
    };
    if floor.is_some() && !throughput {
        usage_error("--floor only applies in --throughput mode");
    }

    let base_metrics = load_metrics(&baseline, "baseline", throughput);
    let curr_metrics = load_metrics(&current, "current", throughput);
    let family = if throughput { "throughput" } else { "latency" };
    if base_metrics.is_empty() {
        eprintln!(
            "perf_gate: baseline {} contains no {family} metrics",
            baseline.display()
        );
        std::process::exit(1);
    }

    let cmp = if throughput {
        summary::compare_throughput(
            &base_metrics,
            &curr_metrics,
            max_pct / 100.0,
            floor.unwrap_or(0.0),
        )
    } else {
        summary::compare(&base_metrics, &curr_metrics, max_pct / 100.0)
    };
    match (throughput, floor) {
        (false, _) => println!(
            "# perf gate — {} vs {} (allowed +{max_pct}%)\n",
            current.display(),
            baseline.display()
        ),
        (true, None) => println!(
            "# perf gate (throughput) — {} vs {} (allowed -{max_pct}%)\n",
            current.display(),
            baseline.display()
        ),
        (true, Some(f)) => println!(
            "# perf gate (throughput) — {} vs {} (allowed -{max_pct}%, floor {f} q/s)\n",
            current.display(),
            baseline.display()
        ),
    }
    // Per-metric actual deltas, worst regression first — the diagnostic a
    // red (or almost-red) gate run is read by.
    for line in &cmp.lines {
        println!("{line}");
    }
    for key in &cmp.missing {
        println!("{key}: present in baseline, MISSING from current run");
    }
    println!(
        "\n{} metrics compared, {} regressed, {} missing",
        cmp.compared,
        cmp.regressions.len(),
        cmp.missing.len()
    );
    let headline = if throughput {
        cmp.worst_drop()
    } else {
        cmp.worst()
    };
    if let Some(worst) = headline {
        println!(
            "worst mover: {} {:+.1}% ({:.3} -> {:.3}, allowed {}{max_pct}%)",
            worst.key,
            worst.delta_pct,
            worst.baseline,
            worst.current,
            if throughput { "-" } else { "+" }
        );
    }
    if !cmp.passed() {
        for r in &cmp.regressions {
            eprintln!("perf_gate: REGRESSION {r}");
        }
        for m in &cmp.missing {
            eprintln!("perf_gate: MISSING {m}");
        }
        std::process::exit(1);
    }
}
