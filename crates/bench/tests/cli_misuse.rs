//! Exit-code contract for the `experiments` binary: misuse exits 2 with
//! the usage text, a failed run exits 1, and a full
//! `net-serve`/`net-load` cycle — including the wire-level graceful
//! shutdown — exits 0 on both sides.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn run(args: &[&str]) -> std::process::Output {
    Command::new(BIN).args(args).output().expect("spawn")
}

#[test]
fn unknown_experiment_exits_2_with_usage() {
    let out = run(&["no-such-experiment"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
    assert!(stderr.contains("no-such-experiment"), "{stderr}");
}

#[test]
fn missing_experiment_exits_2() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_flag_values_exit_2() {
    // Each of these is caught by argument validation, before any work.
    for args in [
        &["net-load", "--connections", "0"][..],
        &["net-load", "--addr", "no-port-separator"],
        &["net-serve", "--duration", "-3"],
        &["net-load", "--rate", "NaN"],
        &["net-serve", "--port", "70000"],
        &["net-load", "--connections"], // missing value
    ] {
        let out = run(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {:?}: stderr {}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn net_load_against_a_dead_server_exits_1() {
    // Nothing listens on this port (bound then dropped, so the OS refuses
    // connections fast); the load generator must fail cleanly, not hang.
    let port = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap().port()
    };
    let out = run(&[
        "net-load",
        "--addr",
        &format!("127.0.0.1:{port}"),
        "--connections",
        "1",
        "--queries",
        "10",
        "--scale",
        "0.01",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_load_shutdown_cycle_exits_0_on_both_sides() {
    // Full lifecycle: background server on an ephemeral port, load
    // generator against it, wire-level shutdown, and both processes exit 0
    // — the drain leaves no listener behind.
    let mut server = Command::new(BIN)
        .args([
            "net-serve",
            "--scale",
            "0.02",
            "--epochs",
            "5",
            "--port",
            "0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");

    // The server prints its bound address before entering the serve loop.
    // Keep the pipe open for the server's lifetime — closing it would turn
    // the server's post-drain report into a broken-pipe failure.
    let stdout = server.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        if let Some(rest) = line.trim_end().strip_prefix("netserve listening on ") {
            addr = Some(rest.trim().to_string());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("server announced its address");

    let load = run(&[
        "net-load",
        "--addr",
        &addr,
        "--connections",
        "2",
        "--queries",
        "50",
        "--write-ratio",
        "0.1",
        "--scale",
        "0.02",
        "--shutdown-server",
    ]);
    assert_eq!(
        load.status.code(),
        Some(0),
        "load stderr: {}",
        String::from_utf8_lossy(&load.stderr)
    );

    // The wire shutdown drains the server, which then exits 0.  Drain the
    // rest of its report output so it can finish printing.
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
    let status = server.wait().expect("server exit");
    assert_eq!(status.code(), Some(0));

    // The listener is gone: a fresh connection is refused (or accepted by
    // a lingering OS backlog and then unable to answer).
    assert!(
        net::NetClient::connect(&addr).is_err() || {
            let mut c = net::NetClient::connect(&addr).unwrap();
            c.ping().is_err()
        }
    );
}
