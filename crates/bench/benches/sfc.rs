//! Micro-benchmarks of the space-filling-curve substrate: the per-point
//! encoding cost that enters every bulk-load and query (latency component of
//! Figs. 6–16).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::{generate, Distribution};
use sfc::{hilbert, zcurve, CurveKind, RankSpace};

fn bench_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfc_encode");
    group.sample_size(50);
    group.bench_function("z_encode", |b| {
        b.iter(|| zcurve::encode(black_box(123_456), black_box(654_321)))
    });
    group.bench_function("hilbert_encode_order20", |b| {
        b.iter(|| hilbert::encode(black_box(123_456), black_box(654_321), 20))
    });
    group.bench_function("z_decode", |b| {
        b.iter(|| zcurve::decode(black_box(0x0000_5555_AAAA_FFFF)))
    });
    group.bench_function("hilbert_decode_order20", |b| {
        b.iter(|| hilbert::decode(black_box(0x0000_0055_AAAA_FFFF), 20))
    });
    group.finish();
}

fn bench_rank_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_space");
    group.sample_size(20);
    let points = generate(Distribution::skewed_default(), 10_000, 1);
    group.bench_function("transform_10k", |b| {
        b.iter(|| RankSpace::new(black_box(&points)))
    });
    let rs = RankSpace::new(&points);
    group.bench_function("sorted_permutation_hilbert_10k", |b| {
        b.iter(|| rs.sorted_permutation(CurveKind::Hilbert))
    });
    group.finish();
}

criterion_group!(benches, bench_curves, bench_rank_space);
criterion_main!(benches);
