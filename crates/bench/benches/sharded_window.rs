//! Window-query latency of the sharded serving engine at 1 / 4 / 8 shards,
//! fixed data size, hotspot workload.
//!
//! Expected shape (see the crate docs of `bench`): one shard is the
//! unsharded index plus a thin facade, so it sets the baseline; at 4 and 8
//! shards the per-query work drops because the hotspot workload intersects
//! only the shards covering the hot region (`shards_pruned` grows with the
//! shard count), while each visited shard is smaller.  The win saturates
//! once the hot region's shards are split further — more shards past that
//! point only add fan-out bookkeeping.

use bench::{build_timed, IndexConfig, IndexKind};
use common::QueryContext;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, queries, Distribution};
use registry::BaseKind;

fn bench_sharded_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_window_skewed_50k");
    group.sample_size(30);
    let data = generate(Distribution::skewed_default(), 50_000, 1);
    let ws = queries::hotspot_window_queries(&data, queries::WindowSpec::default(), 128, 3);
    for shards in [1usize, 4, 8] {
        let cfg = IndexConfig {
            block_capacity: 100,
            shards,
            ..IndexConfig::default()
        };
        let built = build_timed(BaseKind::Hrr.sharded(), &data, &cfg);
        assert_eq!(built.kind, IndexKind::Sharded(BaseKind::Hrr));
        group.bench_with_input(BenchmarkId::new("shards", shards), &built, |b, built| {
            let mut cx = QueryContext::new();
            let mut i = 0usize;
            b.iter(|| {
                let w = &ws[i % ws.len()];
                i += 1;
                let mut count = 0usize;
                built
                    .index
                    .window_query_visit(w, &mut cx, &mut |_| count += 1);
                black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_window);
criterion_main!(benches);
