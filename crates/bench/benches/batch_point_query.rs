//! Batch vs per-call point queries: documents the amortisation win of the
//! batch entry points of the redesigned query API.
//!
//! The batch form runs the whole workload through one `QueryContext` and one
//! virtual dispatch per *batch*, where the per-call form pays the dynamic
//! dispatch, stats bookkeeping, and result handling per *query*.

use bench::{build_timed, IndexConfig, IndexKind};
use common::QueryContext;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, queries, Distribution};

fn bench_batch_vs_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query_batch_vs_single_skewed_20k");
    group.sample_size(20);
    let data = generate(Distribution::skewed_default(), 20_000, 1);
    let qs = queries::point_queries(&data, 1024, 3);
    let cfg = IndexConfig {
        block_capacity: 100,
        partition_threshold: 5_000,
        epochs: 20,
        seed: 1,
        ..IndexConfig::default()
    };
    for kind in [IndexKind::Rsmi, IndexKind::Hrr, IndexKind::Grid] {
        let built = build_timed(kind, &data, &cfg);
        group.bench_with_input(
            BenchmarkId::new("single", kind.name()),
            &built,
            |b, built| {
                b.iter(|| {
                    let mut cx = QueryContext::new();
                    let mut hits = 0usize;
                    for q in &qs {
                        if built.index.point_query(black_box(q), &mut cx).is_some() {
                            hits += 1;
                        }
                    }
                    black_box((hits, cx.stats))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch", kind.name()),
            &built,
            |b, built| {
                b.iter(|| {
                    let mut cx = QueryContext::new();
                    let answers = built.index.point_queries(black_box(&qs), &mut cx);
                    let hits = answers.iter().filter(|a| a.is_some()).count();
                    black_box((hits, cx.stats))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_single);
criterion_main!(benches);
