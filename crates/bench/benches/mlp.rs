//! Micro-benchmarks of the learned-model substrate: training cost (the
//! construction-time component of Figs. 7b/9b and Table 3) and inference cost
//! (the O(M) term of every RSMI query).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlp::{MlpConfig, ScaledRegressor};

fn training_set(n: usize) -> (Vec<Vec<f64>>, Vec<u64>) {
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![(i % 100) as f64 / 100.0, (i / 100) as f64 / 100.0])
        .collect();
    let targets: Vec<u64> = (0..n).map(|i| (i / 100) as u64).collect();
    (inputs, targets)
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_train");
    group.sample_size(10);
    let (inputs, targets) = training_set(2_000);
    let cfg = MlpConfig {
        input_dim: 2,
        hidden: 32,
        learning_rate: 0.15,
        epochs: 20,
        batch_size: 32,
        seed: 1,
    };
    group.bench_function("fit_2k_points_20_epochs", |b| {
        b.iter(|| ScaledRegressor::fit(cfg, black_box(&inputs), black_box(&targets)))
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_predict");
    group.sample_size(100);
    let (inputs, targets) = training_set(2_000);
    let cfg = MlpConfig {
        input_dim: 2,
        hidden: 51, // the paper's hidden-layer size for 100 output blocks
        learning_rate: 0.15,
        epochs: 10,
        batch_size: 32,
        seed: 1,
    };
    let model = ScaledRegressor::fit(cfg, &inputs, &targets);
    group.bench_function("predict_xy_hidden51", |b| {
        b.iter(|| model.predict_xy(black_box(0.42), black_box(0.58)))
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference);
criterion_main!(benches);
