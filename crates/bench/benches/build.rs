//! Construction-time benchmarks (Figs. 7b and 9b, Table 3): bulk-loading each
//! index family on the same Skewed data set.

use bench::{build_timed, IndexConfig, IndexKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, Distribution};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_skewed_5k");
    group.sample_size(10);
    let data = generate(Distribution::skewed_default(), 5_000, 1);
    let cfg = IndexConfig {
        block_capacity: 100,
        partition_threshold: 2_000,
        epochs: 15,
        seed: 1,
        ..IndexConfig::default()
    };
    for kind in IndexKind::without_rsmia() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| build_timed(kind, &data, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
