//! Window-query latency benchmarks (Figs. 10–13): per-query latency of every
//! index family, including the exact RSMIa traversal, on the default window
//! workload (0.01 % area, aspect ratio 1).

use bench::{build_index, AnyIndex, HarnessConfig, IndexKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, queries, Distribution};

fn bench_window_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_query_skewed_20k");
    group.sample_size(30);
    let data = generate(Distribution::skewed_default(), 20_000, 1);
    let ws = queries::window_queries(&data, queries::WindowSpec::default(), 128, 3);
    let cfg = HarnessConfig {
        block_capacity: 100,
        partition_threshold: 5_000,
        epochs: 20,
        seed: 1,
    };
    for kind in IndexKind::all() {
        let built = build_index(kind, &data, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &built, |b, built| {
            let mut i = 0usize;
            b.iter(|| {
                let w = &ws[i % ws.len()];
                i += 1;
                let res = match (&built.index, built.kind) {
                    (AnyIndex::Rsmi(r), IndexKind::Rsmia) => r.window_query_exact(w),
                    _ => built.index.as_index().window_query(w),
                };
                black_box(res)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_queries);
criterion_main!(benches);
