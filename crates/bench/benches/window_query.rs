//! Window-query latency benchmarks (Figs. 10–13): per-query latency of every
//! index family, including the exact RSMIa traversal, on the default window
//! workload (0.01 % area, aspect ratio 1).
//!
//! The visitor form is benchmarked (count results, no allocation), which is
//! what the zero-copy API is for.

use bench::{build_timed, IndexConfig, IndexKind};
use common::QueryContext;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, queries, Distribution};

fn bench_window_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_query_skewed_20k");
    group.sample_size(30);
    let data = generate(Distribution::skewed_default(), 20_000, 1);
    let ws = queries::window_queries(&data, queries::WindowSpec::default(), 128, 3);
    let cfg = IndexConfig {
        block_capacity: 100,
        partition_threshold: 5_000,
        epochs: 20,
        seed: 1,
        ..IndexConfig::default()
    };
    for kind in IndexKind::all() {
        let built = build_timed(kind, &data, &cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &built,
            |b, built| {
                let mut cx = QueryContext::new();
                let mut i = 0usize;
                b.iter(|| {
                    let w = &ws[i % ws.len()];
                    i += 1;
                    let mut count = 0usize;
                    built
                        .index
                        .window_query_visit(w, &mut cx, &mut |_| count += 1);
                    black_box(count)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window_queries);
criterion_main!(benches);
