//! kNN-query latency benchmarks (Figs. 14–16): per-query latency of every
//! index family at the paper's default k = 25.

use bench::{build_timed, IndexConfig, IndexKind};
use common::QueryContext;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, queries, Distribution};

fn bench_knn_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_query_skewed_20k_k25");
    group.sample_size(30);
    let data = generate(Distribution::skewed_default(), 20_000, 1);
    let qs = queries::knn_queries(&data, 128, 3);
    let cfg = IndexConfig {
        block_capacity: 100,
        partition_threshold: 5_000,
        epochs: 20,
        seed: 1,
        ..IndexConfig::default()
    };
    for kind in IndexKind::all() {
        let built = build_timed(kind, &data, &cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &built,
            |b, built| {
                let mut cx = QueryContext::new();
                let mut i = 0usize;
                b.iter(|| {
                    let q = &qs[i % qs.len()];
                    i += 1;
                    let mut count = 0usize;
                    built
                        .index
                        .knn_query_visit(q, 25, &mut cx, &mut |_| count += 1);
                    black_box(count)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_knn_queries);
criterion_main!(benches);
