//! Distance-range query latency benchmarks: per-query latency of every
//! index family on the default radius (0.02 of the unit space), data-
//! following centres.  Unlike window/kNN, every family answers this query
//! class exactly, so the numbers compare identical work.
//!
//! The visitor form is benchmarked (count results, no allocation), which is
//! what the zero-copy API is for.

use bench::{build_timed, IndexConfig, IndexKind};
use common::QueryContext;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, queries, Distribution};

fn bench_range_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query_skewed_20k");
    group.sample_size(30);
    let data = generate(Distribution::skewed_default(), 20_000, 1);
    let centers = queries::range_query_centers(&data, 128, 3);
    let radius = queries::DEFAULT_RANGE_RADIUS;
    let cfg = IndexConfig {
        block_capacity: 100,
        partition_threshold: 5_000,
        epochs: 20,
        seed: 1,
        ..IndexConfig::default()
    };
    for kind in IndexKind::all() {
        let built = build_timed(kind, &data, &cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &built,
            |b, built| {
                let mut cx = QueryContext::new();
                let mut i = 0usize;
                b.iter(|| {
                    let q = &centers[i % centers.len()];
                    i += 1;
                    let mut count = 0usize;
                    built
                        .index
                        .range_query_visit(q, radius, &mut cx, &mut |_| count += 1);
                    black_box(count)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_range_queries);
criterion_main!(benches);
