//! Point-query latency benchmarks (Figs. 6a and 8a): per-query latency of
//! every index family on the same Skewed data set.

use bench::{build_timed, IndexConfig, IndexKind};
use common::QueryContext;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate, queries, Distribution};

fn bench_point_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query_skewed_20k");
    group.sample_size(30);
    let data = generate(Distribution::skewed_default(), 20_000, 1);
    let qs = queries::point_queries(&data, 256, 3);
    let cfg = IndexConfig {
        block_capacity: 100,
        partition_threshold: 5_000,
        epochs: 20,
        seed: 1,
        ..IndexConfig::default()
    };
    for kind in IndexKind::without_rsmia() {
        let built = build_timed(kind, &data, &cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &built,
            |b, built| {
                let mut cx = QueryContext::new();
                let mut i = 0usize;
                b.iter(|| {
                    let q = &qs[i % qs.len()];
                    i += 1;
                    black_box(built.index.point_query(q, &mut cx))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_point_queries);
criterion_main!(benches);
