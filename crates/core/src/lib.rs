//! RSMI — the Recursive Spatial Model Index.
//!
//! This crate is the Rust reproduction of the primary contribution of
//! *"Effectively Learning Spatial Indices"* (Qi, Liu, Jensen, Kulik, VLDB
//! 2020): a learned index for two-dimensional point data.
//!
//! # How it works
//!
//! 1. **Ordering (§3.1).**  Points are mapped into a *rank space* — an
//!    `n x n` grid in which every row and column holds exactly one point —
//!    and ordered along a space-filling curve (Hilbert by default).  Every
//!    `B` consecutive points are packed into a block; the index learns a
//!    small multilayer perceptron that maps point coordinates directly to
//!    block IDs, together with the maximum under-/over-prediction errors
//!    observed on the data (`err_ℓ`, `err_a`).
//! 2. **Recursive partitioning (§3.2).**  Data sets larger than the
//!    partition threshold `N` are recursively split with a non-regular,
//!    data-driven `2^⌊log₄(N/B)⌋ x 2^⌊log₄(N/B)⌋` grid.  A model is trained
//!    to predict the grid-cell curve value of each point and the points are
//!    grouped *by the model's own predictions*, so the same model later
//!    routes queries with zero routing error for indexed points.
//! 3. **Queries (§4).**  Point queries descend one model per level and scan
//!    the error-bounded block range; window queries locate the blocks of the
//!    window's anchor corner points and scan between them (approximate, no
//!    false positives); kNN queries expand a data-distribution-scaled search
//!    region around the query point.
//! 4. **Updates (§5).**  Insertions go to the predicted block or to a linked
//!    overflow block; deletions leave free slots; [`Rsmi::rebuild`]
//!    implements the RSMIr periodic-rebuild variant.
//!
//! The MBR-augmented exact variants of window and kNN queries (the paper's
//! **RSMIa**) are available as [`Rsmi::window_query_exact`] /
//! [`Rsmi::knn_query_exact`], or uniformly through the [`RsmiExact`]
//! wrapper, which answers exactly via the common `SpatialIndex` trait.
//!
//! # Quick start
//!
//! Queries go through the zero-copy visitor/`Vec` API of
//! [`common::SpatialIndex`], with per-query costs charged to an explicit
//! [`common::QueryContext`]:
//!
//! ```
//! use datagen::{generate, Distribution};
//! use geom::{Point, Rect};
//! use rsmi::{Rsmi, RsmiConfig};
//! use common::{QueryContext, SpatialIndex};
//!
//! let points = generate(Distribution::Uniform, 2_000, 42);
//! let index = Rsmi::build(points.clone(), RsmiConfig::fast());
//! let mut cx = QueryContext::new();
//!
//! // Point query: every indexed point can be found again.
//! assert_eq!(index.point_query(&points[7], &mut cx).unwrap().id, points[7].id);
//!
//! // Window query, zero-copy visitor form (approximate — no false positives).
//! let window = Rect::new(0.4, 0.4, 0.6, 0.6);
//! index.window_query_visit(&window, &mut cx, &mut |p| {
//!     assert!(window.contains(p));
//! });
//!
//! // kNN query via the Vec adapter of the trait.
//! let nn = SpatialIndex::knn_query(&index, &Point::new(0.5, 0.5), 5, &mut cx);
//! assert_eq!(nn.len(), 5);
//!
//! // Batch point queries amortise per-call overhead and aggregate stats.
//! let answers = index.point_queries(&points[..64], &mut cx);
//! assert!(answers.iter().all(|a| a.is_some()));
//! let stats = cx.take_stats();
//! assert!(stats.blocks_touched > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod index;
mod node;
mod pmf;

pub use index::{Rsmi, RsmiExact, RsmiStats};
pub use pmf::PiecewiseCdf;

use sfc::CurveKind;

/// Configuration of an RSMI index.
#[derive(Debug, Clone, Copy)]
pub struct RsmiConfig {
    /// Block capacity `B` (the paper uses 100).
    pub block_capacity: usize,
    /// Partition threshold `N`: the maximum number of points a single leaf
    /// model handles (the paper determines 10 000 empirically, Table 3).
    pub partition_threshold: usize,
    /// Space-filling curve used for ordering (§6.1: Hilbert by default).
    pub curve: CurveKind,
    /// Training epochs per sub-model.  The paper uses 500; the default here
    /// is smaller so that experiments run at laptop scale — the harness can
    /// raise it.
    pub epochs: usize,
    /// SGD learning rate (paper: 0.01; a larger rate compensates for the
    /// reduced epoch count).
    pub learning_rate: f64,
    /// Seed for deterministic model initialisation.
    pub seed: u64,
    /// Whether leaf models order points in rank space (`true`, the paper's
    /// design) or directly on raw coordinates (`false`, ablation).
    pub use_rank_space: bool,
    /// Whether points are grouped by the partitioning model's *predictions*
    /// (`true`, the paper's design) or by the true grid cell (`false`,
    /// ablation).
    pub group_by_prediction: bool,
    /// Number of pieces of the piecewise CDF used to estimate the kNN skew
    /// parameters (γ in §4.3; the paper uses 100).
    pub cdf_pieces: usize,
    /// Hard cap on recursion depth as a safety net against degenerate
    /// groupings (the paper reports a maximum depth of 10).
    pub max_depth: usize,
}

impl Default for RsmiConfig {
    fn default() -> Self {
        Self {
            block_capacity: 100,
            partition_threshold: 10_000,
            curve: CurveKind::Hilbert,
            epochs: 40,
            learning_rate: 0.15,
            seed: 42,
            use_rank_space: true,
            group_by_prediction: true,
            cdf_pieces: 100,
            max_depth: 32,
        }
    }
}

impl RsmiConfig {
    /// A configuration tuned for unit/integration tests and doc examples:
    /// small blocks and few epochs so builds finish in milliseconds.
    pub fn fast() -> Self {
        Self {
            block_capacity: 50,
            partition_threshold: 2_000,
            epochs: 25,
            learning_rate: 0.3,
            ..Self::default()
        }
    }

    /// Returns a copy using the given curve.
    pub fn with_curve(mut self, curve: CurveKind) -> Self {
        self.curve = curve;
        self
    }

    /// Returns a copy with the given partition threshold `N`.
    pub fn with_partition_threshold(mut self, n: usize) -> Self {
        self.partition_threshold = n;
        self
    }

    /// Returns a copy with the given block capacity `B`.
    pub fn with_block_capacity(mut self, b: usize) -> Self {
        self.block_capacity = b;
        self
    }

    /// Returns a copy with the given epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with rank-space ordering enabled or disabled
    /// (ablation of the paper's key design choice).
    pub fn with_rank_space(mut self, on: bool) -> Self {
        self.use_rank_space = on;
        self
    }

    /// Returns a copy with prediction-based grouping enabled or disabled.
    pub fn with_group_by_prediction(mut self, on: bool) -> Self {
        self.group_by_prediction = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_parameters() {
        let c = RsmiConfig::default();
        assert_eq!(c.block_capacity, 100);
        assert_eq!(c.partition_threshold, 10_000);
        assert_eq!(c.curve, CurveKind::Hilbert);
        assert_eq!(c.cdf_pieces, 100);
        assert!(c.use_rank_space);
        assert!(c.group_by_prediction);
    }

    #[test]
    fn builder_style_setters_apply() {
        let c = RsmiConfig::default()
            .with_curve(CurveKind::Z)
            .with_partition_threshold(5000)
            .with_block_capacity(64)
            .with_epochs(10)
            .with_rank_space(false)
            .with_group_by_prediction(false);
        assert_eq!(c.curve, CurveKind::Z);
        assert_eq!(c.partition_threshold, 5000);
        assert_eq!(c.block_capacity, 64);
        assert_eq!(c.epochs, 10);
        assert!(!c.use_rank_space);
        assert!(!c.group_by_prediction);
    }
}
