//! Piecewise mapping function (approximate marginal CDF).
//!
//! The kNN algorithm (§4.3) sizes its initial search region with two skew
//! parameters `αx`, `αy` derived from the slope of the marginal CDFs of the
//! data at the query location.  Computing the true CDF is expensive, so the
//! paper approximates it with a *piecewise mapping function* built from
//! `γ = 100` equi-depth partitions of each dimension.

/// A piecewise-linear approximation of a one-dimensional CDF.
#[derive(Debug, Clone)]
pub struct PiecewiseCdf {
    /// Breakpoint coordinates, ascending; `xs[i]` is the upper boundary of
    /// the `i`-th equi-depth partition.
    xs: Vec<f64>,
    /// Cumulative fractions at the breakpoints, ascending in `[0, 1]`.
    fracs: Vec<f64>,
}

impl PiecewiseCdf {
    /// Builds the CDF approximation from raw (unsorted) coordinate values
    /// using `pieces` equi-depth partitions.
    pub fn fit(values: &[f64], pieces: usize) -> Self {
        assert!(pieces >= 1, "at least one piece required");
        if values.is_empty() {
            return Self {
                xs: vec![0.0, 1.0],
                fracs: vec![0.0, 1.0],
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let mut xs = Vec::with_capacity(pieces + 1);
        let mut fracs = Vec::with_capacity(pieces + 1);
        xs.push(sorted[0]);
        fracs.push(0.0);
        for i in 1..=pieces {
            let idx = ((i * n) / pieces).clamp(1, n) - 1;
            let x = sorted[idx];
            let frac = (idx + 1) as f64 / n as f64;
            // Keep breakpoints strictly increasing in x so interpolation is
            // well defined on duplicate-heavy data.
            if x > *xs.last().expect("non-empty") {
                xs.push(x);
                fracs.push(frac);
            } else if let Some(last) = fracs.last_mut() {
                *last = frac;
            }
        }
        Self { xs, fracs }
    }

    /// Estimated fraction of values `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return 0.0;
        }
        if x >= *self.xs.last().expect("non-empty") {
            return 1.0;
        }
        // Find the segment containing x and interpolate linearly.
        let hi = self.xs.partition_point(|&b| b < x);
        let lo = hi - 1;
        let (x0, x1) = (self.xs[lo], self.xs[hi]);
        let (f0, f1) = (self.fracs[lo], self.fracs[hi]);
        if x1 - x0 <= f64::EPSILON {
            return f1;
        }
        f0 + (f1 - f0) * (x - x0) / (x1 - x0)
    }

    /// The paper's skew parameter (Equation 6): `α = Δ / (CDF(q + Δ) −
    /// CDF(q))`, clamped to a sane range so that near-empty regions do not
    /// produce unbounded search windows.
    pub fn alpha(&self, q: f64, delta: f64) -> f64 {
        let rise = self.eval(q + delta) - self.eval(q);
        if rise <= f64::EPSILON {
            // No data mass to the right of q within Δ: fall back to looking
            // left, and if that is also empty use a generous default.
            let rise_left = self.eval(q) - self.eval(q - delta);
            if rise_left <= f64::EPSILON {
                return 16.0;
            }
            return (delta / rise_left).clamp(0.05, 64.0);
        }
        (delta / rise).clamp(0.05, 64.0)
    }

    /// Number of stored breakpoints (for size accounting).
    pub fn size_bytes(&self) -> usize {
        (self.xs.len() + self.fracs.len()) * std::mem::size_of::<f64>()
    }

    /// Appends the breakpoints to a snapshot (sub-record of an index
    /// section).
    pub fn encode(&self, w: &mut persist::SnapshotWriter) {
        w.put_f64s(&self.xs);
        w.put_f64s(&self.fracs);
    }

    /// Reads a CDF written by [`PiecewiseCdf::encode`].
    pub fn decode(r: &mut persist::SnapshotReader<'_>) -> Result<Self, persist::PersistError> {
        let xs = r.get_f64s()?;
        let fracs = r.get_f64s()?;
        if xs.len() != fracs.len() || xs.is_empty() {
            return Err(persist::PersistError::Corrupt(
                "piecewise CDF breakpoint arrays are malformed".into(),
            ));
        }
        Ok(Self { xs, fracs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_yields_identity_like_cdf() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let cdf = PiecewiseCdf::fit(&values, 100);
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((cdf.eval(x) - x).abs() < 0.02, "cdf({x}) = {}", cdf.eval(x));
        }
        assert_eq!(cdf.eval(-1.0), 0.0);
        assert_eq!(cdf.eval(2.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let values: Vec<f64> = (0..5000).map(|i| ((i as f64) / 5000.0).powi(4)).collect();
        let cdf = PiecewiseCdf::fit(&values, 100);
        let mut prev = 0.0;
        let mut x = 0.0;
        while x <= 1.0 {
            let v = cdf.eval(x);
            assert!(v + 1e-12 >= prev);
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn alpha_is_one_for_uniform_data() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let cdf = PiecewiseCdf::fit(&values, 100);
        let a = cdf.alpha(0.5, 0.01);
        assert!((a - 1.0).abs() < 0.3, "alpha = {a}");
    }

    #[test]
    fn alpha_is_large_in_sparse_regions_and_small_in_dense_regions() {
        // Skewed data: mass concentrated near 0.
        let values: Vec<f64> = (0..10_000).map(|i| (i as f64 / 10_000.0).powi(4)).collect();
        let cdf = PiecewiseCdf::fit(&values, 100);
        let dense = cdf.alpha(0.01, 0.01);
        let sparse = cdf.alpha(0.9, 0.01);
        assert!(dense < 1.0, "dense alpha = {dense}");
        assert!(sparse > 1.0, "sparse alpha = {sparse}");
    }

    #[test]
    fn alpha_is_clamped_and_finite_even_outside_the_data_range() {
        let values: Vec<f64> = (0..100).map(|i| 0.4 + 0.2 * (i as f64 / 100.0)).collect();
        let cdf = PiecewiseCdf::fit(&values, 10);
        for &q in &[-1.0, 0.0, 0.39, 0.5, 0.61, 1.0, 2.0] {
            let a = cdf.alpha(q, 0.01);
            assert!(a.is_finite());
            assert!((0.05..=64.0).contains(&a), "alpha({q}) = {a}");
        }
    }

    #[test]
    fn empty_input_produces_a_usable_default() {
        let cdf = PiecewiseCdf::fit(&[], 100);
        assert_eq!(cdf.eval(0.5), 0.5);
        assert!(cdf.alpha(0.5, 0.01).is_finite());
    }

    #[test]
    fn duplicate_heavy_data_does_not_break_interpolation() {
        let mut values = vec![0.5; 1000];
        values.extend((0..1000).map(|i| i as f64 / 1000.0));
        let cdf = PiecewiseCdf::fit(&values, 50);
        assert!(cdf.eval(0.5) > 0.5, "half of the mass sits at exactly 0.5");
        assert!(cdf.eval(0.499) <= cdf.eval(0.501));
    }
}
