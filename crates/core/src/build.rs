//! Bulk-loading (recursive construction) of the RSMI (§3.2).

use crate::node::{InternalNode, LeafNode, Node, NodeId};
use crate::RsmiConfig;
use geom::{bounding_rect, Point, Rect};
use mlp::{MlpConfig, ScaledRegressor};
use sfc::rank_space::{point_cmp_x, point_cmp_y, rank_space_order};
use sfc::RankSpace;
use storage::BlockStore;

/// Output of a bulk-load.
pub(crate) struct BuildOutput {
    pub nodes: Vec<Node>,
    pub root: Option<NodeId>,
    pub store: BlockStore,
    pub height: usize,
    pub model_count: usize,
}

/// Recursive builder state.
pub(crate) struct Builder {
    config: RsmiConfig,
    store: BlockStore,
    nodes: Vec<Node>,
    model_count: usize,
    max_depth: usize,
}

impl Builder {
    pub(crate) fn run(config: RsmiConfig, points: Vec<Point>) -> BuildOutput {
        let mut builder = Builder {
            store: BlockStore::new(config.block_capacity),
            config,
            nodes: Vec::new(),
            model_count: 0,
            max_depth: 0,
        };
        let root = if points.is_empty() {
            None
        } else {
            Some(builder.build_node(points, 0))
        };
        BuildOutput {
            nodes: builder.nodes,
            root,
            store: builder.store,
            height: builder.max_depth + 1,
            model_count: builder.model_count,
        }
    }

    /// The side length of the internal partitioning grid:
    /// `2^⌊log₄(N / B)⌋`, at least 2 so every internal node partitions.
    fn grid_side(&self) -> usize {
        let ratio = (self.config.partition_threshold / self.config.block_capacity).max(1);
        let log4 = (ratio as f64).log(4.0).floor() as u32;
        (1usize << log4).max(2)
    }

    fn mlp_config(&self, classes: usize) -> MlpConfig {
        let mut cfg = MlpConfig::for_coordinates(classes.max(1));
        cfg.epochs = self.config.epochs;
        cfg.learning_rate = self.config.learning_rate;
        cfg.seed = self.config.seed.wrapping_add(self.model_count as u64);
        cfg
    }

    fn build_node(&mut self, points: Vec<Point>, depth: usize) -> NodeId {
        self.max_depth = self.max_depth.max(depth);
        if points.len() <= self.config.partition_threshold || depth >= self.config.max_depth {
            self.build_leaf(points)
        } else {
            self.build_internal(points, depth)
        }
    }

    /// Builds a leaf model (§3.1): rank-space ordering, SFC packing into
    /// blocks, and an MLP predicting local block offsets from coordinates.
    fn build_leaf(&mut self, points: Vec<Point>) -> NodeId {
        debug_assert!(!points.is_empty());
        let capacity = self.config.block_capacity;
        let curve = self.config.curve;

        // Order the points.
        let ordered: Vec<Point> = if self.config.use_rank_space {
            let rs = RankSpace::new(&points);
            let perm = rs.sorted_permutation(curve);
            perm.into_iter().map(|i| points[i]).collect()
        } else {
            // Ablation: apply the curve directly to raw coordinates on a grid
            // of the same order as the rank space would use.
            let order = rank_space_order(points.len()).min(20);
            let mut with_cv: Vec<(u64, Point)> = points
                .iter()
                .map(|p| {
                    let v = match curve {
                        sfc::CurveKind::Z => sfc::zcurve::encode_unit(p.x, p.y, order),
                        sfc::CurveKind::Hilbert => sfc::hilbert::encode_unit(p.x, p.y, order),
                    };
                    (v, *p)
                })
                .collect();
            with_cv.sort_by_key(|(v, _)| *v);
            with_cv.into_iter().map(|(_, p)| p).collect()
        };

        // Pack into blocks (Equation 1) and record training targets.
        let range = self.store.pack(&ordered);
        let first_block = range.start;
        let n_blocks = range.len().max(1);

        let inputs: Vec<Vec<f64>> = ordered.iter().map(|p| vec![p.x, p.y]).collect();
        let targets: Vec<u64> = (0..ordered.len())
            .map(|rank| (rank / capacity) as u64)
            .collect();
        let model = ScaledRegressor::fit(self.mlp_config(n_blocks), &inputs, &targets);
        self.model_count += 1;

        let mbr = bounding_rect(&ordered).unwrap_or_else(Rect::empty);
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf(LeafNode {
            model,
            first_block,
            n_blocks,
            mbr,
        }));
        id
    }

    /// Builds an internal node (§3.2): a non-regular, data-driven grid whose
    /// cells are enumerated by the SFC; a model learns the cell curve value
    /// of every point, and points are grouped by the model's predictions.
    fn build_internal(&mut self, mut points: Vec<Point>, depth: usize) -> NodeId {
        let s = self.grid_side();
        let cells = s * s;
        let grid_order = s.trailing_zeros();
        let n = points.len();

        // Step 1: data-driven grid.  Cut the data into `s` columns of equal
        // cardinality by x, then each column into `s` cells by y.
        points.sort_by(point_cmp_x);
        let col_size = n.div_ceil(s);
        let mut true_cell: Vec<u64> = vec![0; n];
        for (col, col_points) in points.chunks(col_size).enumerate() {
            // Indices of this column within the sorted-by-x order.
            let col_start = col * col_size;
            let mut idx: Vec<usize> = (col_start..col_start + col_points.len()).collect();
            idx.sort_by(|&a, &b| point_cmp_y(&points[a], &points[b]));
            let cell_size = col_points.len().div_ceil(s).max(1);
            for (row, row_idx) in idx.chunks(cell_size).enumerate() {
                let cv = self.config.curve.encode(
                    col as u32,
                    (row as u32).min(s as u32 - 1),
                    grid_order,
                );
                for &i in row_idx {
                    true_cell[i] = cv;
                }
            }
        }

        // Step 2: learn the partitioning function M_{i,j}.
        let inputs: Vec<Vec<f64>> = points.iter().map(|p| vec![p.x, p.y]).collect();
        let model = ScaledRegressor::fit(self.mlp_config(cells), &inputs, &true_cell);
        self.model_count += 1;

        // Step 3: group the points by the model's predictions (the learned
        // grouping of Fig. 4) or by the true cell (ablation).
        let mut groups: Vec<Vec<Point>> = vec![Vec::new(); cells];
        if self.config.group_by_prediction {
            for (i, p) in points.iter().enumerate() {
                let j = (model.predict(&inputs[i]) as usize).min(cells - 1);
                groups[j].push(*p);
            }
        } else {
            for (i, p) in points.iter().enumerate() {
                groups[true_cell[i] as usize].push(*p);
            }
        }

        // Note: if the model collapses all points into one predicted group,
        // recursion makes no progress; the per-group guard below turns such a
        // group into a (large) leaf instead.  Regrouping by the true cell
        // would break the routing guarantee, because queries are routed by
        // the model's predictions.

        // Step 4: recurse per non-empty group, in cell-curve-value order so
        // that the global block order follows the curve.
        let mut children: Vec<Option<NodeId>> = vec![None; cells];
        let mut child_mbrs: Vec<Rect> = vec![Rect::empty(); cells];
        let mbr = bounding_rect(&points).unwrap_or_else(Rect::empty);
        // `points` is no longer needed; free it before recursing.
        drop(points);
        drop(inputs);

        for (cell, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            child_mbrs[cell] = bounding_rect(&group).unwrap_or_else(Rect::empty);
            // A group that did not shrink would recurse forever as an
            // internal node; force it to become a leaf instead.
            let child = if group.len() >= n {
                self.max_depth = self.max_depth.max(depth + 1);
                self.build_leaf(group)
            } else {
                self.build_node(group, depth + 1)
            };
            children[cell] = Some(child);
        }

        let id = self.nodes.len();
        self.nodes.push(Node::Internal(InternalNode {
            model,
            children,
            child_mbrs,
            mbr,
        }));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_points(n: usize) -> Vec<Point> {
        // Deterministic pseudo-random points without pulling in `rand`.
        let mut pts = Vec::with_capacity(n);
        let mut state = 0x12345678u64;
        for id in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 11) as f64 / (1u64 << 53) as f64;
            pts.push(Point::with_id(x, y, id as u64));
        }
        pts
    }

    fn test_config() -> RsmiConfig {
        RsmiConfig {
            block_capacity: 20,
            partition_threshold: 200,
            epochs: 15,
            learning_rate: 0.3,
            ..RsmiConfig::default()
        }
    }

    #[test]
    fn small_data_set_builds_a_single_leaf() {
        let out = Builder::run(test_config(), uniform_points(150));
        assert_eq!(out.nodes.len(), 1);
        assert!(out.nodes[out.root.unwrap()].is_leaf());
        assert_eq!(out.height, 1);
        assert_eq!(out.model_count, 1);
        assert_eq!(out.store.total_points(), 150);
        assert_eq!(out.store.len(), 8); // ceil(150 / 20)
    }

    #[test]
    fn large_data_set_builds_a_recursive_structure() {
        let out = Builder::run(test_config(), uniform_points(2000));
        assert!(out.height >= 2, "2000 points with N=200 must recurse");
        assert!(out.model_count > 1);
        assert_eq!(out.store.total_points(), 2000);
        // Every point is stored exactly once.
        let mut ids: Vec<u64> = out
            .store
            .iter()
            .flat_map(|(_, b)| b.ids().iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2000);
    }

    #[test]
    fn empty_input_produces_an_empty_index() {
        let out = Builder::run(test_config(), vec![]);
        assert!(out.root.is_none());
        assert!(out.nodes.is_empty());
        assert_eq!(out.store.total_points(), 0);
    }

    #[test]
    fn grid_side_follows_the_paper_formula() {
        // N = 10_000, B = 100 -> N/B = 100 -> 2^⌊log4 100⌋ = 2^3 = 8.
        let builder = Builder {
            config: RsmiConfig::default(),
            store: BlockStore::new(100),
            nodes: Vec::new(),
            model_count: 0,
            max_depth: 0,
        };
        assert_eq!(builder.grid_side(), 8);
        // N = 8, B = 2 -> N/B = 4 -> 2^1 = 2 (the paper's Fig. 4 example).
        let builder2 = Builder {
            config: RsmiConfig {
                partition_threshold: 8,
                block_capacity: 2,
                ..RsmiConfig::default()
            },
            store: BlockStore::new(2),
            nodes: Vec::new(),
            model_count: 0,
            max_depth: 0,
        };
        assert_eq!(builder2.grid_side(), 2);
    }

    #[test]
    fn duplicate_locations_do_not_break_the_build() {
        let mut pts = uniform_points(300);
        // Add many duplicates of one location.
        for i in 0..100 {
            pts.push(Point::with_id(0.25, 0.25, 10_000 + i));
        }
        let out = Builder::run(test_config(), pts);
        assert_eq!(out.store.total_points(), 400);
    }

    #[test]
    fn leaf_blocks_are_chained_in_allocation_order() {
        let out = Builder::run(test_config(), uniform_points(1000));
        // Walk the chain from block 0 and count the reachable blocks; all
        // bulk-loaded blocks must be reachable.
        let mut count = 1;
        let mut cur = 0;
        while let Some(next) = out.store.block(cur).next() {
            assert_eq!(next, cur + 1, "bulk blocks must be chained consecutively");
            cur = next;
            count += 1;
        }
        assert_eq!(count, out.store.len());
    }
}
