//! The RSMI index: queries (§4), updates (§5), and statistics.

use crate::build::Builder;
use crate::node::{InternalNode, LeafNode, Node, NodeId};
use crate::pmf::PiecewiseCdf;
use crate::RsmiConfig;
use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use mlp::ScaledRegressor;
use persist::{PersistError, SnapshotReader, SnapshotWriter};
use sfc::CurveKind;
use storage::{BlockId, BlockStore};

/// Section tag of the RSMI metadata (config and counts).
const SECTION_RSMI_META: u32 = 0x5101;
/// Section tag of the RSMI node arena (models, MBRs, block ranges).
const SECTION_RSMI_NODES: u32 = 0x5102;
/// Section tag of the marginal CDFs used by the kNN search region.
const SECTION_RSMI_CDF: u32 = 0x5103;
/// Section tag of the per-leaf maintenance state (drift counters).  The
/// section is optional on read: snapshots written before incremental
/// maintenance existed load with zeroed counters.
const SECTION_RSMI_MAINT: u32 = 0x5104;

/// Summary statistics of a built RSMI (Tables 3 and 4 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct RsmiStats {
    /// Number of indexed points.
    pub n_points: usize,
    /// Structure height (number of model levels).
    pub height: usize,
    /// Total number of learned sub-models.
    pub model_count: usize,
    /// Number of leaf models.
    pub leaf_count: usize,
    /// Average number of sub-models invoked to reach a data block, weighted
    /// by the number of points under each leaf.
    pub avg_depth: f64,
    /// Largest under-prediction bound (`err_ℓ`) over all leaf models.
    pub max_err_below: u64,
    /// Largest over-prediction bound (`err_a`) over all leaf models.
    pub max_err_above: u64,
    /// Total index size in bytes (blocks + models + directory).
    pub size_bytes: usize,
    /// Wall-clock construction time in seconds.
    pub build_seconds: f64,
}

/// The Recursive Spatial Model Index.
///
/// See the crate-level documentation for an overview and a usage example.
/// Window and kNN answers are **approximate** (high recall, no false
/// positives); wrap the index in [`RsmiExact`] for the paper's RSMIa variant
/// with exact answers.  Distance-range queries and distance joins are exact
/// for *both* variants (see [`Rsmi::range_query_exact_visit`]).
#[derive(Debug, Clone)]
pub struct Rsmi {
    config: RsmiConfig,
    nodes: Vec<Node>,
    root: Option<NodeId>,
    store: BlockStore,
    n_points: usize,
    height: usize,
    model_count: usize,
    cdf_x: PiecewiseCdf,
    cdf_y: PiecewiseCdf,
    build_seconds: f64,
    /// Per-node maintenance counters, indexed like `nodes` (internal slots
    /// stay zero).  Not part of query state: drift tracking only.
    maint: Vec<LeafMaint>,
}

/// Drift counters of one leaf model: how far it has degraded since its
/// weights were last trained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LeafMaint {
    /// Inserts + deletes routed through this leaf since its model was
    /// (re)trained.
    ops_since_train: u64,
    /// Error-bound widening below predictions (blocks) applied by in-place
    /// inserts since training.
    widened_below: u64,
    /// Error-bound widening above predictions (blocks).
    widened_above: u64,
}

impl LeafMaint {
    #[inline]
    fn widened_total(&self) -> u64 {
        self.widened_below + self.widened_above
    }
}

/// Per-insert cap on error-bound widening, in blocks: a free slot farther
/// than this outside the predicted range is not worth covering — the insert
/// overflows instead and the accumulated drift triggers a retrain.
const WIDEN_CAP_PER_INSERT: u64 = 4;
/// Per-leaf cap on accumulated widening, in blocks.  Once a leaf has
/// widened this much, the slot-reuse path shuts off (every further insert
/// overflows) until a retrain resets the bounds.
const WIDEN_CAP_PER_LEAF: u64 = 32;

impl Rsmi {
    /// Bulk-loads an RSMI from a point set.
    pub fn build(points: Vec<Point>, config: RsmiConfig) -> Self {
        let start = std::time::Instant::now();
        let n_points = points.len();
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        let cdf_x = PiecewiseCdf::fit(&xs, config.cdf_pieces);
        let cdf_y = PiecewiseCdf::fit(&ys, config.cdf_pieces);
        let out = Builder::run(config, points);
        let maint = vec![LeafMaint::default(); out.nodes.len()];
        Self {
            config,
            nodes: out.nodes,
            root: out.root,
            store: out.store,
            n_points,
            height: out.height,
            model_count: out.model_count,
            cdf_x,
            cdf_y,
            build_seconds: start.elapsed().as_secs_f64(),
            maint,
        }
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> &RsmiConfig {
        &self.config
    }

    /// Statistics of the built structure.
    pub fn stats(&self) -> RsmiStats {
        let mut leaf_count = 0usize;
        let mut max_below = 0u64;
        let mut max_above = 0u64;
        for node in &self.nodes {
            if let Node::Leaf(leaf) = node {
                leaf_count += 1;
                max_below = max_below.max(leaf.model.err_below());
                max_above = max_above.max(leaf.model.err_above());
            }
        }
        RsmiStats {
            n_points: self.n_points,
            height: self.height,
            model_count: self.model_count,
            leaf_count,
            avg_depth: self.average_depth(),
            max_err_below: max_below,
            max_err_above: max_above,
            size_bytes: SpatialIndex::size_bytes(self),
            build_seconds: self.build_seconds,
        }
    }

    /// Average number of sub-models invoked to reach a data block, weighted
    /// by points per leaf (reported in §6.2.2).
    pub fn average_depth(&self) -> f64 {
        let Some(root) = self.root else { return 0.0 };
        let mut total_depth = 0f64;
        let mut total_points = 0f64;
        let mut stack = vec![(root, 1usize)];
        while let Some((id, depth)) = stack.pop() {
            match &self.nodes[id] {
                Node::Internal(n) => {
                    for child in n.children.iter().flatten() {
                        stack.push((*child, depth + 1));
                    }
                }
                Node::Leaf(leaf) => {
                    let pts: usize = (0..leaf.n_blocks)
                        .map(|i| self.store.block(leaf.first_block + i).len())
                        .sum();
                    total_depth += (depth * pts) as f64;
                    total_points += pts as f64;
                }
            }
        }
        if total_points == 0.0 {
            0.0
        } else {
            total_depth / total_points
        }
    }

    /// Collects all live points in storage order (used by rebuild and tests).
    pub fn collect_points(&self) -> Vec<Point> {
        self.store
            .iter()
            .flat_map(|(_, b)| b.iter_points())
            .collect()
    }

    /// Fully rebuilds the index from its current contents.
    ///
    /// This realises the paper's **RSMIr** variant: a periodic rebuild (the
    /// paper retrains the sub-models that exceeded the partition threshold
    /// after every 10 % of insertions; the reproduction rebuilds the whole
    /// structure, which restores optimal layout at a coarser granularity —
    /// see DESIGN.md §2).
    pub fn rebuild(&mut self) {
        let points = self.collect_points();
        let rebuilt = Rsmi::build(points, self.config);
        *self = rebuilt;
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Descends from the root to a leaf following model predictions
    /// (Algorithm 1, lines 1–3), charging one node visit per internal model
    /// invoked.  Returns the path of internal nodes with the child-cell
    /// chosen at each, plus the leaf ID.
    fn descend(
        &self,
        x: f64,
        y: f64,
        cx: &mut QueryContext,
    ) -> Option<(Vec<(NodeId, usize)>, NodeId)> {
        let mut cur = self.root?;
        let mut path = Vec::with_capacity(self.height);
        loop {
            match &self.nodes[cur] {
                Node::Leaf(_) => return Some((path, cur)),
                Node::Internal(node) => {
                    cx.count_node();
                    let j = node.model.predict_xy(x, y) as usize;
                    let (cell, child) = node.nearest_child(j)?;
                    path.push((cur, cell));
                    cur = child;
                }
            }
        }
    }

    fn leaf(&self, id: NodeId) -> &LeafNode {
        match &self.nodes[id] {
            Node::Leaf(l) => l,
            Node::Internal(_) => unreachable!("descend always ends at a leaf"),
        }
    }

    /// Reads a block as part of a query, charging the access and its
    /// candidates to the context.
    #[inline]
    fn read_block(&self, id: BlockId, cx: &mut QueryContext) -> &storage::Block {
        let block = self.store.block(id);
        cx.count_block_scan(block.len());
        block
    }

    // ------------------------------------------------------------------
    // Point queries (§4.1)
    // ------------------------------------------------------------------

    /// Point query (Algorithm 1): returns the indexed point with exactly the
    /// query coordinates, if present.
    pub fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        let (_, leaf_id) = self.descend(q.x, q.y, cx)?;
        let leaf = self.leaf(leaf_id);
        let (lo, hi) = leaf.predicted_range(q.x, q.y);
        for base in lo..=hi {
            for id in self.store.overflow_chain(base) {
                let block = self.read_block(id, cx);
                if let Some(p) = block.find_at(q.x, q.y) {
                    return Some(p);
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Window queries (§4.2)
    // ------------------------------------------------------------------

    /// The anchor points whose predicted blocks bound the scan range: the
    /// bottom-left and top-right corners for Z-ordered data, all four
    /// corners for Hilbert-ordered data (§4.2).
    fn window_anchors(&self, window: &Rect) -> Vec<Point> {
        match self.config.curve {
            CurveKind::Z => vec![
                Point::new(window.min_x, window.min_y),
                Point::new(window.max_x, window.max_y),
            ],
            CurveKind::Hilbert => window.corners().to_vec(),
        }
    }

    /// Predicted global block range `[begin, end]` covering a window, from
    /// the error-bounded predictions of its anchor points.
    fn window_block_range(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
    ) -> Option<(BlockId, BlockId)> {
        let mut begin = usize::MAX;
        let mut end = 0usize;
        for anchor in self.window_anchors(window) {
            let (_, leaf_id) = self.descend(anchor.x, anchor.y, cx)?;
            let leaf = self.leaf(leaf_id);
            let (lo, hi) = leaf.predicted_range(anchor.x, anchor.y);
            begin = begin.min(lo);
            end = end.max(hi);
        }
        if begin == usize::MAX {
            None
        } else {
            Some((begin, end.max(begin)))
        }
    }

    /// Scans the block chain from `begin` through `end` (inclusive),
    /// including overflow blocks spliced into the chain, charging each block
    /// read (and its candidates) to `cx` and calling `f` on every block.
    fn scan_chain(
        &self,
        begin: BlockId,
        end: BlockId,
        cx: &mut QueryContext,
        mut f: impl FnMut(&storage::Block),
    ) {
        let mut cur = Some(begin);
        let mut guard = self.store.len() + 1;
        while let Some(id) = cur {
            let block = self.read_block(id, cx);
            f(block);
            if id == end {
                // Include the overflow blocks chained directly after `end`.
                let mut next = block.next();
                while let Some(n) = next {
                    if !self.store.block(n).is_overflow() {
                        break;
                    }
                    let ov = self.read_block(n, cx);
                    f(ov);
                    next = ov.next();
                }
                break;
            }
            cur = block.next();
            guard -= 1;
            if guard == 0 {
                break;
            }
        }
    }

    /// Window query (Algorithm 2), visitor form.
    ///
    /// The answer is **approximate**: it never contains points outside the
    /// window (results are filtered), but points whose blocks fall outside
    /// the predicted scan range may be missed.  The paper reports recall
    /// above 87 % across all settings; use [`Rsmi::window_query_exact_visit`]
    /// (or the [`RsmiExact`] wrapper) when exact answers are required.
    pub fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        let Some((begin, end)) = self.window_block_range(window, cx) else {
            return;
        };
        self.scan_chain(begin, end, cx, |block| {
            block.for_each_in_rect(window, |p| visit(&p));
        });
    }

    /// Exact window query — the paper's **RSMIa** variant: an R-tree-style
    /// traversal over the MBRs stored with every sub-model.
    pub fn window_query_exact_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Internal(node) => {
                    // One "node access" per internal node visited, so total
                    // accesses remain comparable with the tree baselines.
                    cx.count_node();
                    for (cell, child) in node.children.iter().enumerate() {
                        if let Some(c) = child {
                            if node.child_mbrs[cell].intersects(window) {
                                stack.push(*c);
                            }
                        }
                    }
                }
                Node::Leaf(leaf) => {
                    if !leaf.mbr.intersects(window) {
                        continue;
                    }
                    for i in 0..leaf.n_blocks {
                        for id in self.store.overflow_chain(leaf.first_block + i) {
                            // The MBR test reads the block's points, so the
                            // block access is charged even when it prunes.
                            cx.count_block();
                            let block = self.store.block(id);
                            if !block.mbr().intersects(window) {
                                continue;
                            }
                            cx.count_candidates(block.len());
                            block.for_each_in_rect(window, |p| visit(&p));
                        }
                    }
                }
            }
        }
    }

    /// Exact window query returning a fresh vector.
    pub fn window_query_exact(&self, window: &Rect, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::new();
        self.window_query_exact_visit(window, cx, &mut |p| out.push(*p));
        out
    }

    // ------------------------------------------------------------------
    // Distance-range queries and joins (exact for both RSMI variants)
    // ------------------------------------------------------------------

    /// Exact distance-range query: an R-tree-style `MINDIST` traversal over
    /// the MBRs stored with every sub-model (the same machinery as the
    /// RSMIa window/kNN variants).
    ///
    /// Unlike window and kNN queries, distance-range answers are exact for
    /// *both* RSMI variants: the learned scan-range prediction cannot bound
    /// a circle (curve values inside a Hilbert window are not bracketed by
    /// its corners), so the trait's distance queries always take this
    /// MBR-guided path and are held to the brute-force oracle by the
    /// conformance tests.
    pub fn range_query_exact_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Internal(node) => {
                    cx.count_node();
                    for (cell, child) in node.children.iter().enumerate() {
                        if let Some(c) = child {
                            if node.child_mbrs[cell].min_dist_sq(center) <= r_sq {
                                stack.push(*c);
                            }
                        }
                    }
                }
                Node::Leaf(leaf) => {
                    if leaf.mbr.min_dist_sq(center) > r_sq {
                        continue;
                    }
                    for i in 0..leaf.n_blocks {
                        for b in self.store.overflow_chain(leaf.first_block + i) {
                            // The MBR test reads the block's points, so the
                            // block access is charged even when it prunes.
                            cx.count_block();
                            let block = self.store.block(b);
                            if block.mbr().min_dist_sq(center) > r_sq {
                                continue;
                            }
                            cx.count_candidates(block.len());
                            block.for_each_within(center, r_sq, |p, _| visit(&p));
                        }
                    }
                }
            }
        }
    }

    /// Exact index-nested join worker over an explicit probe set: one
    /// traversal of the model tree carries every probe, each node's MBR
    /// discarding the probes beyond the radius before descending (the
    /// learned directory doubles as the join's pruning directory), and each
    /// surviving block is read once for all probes that reach it.
    pub fn distance_join_probes_visit(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        let mut stack = vec![(root, probes.to_vec())];
        while let Some((id, cand)) = stack.pop() {
            match &self.nodes[id] {
                Node::Internal(node) => {
                    cx.count_node();
                    for (cell, child) in node.children.iter().enumerate() {
                        if let Some(c) = child {
                            let mut kept = Vec::new();
                            storage::kernels::probes_within(
                                &cand,
                                &node.child_mbrs[cell],
                                r_sq,
                                &mut kept,
                            );
                            if !kept.is_empty() {
                                stack.push((*c, kept));
                            }
                        }
                    }
                }
                Node::Leaf(leaf) => {
                    if cand.iter().all(|q| leaf.mbr.min_dist_sq(q) > r_sq) {
                        continue;
                    }
                    for i in 0..leaf.n_blocks {
                        for b in self.store.overflow_chain(leaf.first_block + i) {
                            cx.count_block();
                            let block = self.store.block(b);
                            let mbr = block.mbr();
                            let mut kept = Vec::new();
                            storage::kernels::probes_within(&cand, &mbr, r_sq, &mut kept);
                            if kept.is_empty() {
                                continue;
                            }
                            cx.count_candidates(block.len());
                            if let [q] = kept.as_slice() {
                                // Single surviving probe: the vectorized
                                // radius filter preserves the (point-major)
                                // visit order.
                                let q = *q;
                                block.for_each_within(&q, r_sq, |p, _| visit(&p, &q));
                            } else {
                                for p in block.iter_points() {
                                    for q in &kept {
                                        if p.dist_sq(q) <= r_sq {
                                            visit(&p, q);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // kNN queries (§4.3)
    // ------------------------------------------------------------------

    /// Approximate kNN query (Algorithm 3), visitor form: search-region
    /// expansion around the query point, with the initial region sized by
    /// the learned marginal CDFs (Equation 6).  Visits results closest
    /// first.
    pub fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if k == 0 || self.n_points == 0 || self.root.is_none() {
            return;
        }
        let k_eff = k.min(self.n_points);
        let delta = 0.01;
        let alpha_x = self.cdf_x.alpha(q.x, delta);
        let alpha_y = self.cdf_y.alpha(q.y, delta);
        let base = (k_eff as f64 / self.n_points as f64).sqrt();
        let mut width = (alpha_x * base).min(2.0);
        let mut height = (alpha_y * base).min(2.0);

        // Best-k list kept sorted by distance (k is small; linear insertion
        // is cheaper than a heap for the paper's k ≤ 625).
        let mut best: Vec<(f64, Point)> = Vec::with_capacity(k_eff + 1);

        loop {
            let window = Rect::centered(q.x, q.y, width, height);
            if let Some((begin, end)) = self.window_block_range(&window, cx) {
                let kth = |best: &Vec<(f64, Point)>| {
                    if best.len() < k_eff {
                        f64::INFINITY
                    } else {
                        best[k_eff - 1].0
                    }
                };
                self.scan_chain(begin, end, cx, |block| {
                    let dist_bound = kth(&best);
                    if best.len() >= k_eff && block.mbr().min_dist(q) >= dist_bound {
                        return;
                    }
                    block.for_each_dist_sq(q, |p, d_sq| {
                        let d = d_sq.sqrt();
                        if best.len() < k_eff || d < kth(&best) {
                            // Expansion rounds re-scan earlier blocks: an
                            // exact (distance, id) hit means this point was
                            // already collected — inserting it again would
                            // evict a genuine neighbour.
                            if let Err(pos) = best.binary_search_by(|(bd, bp)| {
                                bd.partial_cmp(&d)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    .then(bp.id.cmp(&p.id))
                            }) {
                                best.insert(pos, (d, p));
                                if best.len() > k_eff {
                                    best.pop();
                                }
                            }
                        }
                    });
                });
            }

            let covers_space = width >= 2.0 && height >= 2.0;
            if best.len() < k_eff {
                if covers_space {
                    // The learned routing missed some blocks even for a
                    // space-covering window; fall back to a full scan so the
                    // result is always k points.
                    self.full_scan_knn(q, k_eff, cx, &mut best);
                    break;
                }
                width = (width * 2.0).min(2.0);
                height = (height * 2.0).min(2.0);
                continue;
            }
            let dk = best[k_eff - 1].0;
            let half_diag = (width * width + height * height).sqrt() / 2.0;
            if dk > half_diag && !covers_space {
                width = (2.0 * dk).min(2.0);
                height = (2.0 * dk).min(2.0);
                continue;
            }
            break;
        }
        for (_, p) in &best {
            visit(p);
        }
    }

    fn full_scan_knn(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        best: &mut Vec<(f64, Point)>,
    ) {
        best.clear();
        for (id, _) in self.store.iter() {
            let block = self.read_block(id, cx);
            block.for_each_dist_sq(q, |p, d_sq| {
                let d = d_sq.sqrt();
                let pos = best
                    .binary_search_by(|(bd, bp)| {
                        bd.partial_cmp(&d)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(bp.id.cmp(&p.id))
                    })
                    .unwrap_or_else(|e| e);
                if pos < k {
                    best.insert(pos, (d, p));
                    if best.len() > k {
                        best.pop();
                    }
                }
            });
        }
    }

    /// Exact kNN query, visitor form — the RSMIa variant: a best-first
    /// traversal over the sub-model MBRs (the classical algorithm of
    /// Roussopoulos et al.).  Visits results closest first.
    pub fn knn_query_exact_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        struct Entry {
            dist: f64,
            /// `(container-before-point, point id)`: equal-distance points
            /// emit deterministically in id order, and containers at the
            /// same distance expand first so tied points inside them still
            /// compete.
            tie: (bool, u64),
            kind: EntryKind,
        }
        #[derive(PartialEq)]
        enum EntryKind {
            Node(NodeId),
            Block(BlockId),
            Point(Point),
        }
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist
                    .partial_cmp(&other.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.tie.cmp(&other.tie))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        if k == 0 {
            return;
        }
        let Some(root) = self.root else { return };
        let mut found = 0usize;
        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        heap.push(Reverse(Entry {
            dist: self.nodes[root].mbr().min_dist(q),
            tie: (false, 0),
            kind: EntryKind::Node(root),
        }));
        while let Some(Reverse(entry)) = heap.pop() {
            match entry.kind {
                EntryKind::Point(p) => {
                    visit(&p);
                    found += 1;
                    if found == k {
                        break;
                    }
                }
                EntryKind::Block(id) => {
                    let block = self.read_block(id, cx);
                    block.for_each_dist_sq(q, |p, d_sq| {
                        heap.push(Reverse(Entry {
                            dist: d_sq.sqrt(),
                            tie: (true, p.id),
                            kind: EntryKind::Point(p),
                        }));
                    });
                }
                EntryKind::Node(id) => match &self.nodes[id] {
                    Node::Internal(node) => {
                        cx.count_node();
                        for (cell, child) in node.children.iter().enumerate() {
                            if let Some(c) = child {
                                heap.push(Reverse(Entry {
                                    dist: node.child_mbrs[cell].min_dist(q),
                                    tie: (false, 0),
                                    kind: EntryKind::Node(*c),
                                }));
                            }
                        }
                    }
                    Node::Leaf(leaf) => {
                        cx.count_node();
                        for i in 0..leaf.n_blocks {
                            for b in self.store.overflow_chain(leaf.first_block + i) {
                                let dist = self.store.block(b).mbr().min_dist(q);
                                heap.push(Reverse(Entry {
                                    dist,
                                    tie: (false, 0),
                                    kind: EntryKind::Block(b),
                                }));
                            }
                        }
                    }
                },
            }
        }
    }

    /// Exact kNN query returning a fresh vector, closest first.
    pub fn knn_query_exact(&self, q: &Point, k: usize, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::with_capacity(k);
        self.knn_query_exact_visit(q, k, cx, &mut |p| out.push(*p));
        out
    }

    // ------------------------------------------------------------------
    // Updates (§5)
    // ------------------------------------------------------------------

    /// Inserts a point.
    ///
    /// The point is placed in the block predicted by the index; if that
    /// block (and the overflow blocks already chained after it) is full, a
    /// new overflow block is spliced in after it.  MBRs along the routing
    /// path are enlarged so the exact-query variants stay correct.
    pub fn insert(&mut self, p: Point) {
        if self.root.is_none() {
            *self = Rsmi::build(vec![p], self.config);
            return;
        }
        // Updates are maintenance, not queries: route with a throwaway
        // context so nothing is charged to any caller's statistics.
        let mut scratch = QueryContext::new();
        let Some((path, leaf_id)) = self.descend(p.x, p.y, &mut scratch) else {
            return;
        };
        // Enlarge MBRs along the path (§5: "recursively update the MBRs of
        // the ancestor models").
        for (node_id, cell) in &path {
            if let Node::Internal(node) = &mut self.nodes[*node_id] {
                node.mbr.expand_to_point(p);
                node.child_mbrs[*cell].expand_to_point(p);
            }
        }
        let (predicted, leaf_first, leaf_blocks) = {
            let leaf = self.leaf(leaf_id);
            (
                leaf.global_block(leaf.model.predict_xy(p.x, p.y)),
                leaf.first_block,
                leaf.n_blocks,
            )
        };
        debug_assert!(predicted >= leaf_first && predicted < leaf_first + leaf_blocks);
        if let Node::Leaf(leaf) = &mut self.nodes[leaf_id] {
            leaf.mbr.expand_to_point(p);
        }
        // Find space in the predicted block or its overflow chain.
        let chain = self.store.overflow_chain(predicted);
        let mut target = None;
        for id in &chain {
            if !self.store.block(*id).is_full() {
                target = Some(*id);
                break;
            }
        }
        // The predicted chain is full: before growing it with a fresh
        // overflow block, try a free slot in another of the leaf's bulk
        // blocks (freed by deletes, or the bulk tail), widening the model's
        // error bounds just enough to keep the point findable.  Bounded
        // widening instead of chain growth; the next drift-triggered retrain
        // reclaims the slack.
        let target = match target {
            Some(id) => id,
            None => match self.reusable_leaf_slot(leaf_id, &p) {
                Some(alt) => alt,
                None => self
                    .store
                    .insert_overflow_after(*chain.last().expect("chain contains the base block")),
            },
        };
        self.store.block_mut(target).push(p);
        self.n_points += 1;
        self.maint[leaf_id].ops_since_train += 1;
    }

    /// A non-full bulk block of `leaf_id` that can absorb `p` for at most
    /// [`WIDEN_CAP_PER_INSERT`] blocks of error-bound widening (zero if the
    /// block is already inside the predicted range), or `None` if no such
    /// slot exists or the leaf has exhausted [`WIDEN_CAP_PER_LEAF`].
    /// Applies the widening and charges it to the leaf's drift counters.
    fn reusable_leaf_slot(&mut self, leaf_id: NodeId, p: &Point) -> Option<BlockId> {
        if self.maint[leaf_id].widened_total() >= WIDEN_CAP_PER_LEAF {
            return None;
        }
        let (first, n_blocks, pred_lo, pred_hi) = {
            let leaf = self.leaf(leaf_id);
            let (lo, hi) = leaf.predicted_range(p.x, p.y);
            (leaf.first_block, leaf.n_blocks, lo, hi)
        };
        // Nearest free bulk block, measured in blocks of widening required.
        let mut best: Option<(u64, BlockId)> = None;
        for i in 0..n_blocks {
            let base = first + i;
            if self.store.block(base).is_full() {
                continue;
            }
            let dist = if base < pred_lo {
                (pred_lo - base) as u64
            } else if base > pred_hi {
                (base - pred_hi) as u64
            } else {
                0
            };
            if dist > WIDEN_CAP_PER_INSERT {
                continue;
            }
            if best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, base));
            }
        }
        let (_, base) = best?;
        let offset = (base - first) as u64;
        if let Node::Leaf(leaf) = &mut self.nodes[leaf_id] {
            let (extra_below, extra_above) = leaf.model.widen_to_cover_xy(p.x, p.y, offset);
            self.maint[leaf_id].widened_below += extra_below;
            self.maint[leaf_id].widened_above += extra_above;
        }
        Some(base)
    }

    /// Deletes the point with the given coordinates and id.  Returns whether
    /// a point was removed.  Blocks are never shrunk (§5), so error bounds
    /// remain valid; the freed slot is reused by later insertions.
    pub fn delete(&mut self, p: &Point) -> bool {
        let mut scratch = QueryContext::new();
        let Some((_, leaf_id)) = self.descend(p.x, p.y, &mut scratch) else {
            return false;
        };
        let leaf = self.leaf(leaf_id);
        let (lo, hi) = leaf.predicted_range(p.x, p.y);
        for base in lo..=hi {
            for id in self.store.overflow_chain(base) {
                let found = {
                    let block = self.store.block(id);
                    block.find_at(p.x, p.y).map(|q| q.id)
                };
                if let Some(found_id) = found {
                    if found_id == p.id || p.id == 0 {
                        self.store.block_mut(id).remove_by_id(found_id);
                        self.n_points -= 1;
                        self.maint[leaf_id].ops_since_train += 1;
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Number of overflow blocks created by insertions since the last
    /// (re)build — the `I` of the paper's update cost analysis.
    pub fn overflow_block_count(&self) -> usize {
        self.store.iter().filter(|(_, b)| b.is_overflow()).count()
    }

    /// Read access to the underlying block store.
    pub fn block_store(&self) -> &BlockStore {
        &self.store
    }

    // ------------------------------------------------------------------
    // Incremental maintenance (drift-triggered partial rebuilds)
    // ------------------------------------------------------------------

    /// Drift score of one leaf: `ops / (n_blocks · B) + widened / n_blocks`
    /// — mutations normalised by the leaf's bulk capacity, plus error-bound
    /// widening normalised by its block count.  A score of 1.0 means the
    /// leaf has absorbed as many mutations as it holds points, or its scan
    /// range has doubled; either way its model is due for a retrain.
    fn leaf_drift(&self, leaf_id: NodeId) -> f64 {
        let m = &self.maint[leaf_id];
        if m.ops_since_train == 0 && m.widened_total() == 0 {
            return 0.0;
        }
        let leaf = self.leaf(leaf_id);
        let n_blocks = leaf.n_blocks.max(1) as f64;
        let capacity_points = n_blocks * self.store.capacity().max(1) as f64;
        m.ops_since_train as f64 / capacity_points + m.widened_total() as f64 / n_blocks
    }

    /// Aggregate maintenance state over all leaf models.  `stale_subtrees`
    /// counts leaves whose drift (see `leaf_drift`) has reached 1.0.
    pub fn maintenance_stats(&self) -> common::MaintenanceStats {
        let mut s = common::MaintenanceStats::default();
        for (id, node) in self.nodes.iter().enumerate() {
            if !matches!(node, Node::Leaf(_)) {
                continue;
            }
            s.subtrees += 1;
            let m = &self.maint[id];
            s.ops_since_train += m.ops_since_train;
            s.widened_below += m.widened_below;
            s.widened_above += m.widened_above;
            if self.leaf_drift(id) >= 1.0 {
                s.stale_subtrees += 1;
            }
        }
        s
    }

    /// Retrains the leaf models whose drift meets `budget.drift_threshold`,
    /// most-drifted first (ties by node id), retraining at most
    /// `budget.max_subtrees` of them — the incremental realisation of the
    /// paper's RSMIr hook (§5: retrain the sub-models that degraded, not the
    /// whole structure).
    ///
    /// A retrain fits a fresh model on each point's *actual* home block, so
    /// the new error bounds cover every stored point by construction and all
    /// accumulated widening is reclaimed.  The structure (routing models,
    /// MBRs, block chains) is untouched: answers are identical before and
    /// after, only scan ranges tighten.  Overflow blocks are not reclaimed —
    /// only a full [`rebuild`](Self::rebuild) repacks storage.
    pub fn rebuild_partial(
        &mut self,
        budget: &common::MaintenanceBudget,
    ) -> common::MaintenanceOutcome {
        let mut stale: Vec<(NodeId, f64)> = (0..self.nodes.len())
            .filter(|&id| matches!(self.nodes[id], Node::Leaf(_)))
            .filter_map(|id| {
                let drift = self.leaf_drift(id);
                (drift > 0.0 && drift >= budget.drift_threshold).then_some((id, drift))
            })
            .collect();
        stale.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let take = budget.max_subtrees.min(stale.len());
        for &(id, _) in &stale[..take] {
            self.retrain_leaf(id);
        }
        common::MaintenanceOutcome {
            full_rebuild: false,
            subtrees_rebuilt: take,
            subtrees_deferred: stale.len() - take,
        }
    }

    /// Refits one leaf's model on the `(coordinates → home block offset)`
    /// pairs of every point currently stored under the leaf (bulk blocks and
    /// their overflow chains), then resets its drift counters.  Deterministic
    /// for a given store state: the fit seed derives from the build seed and
    /// the leaf id.
    fn retrain_leaf(&mut self, leaf_id: NodeId) {
        let (first, n_blocks) = {
            let leaf = self.leaf(leaf_id);
            (leaf.first_block, leaf.n_blocks)
        };
        let mut inputs: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<u64> = Vec::new();
        for i in 0..n_blocks {
            for id in self.store.overflow_chain(first + i) {
                for p in self.store.block(id).iter_points() {
                    inputs.push(vec![p.x, p.y]);
                    targets.push(i as u64);
                }
            }
        }
        self.maint[leaf_id] = LeafMaint::default();
        if inputs.is_empty() {
            return;
        }
        let mut cfg = mlp::MlpConfig::for_coordinates(n_blocks.max(1));
        cfg.epochs = self.config.epochs;
        cfg.learning_rate = self.config.learning_rate;
        cfg.seed = self
            .config
            .seed
            .wrapping_add(leaf_id as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let model = ScaledRegressor::fit(cfg, &inputs, &targets);
        if let Node::Leaf(leaf) = &mut self.nodes[leaf_id] {
            leaf.model = model;
        }
    }

    /// Counts stored points whose home block lies outside the predicted
    /// range of their leaf's model — the error-bound soundness invariant
    /// (zero means every point is reachable by a point query).  Test/debug
    /// helper; walks all blocks.
    pub fn bounds_violations(&self) -> usize {
        let mut violations = 0;
        for node in &self.nodes {
            let Node::Leaf(leaf) = node else { continue };
            for i in 0..leaf.n_blocks {
                let base = leaf.first_block + i;
                for id in self.store.overflow_chain(base) {
                    for p in self.store.block(id).iter_points() {
                        let (lo, hi) = leaf.predicted_range(p.x, p.y);
                        if base < lo || base > hi {
                            violations += 1;
                        }
                    }
                }
            }
        }
        violations
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Appends the complete structure (config, blocks, node arena with all
    /// trained sub-models, marginal CDFs) to a snapshot.  Loading never
    /// retrains anything: the saved weights and error bounds are served
    /// as-is.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.begin_section(SECTION_RSMI_META);
        w.put_usize(self.config.block_capacity);
        w.put_usize(self.config.partition_threshold);
        w.put_u8(curve_tag(self.config.curve));
        w.put_usize(self.config.epochs);
        w.put_f64(self.config.learning_rate);
        w.put_u64(self.config.seed);
        w.put_bool(self.config.use_rank_space);
        w.put_bool(self.config.group_by_prediction);
        w.put_usize(self.config.cdf_pieces);
        w.put_usize(self.config.max_depth);
        w.put_opt_usize(self.root);
        w.put_usize(self.n_points);
        w.put_usize(self.height);
        w.put_usize(self.model_count);
        w.put_f64(self.build_seconds);
        w.end_section();

        self.store.write_snapshot(w);

        w.begin_section(SECTION_RSMI_NODES);
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Internal(n) => {
                    w.put_u8(0);
                    n.model.encode(w);
                    w.put_usize(n.children.len());
                    for child in &n.children {
                        w.put_opt_usize(*child);
                    }
                    for mbr in &n.child_mbrs {
                        w.put_rect(mbr);
                    }
                    w.put_rect(&n.mbr);
                }
                Node::Leaf(leaf) => {
                    w.put_u8(1);
                    leaf.model.encode(w);
                    w.put_usize(leaf.first_block);
                    w.put_usize(leaf.n_blocks);
                    w.put_rect(&leaf.mbr);
                }
            }
        }
        w.end_section();

        w.begin_section(SECTION_RSMI_CDF);
        self.cdf_x.encode(w);
        self.cdf_y.encode(w);
        w.end_section();

        // Drift state: written last so pre-maintenance readers (and the
        // reader below, for pre-maintenance snapshots) can treat it as
        // optional.
        w.begin_section(SECTION_RSMI_MAINT);
        w.put_usize(self.maint.len());
        for m in &self.maint {
            w.put_u64(m.ops_since_train);
            w.put_u64(m.widened_below);
            w.put_u64(m.widened_above);
        }
        w.end_section();
    }

    /// Reads an RSMI snapshot written by [`Rsmi::encode_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.begin_section(SECTION_RSMI_META)?;
        let config = RsmiConfig {
            block_capacity: r.get_usize()?,
            partition_threshold: r.get_usize()?,
            curve: curve_from_tag(r.get_u8()?)?,
            epochs: r.get_usize()?,
            learning_rate: r.get_f64()?,
            seed: r.get_u64()?,
            use_rank_space: r.get_bool()?,
            group_by_prediction: r.get_bool()?,
            cdf_pieces: r.get_usize()?,
            max_depth: r.get_usize()?,
        };
        let root = r.get_opt_usize()?;
        let n_points = r.get_usize()?;
        let height = r.get_usize()?;
        let model_count = r.get_usize()?;
        let build_seconds = r.get_f64()?;
        r.end_section()?;

        let store = BlockStore::read_snapshot(r)?;

        r.begin_section(SECTION_RSMI_NODES)?;
        let n_nodes = r.get_len(1)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let node = match r.get_u8()? {
                0 => {
                    let model = ScaledRegressor::decode(r)?;
                    let len = r.get_len(1)?;
                    let mut children = Vec::with_capacity(len);
                    for _ in 0..len {
                        let child = r.get_opt_usize()?;
                        if child.is_some_and(|c| c >= n_nodes) {
                            return Err(PersistError::Corrupt(
                                "RSMI child node out of range".into(),
                            ));
                        }
                        children.push(child);
                    }
                    let mut child_mbrs = Vec::with_capacity(len);
                    for _ in 0..len {
                        child_mbrs.push(r.get_rect()?);
                    }
                    let mbr = r.get_rect()?;
                    Node::Internal(InternalNode {
                        model,
                        children,
                        child_mbrs,
                        mbr,
                    })
                }
                1 => {
                    let model = ScaledRegressor::decode(r)?;
                    let first_block = r.get_usize()?;
                    let n_blocks = r.get_usize()?;
                    if n_blocks > 0
                        && first_block
                            .checked_add(n_blocks)
                            .is_none_or(|end| end > store.len())
                    {
                        return Err(PersistError::Corrupt(
                            "RSMI leaf block range out of range".into(),
                        ));
                    }
                    let mbr = r.get_rect()?;
                    Node::Leaf(LeafNode {
                        model,
                        first_block,
                        n_blocks,
                        mbr,
                    })
                }
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "unknown RSMI node kind byte {other}"
                    )))
                }
            };
            nodes.push(node);
        }
        if root.is_some_and(|root| root >= n_nodes) {
            return Err(PersistError::Corrupt("RSMI root out of range".into()));
        }
        r.end_section()?;

        r.begin_section(SECTION_RSMI_CDF)?;
        let cdf_x = PiecewiseCdf::decode(r)?;
        let cdf_y = PiecewiseCdf::decode(r)?;
        r.end_section()?;

        // Optional trailing drift state: snapshots written before
        // incremental maintenance existed (or truncated right after the CDF
        // section) load with zeroed counters — maintenance state defaults
        // sanely.
        let maint = if r.remaining() >= 4 && r.peek_section_tag()? == SECTION_RSMI_MAINT {
            r.begin_section(SECTION_RSMI_MAINT)?;
            let len = r.get_len(24)?;
            if len != nodes.len() {
                return Err(PersistError::Corrupt(
                    "RSMI maintenance table length mismatch".into(),
                ));
            }
            let mut maint = Vec::with_capacity(len);
            for _ in 0..len {
                maint.push(LeafMaint {
                    ops_since_train: r.get_u64()?,
                    widened_below: r.get_u64()?,
                    widened_above: r.get_u64()?,
                });
            }
            r.end_section()?;
            maint
        } else {
            vec![LeafMaint::default(); nodes.len()]
        };

        Ok(Self {
            config,
            nodes,
            root,
            store,
            n_points,
            height,
            model_count,
            cdf_x,
            cdf_y,
            build_seconds,
            maint,
        })
    }
}

fn curve_tag(curve: CurveKind) -> u8 {
    match curve {
        CurveKind::Z => 0,
        CurveKind::Hilbert => 1,
    }
}

fn curve_from_tag(tag: u8) -> Result<CurveKind, PersistError> {
    match tag {
        0 => Ok(CurveKind::Z),
        1 => Ok(CurveKind::Hilbert),
        other => Err(PersistError::Corrupt(format!("unknown curve tag {other}"))),
    }
}

impl SpatialIndex for Rsmi {
    fn name(&self) -> &'static str {
        "RSMI"
    }

    fn len(&self) -> usize {
        self.n_points
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        Rsmi::point_query(self, q, cx)
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        Rsmi::window_query_visit(self, window, cx, visit)
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        Rsmi::knn_query_visit(self, q, k, cx, visit)
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        Rsmi::range_query_exact_visit(self, center, radius, cx, visit)
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        for (_, block) in self.store.iter() {
            for p in block.iter_points() {
                visit(&p);
            }
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        Rsmi::distance_join_probes_visit(self, probes, radius, cx, visit)
    }

    fn insert(&mut self, p: Point) {
        Rsmi::insert(self, p)
    }

    fn delete(&mut self, p: &Point) -> bool {
        Rsmi::delete(self, p)
    }

    fn rebuild(&mut self) {
        Rsmi::rebuild(self)
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
            + self.nodes.iter().map(Node::size_bytes).sum::<usize>()
            + self.cdf_x.size_bytes()
            + self.cdf_y.size_bytes()
    }

    fn height(&self) -> usize {
        self.height
    }

    fn model_count(&self) -> usize {
        self.model_count
    }

    fn model_error_bounds(&self) -> Option<(u64, u64)> {
        let stats = self.stats();
        Some((stats.max_err_below, stats.max_err_above))
    }

    fn maintenance_stats(&self) -> Option<common::MaintenanceStats> {
        Some(Rsmi::maintenance_stats(self))
    }

    fn rebuild_partial(
        &mut self,
        budget: &common::MaintenanceBudget,
    ) -> common::MaintenanceOutcome {
        Rsmi::rebuild_partial(self, budget)
    }

    fn clone_index(&self) -> Option<Box<dyn SpatialIndex>> {
        Some(Box::new(self.clone()))
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        self.encode_snapshot(w);
        Ok(())
    }
}

/// The paper's **RSMIa** variant: the same structure as [`Rsmi`], answering
/// window and kNN queries *exactly* through an MBR-guided traversal instead
/// of the learned scan-range prediction.
///
/// The wrapper shares no state with other indices — it owns its `Rsmi` — so
/// the registry can hand it out as an independent `Box<dyn SpatialIndex>`.
#[derive(Debug, Clone)]
pub struct RsmiExact(Rsmi);

impl RsmiExact {
    /// Bulk-loads the underlying RSMI.
    pub fn build(points: Vec<Point>, config: RsmiConfig) -> Self {
        Self(Rsmi::build(points, config))
    }

    /// Wraps an already-built RSMI.
    pub fn from_rsmi(inner: Rsmi) -> Self {
        Self(inner)
    }

    /// The wrapped index.
    pub fn inner(&self) -> &Rsmi {
        &self.0
    }

    /// Unwraps into the plain (approximate) index.
    pub fn into_inner(self) -> Rsmi {
        self.0
    }

    /// Reads an RSMIa snapshot: the identical structure record as
    /// [`Rsmi::read_snapshot`] (the variant differs only in its query
    /// traversal, which the kind tag selects at load time).
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self(Rsmi::read_snapshot(r)?))
    }
}

impl SpatialIndex for RsmiExact {
    fn name(&self) -> &'static str {
        "RSMIa"
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        self.0.point_query(q, cx)
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        self.0.window_query_exact_visit(window, cx, visit)
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        self.0.knn_query_exact_visit(q, k, cx, visit)
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        self.0.range_query_exact_visit(center, radius, cx, visit)
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        SpatialIndex::for_each_point(&self.0, visit)
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        self.0.distance_join_probes_visit(probes, radius, cx, visit)
    }

    fn insert(&mut self, p: Point) {
        self.0.insert(p)
    }

    fn delete(&mut self, p: &Point) -> bool {
        self.0.delete(p)
    }

    fn rebuild(&mut self) {
        self.0.rebuild()
    }

    fn size_bytes(&self) -> usize {
        SpatialIndex::size_bytes(&self.0)
    }

    fn height(&self) -> usize {
        SpatialIndex::height(&self.0)
    }

    fn model_count(&self) -> usize {
        SpatialIndex::model_count(&self.0)
    }

    fn model_error_bounds(&self) -> Option<(u64, u64)> {
        SpatialIndex::model_error_bounds(&self.0)
    }

    fn maintenance_stats(&self) -> Option<common::MaintenanceStats> {
        Some(Rsmi::maintenance_stats(&self.0))
    }

    fn rebuild_partial(
        &mut self,
        budget: &common::MaintenanceBudget,
    ) -> common::MaintenanceOutcome {
        Rsmi::rebuild_partial(&mut self.0, budget)
    }

    fn clone_index(&self) -> Option<Box<dyn SpatialIndex>> {
        Some(Box::new(self.clone()))
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        self.0.encode_snapshot(w);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::{brute_force, metrics};

    fn grid_points(side: usize) -> Vec<Point> {
        let mut pts = Vec::with_capacity(side * side);
        for i in 0..side {
            for j in 0..side {
                pts.push(Point::with_id(
                    (i as f64 + 0.5) / side as f64,
                    (j as f64 + 0.5) / side as f64,
                    (i * side + j) as u64,
                ));
            }
        }
        pts
    }

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut pts = Vec::with_capacity(n);
        for id in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = (state >> 11) as f64 / (1u64 << 53) as f64;
            pts.push(Point::with_id(x, y, id as u64));
        }
        pts
    }

    fn small_config() -> RsmiConfig {
        RsmiConfig {
            block_capacity: 16,
            partition_threshold: 300,
            epochs: 20,
            learning_rate: 0.3,
            ..RsmiConfig::default()
        }
    }

    fn cx() -> QueryContext {
        QueryContext::new()
    }

    #[test]
    fn every_indexed_point_is_found_by_a_point_query() {
        let pts = pseudo_random_points(1200, 3);
        let index = Rsmi::build(pts.clone(), small_config());
        let mut c = cx();
        for p in &pts {
            let found = index.point_query(p, &mut c);
            assert!(found.is_some(), "point {:?} not found", p);
            assert_eq!(found.unwrap().id, p.id);
        }
    }

    #[test]
    fn point_query_misses_points_that_were_never_inserted() {
        let pts = grid_points(20);
        let index = Rsmi::build(pts, small_config());
        assert!(index
            .point_query(&Point::new(0.003, 0.0071), &mut cx())
            .is_none());
    }

    #[test]
    fn empty_index_answers_queries_gracefully() {
        let index = Rsmi::build(vec![], small_config());
        let mut c = cx();
        assert_eq!(index.len(), 0);
        assert!(index.point_query(&Point::new(0.5, 0.5), &mut c).is_none());
        assert!(SpatialIndex::window_query(&index, &Rect::unit(), &mut c).is_empty());
        assert!(SpatialIndex::knn_query(&index, &Point::new(0.5, 0.5), 3, &mut c).is_empty());
        assert!(index.window_query_exact(&Rect::unit(), &mut c).is_empty());
        assert!(index
            .knn_query_exact(&Point::new(0.5, 0.5), 3, &mut c)
            .is_empty());
    }

    #[test]
    fn window_query_has_no_false_positives_and_good_recall() {
        let pts = pseudo_random_points(2000, 9);
        let index = Rsmi::build(pts.clone(), small_config());
        let windows = [
            Rect::new(0.1, 0.1, 0.3, 0.25),
            Rect::new(0.4, 0.4, 0.6, 0.6),
            Rect::new(0.0, 0.0, 1.0, 0.05),
            Rect::new(0.72, 0.11, 0.93, 0.37),
        ];
        let mut recalls = Vec::new();
        let mut c = cx();
        for w in &windows {
            let truth = brute_force::window_query(&pts, w);
            let got = SpatialIndex::window_query(&index, w, &mut c);
            assert_eq!(metrics::false_positive_rate(&got, &truth), 0.0);
            recalls.push(metrics::recall(&got, &truth));
        }
        let avg = metrics::mean(&recalls);
        assert!(avg > 0.8, "average recall too low: {avg} ({recalls:?})");
    }

    #[test]
    fn exact_window_query_matches_brute_force() {
        let pts = pseudo_random_points(1500, 5);
        let index = Rsmi::build(pts.clone(), small_config());
        let mut c = cx();
        for w in [
            Rect::new(0.2, 0.3, 0.5, 0.6),
            Rect::new(0.0, 0.0, 0.1, 1.0),
            Rect::new(0.9, 0.9, 1.0, 1.0),
        ] {
            let mut truth: Vec<u64> = brute_force::window_query(&pts, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut got: Vec<u64> = index
                .window_query_exact(&w, &mut c)
                .iter()
                .map(|p| p.id)
                .collect();
            truth.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, truth);
        }
    }

    #[test]
    fn exact_knn_matches_brute_force_distances() {
        let pts = pseudo_random_points(800, 7);
        let index = Rsmi::build(pts.clone(), small_config());
        let mut c = cx();
        for q in [
            Point::new(0.5, 0.5),
            Point::new(0.05, 0.95),
            Point::new(0.99, 0.01),
        ] {
            for k in [1, 5, 20] {
                let truth = brute_force::knn_query(&pts, &q, k);
                let got = index.knn_query_exact(&q, k, &mut c);
                assert_eq!(got.len(), k);
                for (a, b) in truth.iter().zip(&got) {
                    assert!((a.dist(&q) - b.dist(&q)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn approximate_knn_returns_k_points_with_high_recall() {
        let pts = pseudo_random_points(2000, 21);
        let index = Rsmi::build(pts.clone(), small_config());
        let mut recalls = Vec::new();
        let mut c = cx();
        for q in [
            Point::new(0.5, 0.5),
            Point::new(0.1, 0.2),
            Point::new(0.85, 0.6),
            Point::new(0.01, 0.99),
        ] {
            let k = 10;
            let got = SpatialIndex::knn_query(&index, &q, k, &mut c);
            assert_eq!(got.len(), k);
            let truth = brute_force::knn_query(&pts, &q, k);
            recalls.push(metrics::knn_recall(&got, &truth, &q, k));
        }
        let avg = metrics::mean(&recalls);
        assert!(avg > 0.8, "kNN recall too low: {avg}");
    }

    #[test]
    fn approximate_knn_returns_distinct_points_across_expansion_rounds() {
        // Regression: the search-region expansion re-scans blocks from
        // earlier rounds; already-collected points must not be inserted
        // into the best-k list a second time (each duplicate would evict a
        // genuine neighbour).
        let pts = pseudo_random_points(300, 99);
        let index = Rsmi::build(pts.clone(), small_config());
        let mut c = cx();
        for q in [
            Point::new(0.8, 0.05),
            Point::new(0.01, 0.99),
            Point::new(0.5, 0.5),
        ] {
            for k in [25usize, 100, 250] {
                let got = SpatialIndex::knn_query(&index, &q, k, &mut c);
                assert_eq!(got.len(), k.min(pts.len()));
                let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(
                    ids.len(),
                    got.len(),
                    "duplicate kNN results for q={q:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_data_returns_all_points() {
        let pts = grid_points(5); // 25 points
        let index = Rsmi::build(pts.clone(), small_config());
        let got = SpatialIndex::knn_query(&index, &Point::new(0.5, 0.5), 100, &mut cx());
        assert_eq!(got.len(), 25);
    }

    #[test]
    fn inserted_points_are_found_and_counted() {
        let pts = pseudo_random_points(600, 31);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let new_points: Vec<Point> = (0..200)
            .map(|i| {
                let base = pts[i * 3];
                Point::with_id((base.x + 0.001).min(1.0), base.y, 10_000 + i as u64)
            })
            .collect();
        for p in &new_points {
            index.insert(*p);
        }
        assert_eq!(index.len(), 800);
        let mut c = cx();
        for p in &new_points {
            let found = index.point_query(p, &mut c);
            assert_eq!(
                found.map(|f| f.id),
                Some(p.id),
                "inserted point lost: {p:?}"
            );
        }
        // Old points are still reachable.
        for p in pts.iter().step_by(7) {
            assert!(index.point_query(p, &mut c).is_some());
        }
    }

    #[test]
    fn insert_into_empty_index_bootstraps_it() {
        let mut index = Rsmi::build(vec![], small_config());
        index.insert(Point::with_id(0.3, 0.4, 1));
        index.insert(Point::with_id(0.6, 0.1, 2));
        assert_eq!(index.len(), 2);
        let mut c = cx();
        assert_eq!(
            index.point_query(&Point::new(0.3, 0.4), &mut c).unwrap().id,
            1
        );
        assert_eq!(
            index.point_query(&Point::new(0.6, 0.1), &mut c).unwrap().id,
            2
        );
    }

    #[test]
    fn deleted_points_disappear_and_slots_are_reused() {
        let pts = pseudo_random_points(500, 13);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let victim = pts[123];
        assert!(index.delete(&victim));
        assert_eq!(index.len(), 499);
        let mut c = cx();
        assert!(index.point_query(&victim, &mut c).is_none());
        // Deleting again fails.
        assert!(!index.delete(&victim));
        // Other points survive.
        assert!(index.point_query(&pts[124], &mut c).is_some());
        // Re-inserting a point at the same location works.
        index.insert(victim);
        assert!(index.point_query(&victim, &mut c).is_some());
    }

    #[test]
    fn window_queries_see_inserted_points() {
        let pts = pseudo_random_points(800, 17);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let extra = Point::with_id(0.505, 0.505, 99_999);
        index.insert(extra);
        let w = Rect::new(0.45, 0.45, 0.55, 0.55);
        let exact = index.window_query_exact(&w, &mut cx());
        assert!(
            exact.iter().any(|p| p.id == extra.id),
            "exact window query must see the insert"
        );
    }

    #[test]
    fn rebuild_restores_layout_and_preserves_content() {
        let pts = pseudo_random_points(700, 23);
        let mut index = Rsmi::build(pts.clone(), small_config());
        for i in 0..300 {
            let base = pts[i * 2];
            index.insert(Point::with_id(
                base.x,
                (base.y + 0.002).min(1.0),
                50_000 + i as u64,
            ));
        }
        assert!(
            index.overflow_block_count() > 0,
            "insertions should create overflow blocks"
        );
        let before = index.len();
        index.rebuild();
        assert_eq!(index.len(), before);
        assert_eq!(index.overflow_block_count(), 0);
        // All points still found.
        let mut c = cx();
        for p in pts.iter().step_by(11) {
            assert!(index.point_query(p, &mut c).is_some());
        }
    }

    #[test]
    fn stats_report_plausible_values() {
        let pts = pseudo_random_points(1500, 41);
        let index = Rsmi::build(pts, small_config());
        let stats = index.stats();
        assert_eq!(stats.n_points, 1500);
        assert!(stats.height >= 2);
        assert!(stats.leaf_count >= 2);
        assert!(stats.model_count >= stats.leaf_count);
        assert!(stats.avg_depth >= 1.0);
        assert!(stats.avg_depth <= stats.height as f64);
        assert!(stats.size_bytes > 0);
        assert_eq!(SpatialIndex::model_count(&index), stats.model_count);
    }

    #[test]
    fn per_query_stats_are_charged_to_the_context() {
        let pts = pseudo_random_points(500, 47);
        let index = Rsmi::build(pts.clone(), small_config());
        let mut c = cx();
        assert_eq!(c.stats.total_accesses(), 0);
        let _ = index.point_query(&pts[0], &mut c);
        let first = c.take_stats();
        assert!(first.blocks_touched >= 1, "{first:?}");
        assert!(first.nodes_visited >= 1, "{first:?}");
        assert!(first.candidates_scanned >= 1, "{first:?}");
        // After take_stats the context is clean again.
        assert_eq!(c.stats.total_accesses(), 0);
        // Two identical queries through one context cost twice one query.
        let _ = index.point_query(&pts[0], &mut c);
        let _ = index.point_query(&pts[0], &mut c);
        assert_eq!(c.stats.total_accesses(), 2 * first.total_accesses());
    }

    #[test]
    fn z_curve_configuration_also_works() {
        let pts = pseudo_random_points(900, 53);
        let cfg = small_config().with_curve(CurveKind::Z);
        let index = Rsmi::build(pts.clone(), cfg);
        let mut c = cx();
        for p in pts.iter().step_by(13) {
            assert!(index.point_query(p, &mut c).is_some());
        }
        let w = Rect::new(0.3, 0.3, 0.5, 0.5);
        let truth = brute_force::window_query(&pts, &w);
        let got = SpatialIndex::window_query(&index, &w, &mut c);
        assert_eq!(metrics::false_positive_rate(&got, &truth), 0.0);
    }

    #[test]
    fn rsmi_exact_wrapper_answers_exactly_through_the_trait() {
        let pts = pseudo_random_points(1200, 77);
        let exact = RsmiExact::build(pts.clone(), small_config());
        assert_eq!(exact.name(), "RSMIa");
        assert_eq!(exact.len(), pts.len());
        assert!(SpatialIndex::model_count(&exact) > 0);
        let mut c = cx();
        let w = Rect::new(0.25, 0.25, 0.6, 0.55);
        let mut truth: Vec<u64> = brute_force::window_query(&pts, &w)
            .iter()
            .map(|p| p.id)
            .collect();
        let mut got: Vec<u64> = SpatialIndex::window_query(&exact, &w, &mut c)
            .iter()
            .map(|p| p.id)
            .collect();
        truth.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, truth);
        let q = Point::new(0.4, 0.4);
        let knn_truth = brute_force::knn_query(&pts, &q, 7);
        let knn_got = SpatialIndex::knn_query(&exact, &q, 7, &mut c);
        for (t, g) in knn_truth.iter().zip(&knn_got) {
            assert!((t.dist(&q) - g.dist(&q)).abs() < 1e-12);
        }
        // The wrapper is mutable like any other index.
        let mut exact = exact;
        let p = Point::with_id(0.111, 0.222, 424_242);
        exact.insert(p);
        assert_eq!(exact.point_query(&p, &mut c).map(|f| f.id), Some(p.id));
        assert!(exact.delete(&p));
    }

    #[test]
    fn indices_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Rsmi>();
        assert_send_sync::<RsmiExact>();
    }

    #[test]
    fn range_queries_are_exact_for_both_variants_even_after_inserts() {
        let mut pts = pseudo_random_points(900, 83);
        let mut index = Rsmi::build(pts.clone(), small_config());
        // Inserted points must stay visible to the MBR traversal.
        for i in 0..150 {
            let base = pts[i * 5];
            let p = Point::with_id((base.x + 0.003).min(1.0), base.y, 70_000 + i as u64);
            index.insert(p);
            pts.push(p);
        }
        let exact = RsmiExact::from_rsmi(Rsmi::build(pts.clone(), small_config()));
        let mut c = cx();
        for (center, r) in [
            (Point::new(0.5, 0.5), 0.07),
            (Point::new(0.02, 0.97), 0.2),
            (Point::new(0.8, 0.1), 0.0),
        ] {
            let mut truth: Vec<u64> = brute_force::range_query(&pts, &center, r)
                .iter()
                .map(|p| p.id)
                .collect();
            truth.sort_unstable();
            for got in [
                SpatialIndex::range_query(&index, &center, r, &mut c),
                SpatialIndex::range_query(&exact, &center, r, &mut c),
            ] {
                let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
                ids.sort_unstable();
                assert_eq!(ids, truth, "center {center:?} r {r}");
            }
        }
    }

    #[test]
    fn distance_join_matches_the_nested_loop_oracle() {
        let pts = pseudo_random_points(700, 91);
        let others = pseudo_random_points(150, 17);
        let index = Rsmi::build(pts.clone(), small_config());
        let mut c = cx();
        let mut got: Vec<(u64, u64)> = Vec::new();
        index.distance_join_probes_visit(&others, 0.03, &mut c, &mut |p, q| {
            got.push((p.id, q.id));
        });
        let mut truth: Vec<(u64, u64)> = brute_force::distance_join(&pts, &others, 0.03)
            .iter()
            .map(|(p, q)| (p.id, q.id))
            .collect();
        got.sort_unstable();
        truth.sort_unstable();
        assert_eq!(got, truth);
        assert!(c.take_stats().blocks_touched > 0);
        // Enumeration covers every point exactly once.
        let mut n = 0;
        SpatialIndex::for_each_point(&index, &mut |_| n += 1);
        assert_eq!(n, pts.len());
    }

    #[test]
    fn ablation_configurations_still_index_correctly() {
        let pts = pseudo_random_points(900, 61);
        // Raw-coordinate ordering keeps the point-query guarantee (only the
        // leaf CDF gets harder to learn).
        let cfg = small_config().with_rank_space(false);
        let index = Rsmi::build(pts.clone(), cfg);
        let mut c = cx();
        for p in pts.iter().step_by(17) {
            assert!(index.point_query(p, &mut c).is_some(), "cfg {cfg:?}");
        }
        // Grouping by the *true* grid cell (instead of the model prediction)
        // breaks the routing guarantee — exactly the paper's argument for
        // learned grouping — but the MBR-based exact queries stay correct.
        let cfg = small_config().with_group_by_prediction(false);
        let index = Rsmi::build(pts.clone(), cfg);
        let w = Rect::new(0.2, 0.2, 0.5, 0.5);
        let mut truth: Vec<u64> = brute_force::window_query(&pts, &w)
            .iter()
            .map(|p| p.id)
            .collect();
        let mut got: Vec<u64> = index
            .window_query_exact(&w, &mut c)
            .iter()
            .map(|p| p.id)
            .collect();
        truth.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, truth);
    }

    /// Seeded churn against `index`, mirrored into `live`: inserts clustered
    /// to stress a few leaves, deletes spread across the survivors.
    fn churn(index: &mut Rsmi, live: &mut Vec<Point>, rounds: usize, seed: u64) {
        let mut state = seed | 1;
        for i in 0..rounds {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state % 10 < 7 {
                let x = 0.4 + ((state >> 17) % 1000) as f64 / 5000.0;
                let y = 0.4 + ((state >> 31) % 1000) as f64 / 5000.0;
                let p = Point::with_id(x, y, 500_000 + i as u64);
                index.insert(p);
                live.push(p);
            } else if !live.is_empty() {
                let victim = live[(state >> 13) as usize % live.len()];
                assert!(index.delete(&victim), "victim {victim:?} not deleted");
                let pos = live
                    .iter()
                    .position(|q| q.same_location(&victim) && q.id == victim.id)
                    .unwrap();
                live.remove(pos);
            }
        }
    }

    #[test]
    fn maintenance_stats_track_churn_and_partial_rebuild_resets_them() {
        let pts = pseudo_random_points(1200, 21);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let fresh = index.maintenance_stats();
        assert!(fresh.subtrees >= 1);
        assert_eq!(fresh.ops_since_train, 0);
        assert_eq!(fresh.stale_subtrees, 0);
        assert_eq!(index.bounds_violations(), 0);

        let mut live = pts;
        churn(&mut index, &mut live, 400, 77);
        let dirty = index.maintenance_stats();
        assert!(dirty.ops_since_train > 0, "churn left no drift");
        assert_eq!(index.bounds_violations(), 0, "churn broke the bounds");

        let outcome = index.rebuild_partial(&common::MaintenanceBudget::default());
        assert!(!outcome.full_rebuild);
        assert!(outcome.subtrees_rebuilt >= 1);
        assert_eq!(outcome.subtrees_deferred, 0);
        let clean = index.maintenance_stats();
        assert_eq!(clean.ops_since_train, 0);
        assert_eq!(clean.widened_below + clean.widened_above, 0);
        assert_eq!(clean.stale_subtrees, 0);
        assert_eq!(index.bounds_violations(), 0, "retrain broke the bounds");
        // Every live point is still found after the in-place retrains.
        let mut c = cx();
        for p in &live {
            assert_eq!(index.point_query(p, &mut c).map(|f| f.id), Some(p.id));
        }
        assert_eq!(index.len(), live.len());
    }

    #[test]
    fn subtree_budget_defers_the_less_drifted_leaves() {
        let pts = pseudo_random_points(1500, 43);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let mut live = pts;
        churn(&mut index, &mut live, 600, 91);
        let stale_before: usize = (0..index.nodes.len())
            .filter(|&id| matches!(index.nodes[id], Node::Leaf(_)))
            .filter(|&id| index.leaf_drift(id) > 0.0)
            .count();
        assert!(stale_before >= 2, "need at least two drifted leaves");
        let budget = common::MaintenanceBudget {
            max_subtrees: 1,
            drift_threshold: 0.0,
        };
        let outcome = index.rebuild_partial(&budget);
        assert_eq!(outcome.subtrees_rebuilt, 1);
        assert_eq!(outcome.subtrees_deferred, stale_before - 1);
        // Repeated bounded passes drain the backlog.
        let mut guard = 0;
        while index.rebuild_partial(&budget).subtrees_rebuilt > 0 {
            guard += 1;
            assert!(guard < 10_000);
        }
        assert_eq!(index.maintenance_stats().ops_since_train, 0);
    }

    #[test]
    fn widening_keeps_adversarial_inserts_findable_without_chain_growth() {
        // Fill one leaf's predicted chain, then keep inserting into the same
        // spot: the index must widen bounds onto free bulk slots (created by
        // deletes elsewhere in the leaf) rather than lose the points.
        let pts = grid_points(30);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let anchor = pts[450];
        // Free slots across the anchor's leaf.
        let mut live: Vec<Point> = pts.clone();
        for p in pts.iter().skip(440).take(20) {
            assert!(index.delete(p));
            live.retain(|q| !(q.same_location(p) && q.id == p.id));
        }
        let mut c = cx();
        for i in 0..40u64 {
            let p = Point::with_id(
                anchor.x + (i as f64) * 1e-6,
                anchor.y - (i as f64) * 1e-6,
                600_000 + i,
            );
            index.insert(p);
            live.push(p);
        }
        assert_eq!(index.bounds_violations(), 0);
        for p in &live {
            assert_eq!(index.point_query(p, &mut c).map(|f| f.id), Some(p.id));
        }
        let stats = index.maintenance_stats();
        // Whether widening was needed depends on where predictions landed,
        // but the caps must hold either way.
        assert!(stats.widened_below + stats.widened_above <= 32 * stats.subtrees as u64);
        // A partial rebuild reclaims all widening and stays sound.
        index.rebuild_partial(&common::MaintenanceBudget::default());
        let after = index.maintenance_stats();
        assert_eq!(after.widened_below + after.widened_above, 0);
        assert_eq!(index.bounds_violations(), 0);
        for p in &live {
            assert!(index.point_query(p, &mut c).is_some());
        }
    }

    #[test]
    fn partial_rebuild_is_deterministic_across_clones() {
        let pts = pseudo_random_points(1000, 57);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let mut live = pts;
        churn(&mut index, &mut live, 300, 13);
        let mut a = index.clone();
        let mut b = index;
        let oa = a.rebuild_partial(&common::MaintenanceBudget::default());
        let ob = b.rebuild_partial(&common::MaintenanceBudget::default());
        assert_eq!(oa, ob);
        assert_eq!(a.maintenance_stats(), b.maintenance_stats());
        let mut c = cx();
        for q in live.iter().step_by(7) {
            assert_eq!(
                a.point_query(q, &mut c).map(|p| p.id),
                b.point_query(q, &mut c).map(|p| p.id)
            );
        }
        let (ea, eb) = (a.model_error_bounds(), b.model_error_bounds());
        assert_eq!(ea, eb);
    }

    #[test]
    fn snapshot_roundtrips_maintenance_state() {
        let pts = pseudo_random_points(900, 67);
        let mut index = Rsmi::build(pts.clone(), small_config());
        let mut live = pts;
        churn(&mut index, &mut live, 250, 29);
        let before = index.maintenance_stats();
        assert!(before.ops_since_train > 0);
        let mut w = SnapshotWriter::new("RSMI");
        index.encode_snapshot(&mut w);
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        let restored = Rsmi::read_snapshot(&mut r).unwrap();
        assert_eq!(restored.maintenance_stats(), before);
        assert_eq!(restored.len(), index.len());
        let mut c = cx();
        for q in live.iter().step_by(11) {
            assert_eq!(
                restored.point_query(q, &mut c).map(|p| p.id),
                index.point_query(q, &mut c).map(|p| p.id)
            );
        }
    }

    #[test]
    fn exact_variant_delegates_maintenance_to_the_inner_index() {
        let pts = pseudo_random_points(800, 71);
        let mut exact = RsmiExact::build(pts.clone(), small_config());
        for i in 0..120u64 {
            SpatialIndex::insert(
                &mut exact,
                Point::with_id(0.3 + 1e-5 * i as f64, 0.7, 700_000 + i),
            );
        }
        let stats = SpatialIndex::maintenance_stats(&exact).unwrap();
        assert_eq!(stats.ops_since_train, 120);
        let clone = SpatialIndex::clone_index(&exact).expect("RsmiExact clones");
        assert_eq!(clone.len(), exact.0.len());
        let outcome =
            SpatialIndex::rebuild_partial(&mut exact, &common::MaintenanceBudget::default());
        assert!(!outcome.full_rebuild);
        assert!(outcome.subtrees_rebuilt >= 1);
        assert_eq!(
            SpatialIndex::maintenance_stats(&exact)
                .unwrap()
                .ops_since_train,
            0
        );
        // The exact (MBR-driven) query paths are untouched by retraining.
        let mut c = cx();
        let w = Rect::new(0.25, 0.6, 0.45, 0.8);
        let truth = {
            let mut all = pts.clone();
            all.extend(
                (0..120u64).map(|i| Point::with_id(0.3 + 1e-5 * i as f64, 0.7, 700_000 + i)),
            );
            let mut ids: Vec<u64> = brute_force::window_query(&all, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            ids.sort_unstable();
            ids
        };
        let mut got: Vec<u64> = SpatialIndex::window_query(&exact, &w, &mut c)
            .iter()
            .map(|p| p.id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, truth);
    }
}
