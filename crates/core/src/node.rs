//! The node types of the RSMI structure.
//!
//! An RSMI is an arena of nodes (Fig. 4 of the paper): *internal* nodes carry
//! a partitioning model that routes a point to one of its children, *leaf*
//! nodes carry an indexing model that predicts the data block of a point.
//! Both node kinds store an MBR per child / per node so that the exact-answer
//! variant (RSMIa) and the best-first kNN algorithm can traverse the
//! structure like an R-tree.

use geom::Rect;
use mlp::ScaledRegressor;
use storage::BlockId;

/// Index of a node within the RSMI arena.
pub type NodeId = usize;

/// An internal node: a learned partitioning function plus its children.
#[derive(Debug, Clone)]
pub struct InternalNode {
    /// The partitioning model `M_{i,j}`: maps coordinates to the curve value
    /// of a cell of this node's non-regular grid.
    pub model: ScaledRegressor,
    /// Child node per predicted cell value (`None` when no point was routed
    /// to that cell during the build).
    pub children: Vec<Option<NodeId>>,
    /// MBR of the points routed to each child (aligned with `children`).
    pub child_mbrs: Vec<Rect>,
    /// MBR of all points under this node.
    pub mbr: Rect,
}

impl InternalNode {
    /// Nearest non-empty child to the predicted cell `j`, searching outward.
    ///
    /// Routing a query point whose predicted cell received no data during the
    /// build would otherwise dead-end; the paper's query algorithms implicitly
    /// assume a child exists, which is guaranteed for indexed points but not
    /// for arbitrary query coordinates (window corners, kNN anchors).
    pub fn nearest_child(&self, j: usize) -> Option<(usize, NodeId)> {
        if let Some(Some(c)) = self.children.get(j) {
            return Some((j, *c));
        }
        let len = self.children.len();
        for offset in 1..len {
            if j >= offset {
                if let Some(c) = self.children[j - offset] {
                    return Some((j - offset, c));
                }
            }
            if j + offset < len {
                if let Some(c) = self.children[j + offset] {
                    return Some((j + offset, c));
                }
            }
        }
        None
    }

    /// Approximate in-memory size of the node in bytes.
    pub fn size_bytes(&self) -> usize {
        self.model.size_bytes()
            + self.children.len() * std::mem::size_of::<Option<NodeId>>()
            + self.child_mbrs.len() * std::mem::size_of::<Rect>()
            + std::mem::size_of::<Rect>()
    }
}

/// A leaf node: a learned indexing model over a contiguous range of blocks.
#[derive(Debug, Clone)]
pub struct LeafNode {
    /// The indexing model: maps coordinates to a *local* block offset in
    /// `[0, n_blocks)`.
    pub model: ScaledRegressor,
    /// Global ID of this leaf's first block.
    pub first_block: BlockId,
    /// Number of blocks bulk-loaded for this leaf.
    pub n_blocks: usize,
    /// MBR of the points stored under this leaf.
    pub mbr: Rect,
}

impl LeafNode {
    /// Global block ID for a local offset, clamped into the leaf's range.
    #[inline]
    pub fn global_block(&self, local: u64) -> BlockId {
        self.first_block + (local as usize).min(self.n_blocks.saturating_sub(1))
    }

    /// The global IDs of the first and last bulk-loaded blocks of this leaf.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn block_range(&self) -> (BlockId, BlockId) {
        (
            self.first_block,
            self.first_block + self.n_blocks.saturating_sub(1),
        )
    }

    /// Predicted global block range for a point, widened by the model's
    /// error bounds and clamped to the leaf (the scan range of Algorithm 1).
    ///
    /// A true block ID can lie up to `err_above` *below* the prediction
    /// (over-prediction) and up to `err_below` *above* it (under-prediction),
    /// so the scan range is `[pred − err_above, pred + err_below]`.
    pub fn predicted_range(&self, x: f64, y: f64) -> (BlockId, BlockId) {
        let local = self.model.predict_xy(x, y);
        let lo_local = local.saturating_sub(self.model.err_above());
        let hi_local = (local + self.model.err_below()).min(self.n_blocks.saturating_sub(1) as u64);
        (
            self.first_block + lo_local as usize,
            self.first_block + hi_local as usize,
        )
    }

    /// Approximate in-memory size of the node in bytes (excluding blocks,
    /// which the block store accounts for).
    pub fn size_bytes(&self) -> usize {
        self.model.size_bytes() + std::mem::size_of::<Rect>() + 2 * std::mem::size_of::<usize>()
    }
}

/// A node of the RSMI arena.
#[derive(Debug, Clone)]
pub enum Node {
    /// Routing node with a learned partitioning function.
    Internal(InternalNode),
    /// Leaf node with a learned indexing function over data blocks.
    Leaf(LeafNode),
}

impl Node {
    /// The MBR of all points under this node.
    pub fn mbr(&self) -> Rect {
        match self {
            Node::Internal(n) => n.mbr,
            Node::Leaf(n) => n.mbr,
        }
    }

    /// Whether this is a leaf node.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Node::Internal(n) => n.size_bytes(),
            Node::Leaf(n) => n.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp::{MlpConfig, ScaledRegressor};

    fn tiny_model() -> ScaledRegressor {
        let cfg = MlpConfig {
            input_dim: 2,
            hidden: 4,
            learning_rate: 0.3,
            epochs: 5,
            batch_size: 4,
            seed: 1,
        };
        let inputs = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.5, 0.5]];
        let targets = vec![0u64, 2, 1];
        ScaledRegressor::fit(cfg, &inputs, &targets)
    }

    #[test]
    fn nearest_child_prefers_exact_then_searches_outward() {
        let node = InternalNode {
            model: tiny_model(),
            children: vec![None, Some(7), None, None, Some(9)],
            child_mbrs: vec![Rect::empty(); 5],
            mbr: Rect::unit(),
        };
        assert_eq!(node.nearest_child(1), Some((1, 7)));
        assert_eq!(node.nearest_child(0), Some((1, 7)));
        // Cell 3 is empty; cell 4 (distance 1) wins over cell 1 (distance 2).
        assert_eq!(node.nearest_child(3), Some((4, 9)));
    }

    #[test]
    fn nearest_child_of_all_empty_is_none() {
        let node = InternalNode {
            model: tiny_model(),
            children: vec![None, None],
            child_mbrs: vec![Rect::empty(); 2],
            mbr: Rect::unit(),
        };
        assert_eq!(node.nearest_child(0), None);
    }

    #[test]
    fn leaf_predicted_range_is_clamped_to_the_leaf() {
        let leaf = LeafNode {
            model: tiny_model(),
            first_block: 10,
            n_blocks: 3,
            mbr: Rect::unit(),
        };
        let (lo, hi) = leaf.predicted_range(0.5, 0.5);
        assert!(lo >= 10);
        assert!(hi <= 12);
        assert!(lo <= hi);
        assert_eq!(leaf.block_range(), (10, 12));
        assert_eq!(leaf.global_block(100), 12);
    }

    #[test]
    fn node_enum_accessors() {
        let leaf = Node::Leaf(LeafNode {
            model: tiny_model(),
            first_block: 0,
            n_blocks: 1,
            mbr: Rect::new(0.0, 0.0, 0.5, 0.5),
        });
        assert!(leaf.is_leaf());
        assert_eq!(leaf.mbr(), Rect::new(0.0, 0.0, 0.5, 0.5));
        assert!(leaf.size_bytes() > 0);
    }
}
