//! A wrapper turning the raw MLP into the "indexing function" used by the
//! learned indices: raw coordinates in, integer block/partition IDs out.

use crate::{Mlp, MlpConfig, Normalizer};

/// A regression model over integer targets.
///
/// This is the unit every learned index sub-model is made of: it owns
///
/// * a [`Normalizer`] for the raw inputs (coordinates or curve keys),
/// * an [`Mlp`] trained on normalised inputs and targets scaled to `[0, 1]`,
/// * the maximum target value, used to rescale predictions back to IDs.
///
/// Predictions are rounded and clamped to `[0, max_target]`, matching the
/// paper's practice of normalising block IDs into the unit range for training
/// and scaling back at query time.
#[derive(Debug, Clone)]
pub struct ScaledRegressor {
    mlp: Mlp,
    input_norm: Normalizer,
    max_target: u64,
    /// Maximum under-prediction observed on the training set (err_ell).
    err_below: u64,
    /// Maximum over-prediction observed on the training set (err_a).
    err_above: u64,
}

impl ScaledRegressor {
    /// Trains a regressor on `(inputs[i], targets[i])` pairs.
    ///
    /// `inputs` are raw feature rows (e.g. point coordinates); `targets` are
    /// the ground-truth integer IDs.  After training, the maximum signed
    /// prediction errors over the training set are recorded as the model's
    /// error bounds (Equations 4 and 5 of the paper).
    ///
    /// # Panics
    /// Panics when `inputs` and `targets` lengths differ or when `inputs` is
    /// empty.
    pub fn fit(config: MlpConfig, inputs: &[Vec<f64>], targets: &[u64]) -> Self {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        assert!(!inputs.is_empty(), "cannot fit a regressor on an empty set");

        let input_norm = Normalizer::fit(inputs);
        let max_target = *targets.iter().max().expect("non-empty");
        let scale = max_target.max(1) as f64;

        let norm_inputs: Vec<Vec<f64>> = inputs.iter().map(|r| input_norm.transform(r)).collect();
        let norm_targets: Vec<f64> = targets.iter().map(|&t| t as f64 / scale).collect();

        let mut mlp = Mlp::new(config);
        mlp.train(&norm_inputs, &norm_targets);

        let mut model = Self {
            mlp,
            input_norm,
            max_target,
            err_below: 0,
            err_above: 0,
        };
        model.compute_error_bounds(inputs, targets);
        model
    }

    /// Recomputes the error bounds against a (possibly different) data set.
    ///
    /// Used by the indices after bulk-loading and by the rebuild variant
    /// after retraining.
    pub fn compute_error_bounds(&mut self, inputs: &[Vec<f64>], targets: &[u64]) {
        let mut below = 0i64;
        let mut above = 0i64;
        for (row, &t) in inputs.iter().zip(targets) {
            let pred = self.predict(row) as i64;
            let diff = pred - t as i64;
            if diff < 0 {
                below = below.max(-diff);
            } else {
                above = above.max(diff);
            }
        }
        self.err_below = below as u64;
        self.err_above = above as u64;
    }

    /// Predicts the integer ID for a raw feature row, clamped to
    /// `[0, max_target]`.
    #[inline]
    pub fn predict(&self, row: &[f64]) -> u64 {
        let normed = self.input_norm.transform(row);
        let raw = self.mlp.predict(&normed);
        let scaled = raw * self.max_target.max(1) as f64;
        scaled.round().clamp(0.0, self.max_target as f64) as u64
    }

    /// Predicts for a 2-D point without allocating the intermediate row.
    #[inline]
    pub fn predict_xy(&self, x: f64, y: f64) -> u64 {
        let mut buf = [0.0f64; 2];
        self.input_norm.transform_into(&[x, y], &mut buf);
        let raw = self.mlp.predict(&buf);
        let scaled = raw * self.max_target.max(1) as f64;
        scaled.round().clamp(0.0, self.max_target as f64) as u64
    }

    /// Maximum under-prediction on the training set (the paper's `err_ℓ`).
    #[inline]
    pub fn err_below(&self) -> u64 {
        self.err_below
    }

    /// Maximum over-prediction on the training set (the paper's `err_a`).
    #[inline]
    pub fn err_above(&self) -> u64 {
        self.err_above
    }

    /// Widens the error bounds; used by the update algorithms when insertions
    /// shift data without retraining.
    pub fn widen_error_bounds(&mut self, extra_below: u64, extra_above: u64) {
        self.err_below += extra_below;
        self.err_above += extra_above;
    }

    /// Widens the error bounds by exactly as much as needed for the
    /// prediction at `(x, y)` to cover `target`, and returns the widening
    /// applied as `(extra_below, extra_above)` — `(0, 0)` when the current
    /// bounds already cover it.  This is the delta-aware maintenance
    /// primitive: an insert that lands a point outside its predicted range
    /// stays findable without retraining, at the cost of a wider scan range
    /// that the drift-triggered retrain later reclaims.
    pub fn widen_to_cover_xy(&mut self, x: f64, y: f64, target: u64) -> (u64, u64) {
        let pred = self.predict_xy(x, y);
        if target < pred {
            // Over-prediction: the covering interval below is [pred - err_above, ..].
            let need = pred - target;
            if need > self.err_above {
                let extra = need - self.err_above;
                self.err_above = need;
                return (0, extra);
            }
        } else if target > pred {
            // Under-prediction: the covering interval above is [.., pred + err_below].
            let need = target - pred;
            if need > self.err_below {
                let extra = need - self.err_below;
                self.err_below = need;
                return (extra, 0);
            }
        }
        (0, 0)
    }

    /// The largest target value seen during training.
    #[inline]
    pub fn max_target(&self) -> u64 {
        self.max_target
    }

    /// Approximate in-memory size of the model, for index-size accounting.
    pub fn size_bytes(&self) -> usize {
        self.mlp.size_bytes() + self.input_norm.size_bytes() + 3 * std::mem::size_of::<u64>()
    }

    /// Appends the trained model (weights, normaliser, error bounds) to a
    /// snapshot — the unit of learned-index persistence: a loaded regressor
    /// predicts exactly what the saved one did, with the same error bounds,
    /// and is never retrained.
    pub fn encode(&self, w: &mut persist::SnapshotWriter) {
        self.mlp.encode(w);
        self.input_norm.encode(w);
        w.put_u64(self.max_target);
        w.put_u64(self.err_below);
        w.put_u64(self.err_above);
    }

    /// Reads a model written by [`ScaledRegressor::encode`].
    pub fn decode(r: &mut persist::SnapshotReader<'_>) -> Result<Self, persist::PersistError> {
        let mlp = Mlp::decode(r)?;
        let input_norm = Normalizer::decode(r)?;
        let max_target = r.get_u64()?;
        let err_below = r.get_u64()?;
        let err_above = r.get_u64()?;
        Ok(Self {
            mlp,
            input_norm,
            max_target,
            err_below,
            err_above,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(input_dim: usize) -> MlpConfig {
        MlpConfig {
            input_dim,
            hidden: 12,
            learning_rate: 0.4,
            epochs: 300,
            batch_size: 16,
            seed: 5,
        }
    }

    #[test]
    fn fits_block_ids_of_uniform_points() {
        // 400 points on a diagonal, 4 points per "block": the mapping from
        // coordinates to block id is trivially learnable.
        let n = 400usize;
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, i as f64 / n as f64])
            .collect();
        let targets: Vec<u64> = (0..n).map(|i| (i / 4) as u64).collect();
        let model = ScaledRegressor::fit(fast_config(2), &inputs, &targets);
        // Error bounds should be a small fraction of the 100-block range.
        assert!(
            model.err_below() + model.err_above() < 30,
            "error bounds too wide: ({}, {})",
            model.err_below(),
            model.err_above()
        );
        // And every training prediction must fall within the bounds.
        for (row, &t) in inputs.iter().zip(&targets) {
            let p = model.predict(row) as i64;
            assert!(p >= t as i64 - model.err_below() as i64);
            assert!(p <= t as i64 + model.err_above() as i64);
        }
    }

    #[test]
    fn predictions_are_clamped_to_target_range() {
        let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<u64> = (0..50).map(|i| i as u64).collect();
        let model = ScaledRegressor::fit(fast_config(2), &inputs, &targets);
        // Far outside the training range the clamp keeps predictions valid.
        assert!(model.predict(&[1e9, 1e9]) <= model.max_target());
        // predict on raw rows equals predict_xy.
        assert_eq!(model.predict(&[3.0, 3.0]), model.predict_xy(3.0, 3.0));
    }

    #[test]
    fn error_bounds_cover_all_training_points_by_construction() {
        let inputs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 / 20.0, (i / 20) as f64 / 10.0])
            .collect();
        let targets: Vec<u64> = (0..200).map(|i| (i / 10) as u64).collect();
        let model = ScaledRegressor::fit(fast_config(2), &inputs, &targets);
        for (row, &t) in inputs.iter().zip(&targets) {
            let p = model.predict(row) as i64;
            assert!(p - t as i64 <= model.err_above() as i64);
            assert!(t as i64 - p <= model.err_below() as i64);
        }
    }

    #[test]
    fn widen_error_bounds_adds_slack() {
        let inputs = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let targets = vec![0u64, 1];
        let mut model = ScaledRegressor::fit(fast_config(2), &inputs, &targets);
        let (b, a) = (model.err_below(), model.err_above());
        model.widen_error_bounds(2, 3);
        assert_eq!(model.err_below(), b + 2);
        assert_eq!(model.err_above(), a + 3);
    }

    #[test]
    fn widen_to_cover_makes_any_target_fall_inside_the_bounds() {
        let inputs = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let targets = vec![0u64, 1];
        let mut model = ScaledRegressor::fit(fast_config(2), &inputs, &targets);

        for &(x, y, t) in &[(0.3, 0.7, 40u64), (0.9, 0.1, 0u64), (0.5, 0.5, 7u64)] {
            let before = (model.err_below(), model.err_above());
            let (eb, ea) = model.widen_to_cover_xy(x, y, t);
            assert_eq!(model.err_below(), before.0 + eb);
            assert_eq!(model.err_above(), before.1 + ea);
            // Covered after widening: t within [pred - err_above, pred + err_below].
            let pred = model.predict_xy(x, y) as i64;
            assert!(t as i64 >= pred - model.err_above() as i64);
            assert!(t as i64 <= pred + model.err_below() as i64);
            // Idempotent: already-covered targets require no widening.
            assert_eq!(model.widen_to_cover_xy(x, y, t), (0, 0));
        }
    }

    #[test]
    fn single_key_models_work_for_one_dimensional_inputs() {
        let inputs: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64]).collect();
        let targets: Vec<u64> = (0..300).map(|i| (i / 3) as u64).collect();
        let model = ScaledRegressor::fit(fast_config(1), &inputs, &targets);
        let pred = model.predict(&[150.0]);
        assert!((pred as i64 - 50).unsigned_abs() <= model.err_below().max(model.err_above()) + 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fitting_an_empty_set_panics() {
        let _ = ScaledRegressor::fit(fast_config(2), &[], &[]);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions_and_bounds() {
        let inputs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 200.0, (i * 7 % 200) as f64 / 200.0])
            .collect();
        let targets: Vec<u64> = (0..200).map(|i| (i / 8) as u64).collect();
        let model = ScaledRegressor::fit(fast_config(2), &inputs, &targets);

        let mut w = persist::SnapshotWriter::new("Model");
        w.begin_section(0x01);
        model.encode(&mut w);
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = persist::SnapshotReader::open(&bytes).unwrap();
        r.begin_section(0x01).unwrap();
        let loaded = ScaledRegressor::decode(&mut r).unwrap();

        assert_eq!(loaded.err_below(), model.err_below());
        assert_eq!(loaded.err_above(), model.err_above());
        assert_eq!(loaded.max_target(), model.max_target());
        for row in &inputs {
            assert_eq!(loaded.predict(row), model.predict(row));
        }
        assert_eq!(
            loaded.predict_xy(0.123, 0.987),
            model.predict_xy(0.123, 0.987)
        );
    }
}
