//! A minimal multilayer perceptron (MLP) substrate.
//!
//! The RSMI paper trains, for every sub-model, "a multilayer perceptron with
//! an input layer, a hidden layer, and an output layer", sigmoid activation
//! in the hidden layer, L2 loss, and stochastic gradient descent (§6.1).  The
//! original implementation uses the PyTorch C++ API; this crate hand-rolls an
//! equivalent network so the reproduction has no ML-framework dependency.
//!
//! Contents:
//!
//! * [`Mlp`] — the network itself (forward pass, SGD backward pass),
//! * [`MlpConfig`] — architecture and training hyper-parameters,
//! * [`Normalizer`] — min-max scaling of inputs/outputs into `[0, 1]`, as the
//!   paper does before training,
//! * [`ScaledRegressor`] — the convenience wrapper used by the indices: it
//!   owns the normalisers and predicts *integer* targets (block IDs or
//!   partition IDs) from raw coordinates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod normalizer;
mod regressor;

pub use network::{Mlp, MlpConfig};
pub use normalizer::Normalizer;
pub use regressor::ScaledRegressor;

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basic_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
    }

    #[test]
    fn sigmoid_is_monotone_and_bounded() {
        let mut prev = sigmoid(-50.0);
        let mut x = -50.0;
        while x <= 50.0 {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!(s >= prev);
            prev = s;
            x += 0.5;
        }
    }

    #[test]
    fn sigmoid_does_not_overflow_for_extreme_inputs() {
        assert!(sigmoid(-1e6).is_finite());
        assert!(sigmoid(1e6).is_finite());
    }
}
