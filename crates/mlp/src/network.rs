//! The feed-forward network and its SGD trainer.

use crate::sigmoid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Architecture and training hyper-parameters of a sub-model.
///
/// Paper defaults (§6.1): hidden size = (#inputs + #output classes) / 2,
/// sigmoid hidden activation, learning rate 0.01, 500 epochs, L2 loss.  The
/// reproduction keeps the architecture but uses a smaller default epoch count
/// so the full experiment suite runs on a laptop; the harness can restore the
/// paper's value with [`MlpConfig::epochs`].
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Number of input features (2 for RSMI coordinates, 1 for ZM Z-values).
    pub input_dim: usize,
    /// Number of hidden neurons.
    pub hidden: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (1 = pure SGD).
    pub batch_size: usize,
    /// Seed for weight initialisation and shuffling, for reproducibility.
    pub seed: u64,
}

impl MlpConfig {
    /// Configuration for a 2-D coordinate model with the paper's
    /// hidden-layer sizing rule for `classes` output values.
    pub fn for_coordinates(classes: usize) -> Self {
        Self {
            input_dim: 2,
            hidden: ((2 + classes) / 2).clamp(4, 64),
            ..Self::default()
        }
    }

    /// Configuration for a 1-D key model (the ZM baseline).
    pub fn for_keys(classes: usize) -> Self {
        Self {
            input_dim: 1,
            hidden: classes.div_ceil(2).clamp(4, 64),
            ..Self::default()
        }
    }

    /// Returns a copy with a different seed (used to diversify sub-models).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            input_dim: 2,
            hidden: 32,
            learning_rate: 0.01,
            epochs: 60,
            batch_size: 32,
            seed: 42,
        }
    }
}

/// A fully connected network with one sigmoid hidden layer and a linear
/// scalar output, trained with mini-batch SGD on the L2 loss.
///
/// Inputs and targets are expected to be normalised into `[0, 1]` (see
/// [`crate::Normalizer`]); the output is unbounded but in practice stays near
/// the unit interval.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    /// Hidden-layer weights, `hidden x input_dim`, row-major.
    w1: Vec<f64>,
    /// Hidden-layer biases, length `hidden`.
    b1: Vec<f64>,
    /// Output weights, length `hidden`.
    w2: Vec<f64>,
    /// Output bias.
    b2: f64,
}

impl Mlp {
    /// Creates a network with small random weights.
    pub fn new(config: MlpConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(config.hidden > 0, "hidden must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Xavier-style range for the sigmoid hidden layer.
        let limit1 = (6.0 / (config.input_dim + config.hidden) as f64).sqrt();
        let limit2 = (6.0 / (config.hidden + 1) as f64).sqrt();
        let w1 = (0..config.hidden * config.input_dim)
            .map(|_| rng.gen_range(-limit1..limit1))
            .collect();
        let w2 = (0..config.hidden)
            .map(|_| rng.gen_range(-limit2..limit2))
            .collect();
        Self {
            config,
            w1,
            b1: vec![0.0; config.hidden],
            w2,
            b2: 0.0,
        }
    }

    /// The configuration the network was created with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Forward pass for a single sample; `input.len()` must equal
    /// `config.input_dim`.
    pub fn predict(&self, input: &[f64]) -> f64 {
        debug_assert_eq!(input.len(), self.config.input_dim);
        let mut out = self.b2;
        let d = self.config.input_dim;
        for h in 0..self.config.hidden {
            let mut z = self.b1[h];
            let row = &self.w1[h * d..(h + 1) * d];
            for (w, x) in row.iter().zip(input) {
                z += w * x;
            }
            out += self.w2[h] * sigmoid(z);
        }
        out
    }

    /// Mean squared error over a data set.
    pub fn mse(&self, inputs: &[Vec<f64>], targets: &[f64]) -> f64 {
        assert_eq!(inputs.len(), targets.len());
        if inputs.is_empty() {
            return 0.0;
        }
        let sum: f64 = inputs
            .iter()
            .zip(targets)
            .map(|(x, &t)| {
                let e = self.predict(x) - t;
                e * e
            })
            .sum();
        sum / inputs.len() as f64
    }

    /// Trains the network in place with mini-batch SGD, minimising the L2
    /// loss between predictions and `targets` (Equation 3 of the paper).
    ///
    /// Returns the final training MSE.
    // Index-based loops keep the forward and backward passes symmetric and
    // allocation-free; clippy's iterator suggestion obscures the math here.
    #[allow(clippy::needless_range_loop)]
    pub fn train(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> f64 {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs and targets must have the same length"
        );
        let n = inputs.len();
        if n == 0 {
            return 0.0;
        }
        let d = self.config.input_dim;
        let h_count = self.config.hidden;
        let batch = self.config.batch_size.max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut order: Vec<usize> = (0..n).collect();

        // Per-batch gradient accumulators, reused across iterations to avoid
        // reallocating in the hot loop.
        let mut g_w1 = vec![0.0; h_count * d];
        let mut g_b1 = vec![0.0; h_count];
        let mut g_w2 = vec![0.0; h_count];
        let mut hidden = vec![0.0; h_count];

        for _epoch in 0..self.config.epochs {
            // Fisher-Yates shuffle with the seeded RNG.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(batch) {
                g_w1.iter_mut().for_each(|g| *g = 0.0);
                g_b1.iter_mut().for_each(|g| *g = 0.0);
                g_w2.iter_mut().for_each(|g| *g = 0.0);
                let mut g_b2 = 0.0;

                for &idx in chunk {
                    let x = &inputs[idx];
                    // Forward, caching hidden activations.
                    let mut out = self.b2;
                    for h in 0..h_count {
                        let mut z = self.b1[h];
                        let row = &self.w1[h * d..(h + 1) * d];
                        for (w, xv) in row.iter().zip(x) {
                            z += w * xv;
                        }
                        let a = sigmoid(z);
                        hidden[h] = a;
                        out += self.w2[h] * a;
                    }
                    // Backward: dL/dout for L = (out - t)^2 is 2 * (out - t);
                    // the constant 2 is folded into the learning rate.
                    let delta = out - targets[idx];
                    g_b2 += delta;
                    for h in 0..h_count {
                        let a = hidden[h];
                        g_w2[h] += delta * a;
                        let dz = delta * self.w2[h] * a * (1.0 - a);
                        g_b1[h] += dz;
                        let row = &mut g_w1[h * d..(h + 1) * d];
                        for (g, xv) in row.iter_mut().zip(x) {
                            *g += dz * xv;
                        }
                    }
                }

                let scale = self.config.learning_rate / chunk.len() as f64;
                for (w, g) in self.w1.iter_mut().zip(&g_w1) {
                    *w -= scale * g;
                }
                for (b, g) in self.b1.iter_mut().zip(&g_b1) {
                    *b -= scale * g;
                }
                for (w, g) in self.w2.iter_mut().zip(&g_w2) {
                    *w -= scale * g;
                }
                self.b2 -= scale * g_b2;
            }
        }
        self.mse(inputs, targets)
    }

    /// Size of the model parameters in bytes (used for index-size reporting).
    pub fn size_bytes(&self) -> usize {
        (self.w1.len() + self.b1.len() + self.w2.len() + 1) * std::mem::size_of::<f64>()
    }

    /// Analytic gradient of the loss for a single sample, flattened in the
    /// order `[w1, b1, w2, b2]`.  Exposed for gradient-check tests.
    #[doc(hidden)]
    #[allow(clippy::needless_range_loop)]
    pub fn gradient(&self, x: &[f64], target: f64) -> Vec<f64> {
        let d = self.config.input_dim;
        let h_count = self.config.hidden;
        let mut hidden = vec![0.0; h_count];
        let mut out = self.b2;
        for h in 0..h_count {
            let mut z = self.b1[h];
            for (w, xv) in self.w1[h * d..(h + 1) * d].iter().zip(x) {
                z += w * xv;
            }
            hidden[h] = sigmoid(z);
            out += self.w2[h] * hidden[h];
        }
        let delta = out - target;
        let mut grad = Vec::with_capacity(h_count * d + 2 * h_count + 1);
        for h in 0..h_count {
            for xv in x.iter().take(d) {
                grad.push(delta * self.w2[h] * hidden[h] * (1.0 - hidden[h]) * xv);
            }
        }
        for h in 0..h_count {
            grad.push(delta * self.w2[h] * hidden[h] * (1.0 - hidden[h]));
        }
        for &a in hidden.iter().take(h_count) {
            grad.push(delta * a);
        }
        grad.push(delta);
        grad
    }

    /// Returns a flat copy of all parameters (for gradient-check tests).
    #[doc(hidden)]
    pub fn parameters(&self) -> Vec<f64> {
        let mut p = self.w1.clone();
        p.extend_from_slice(&self.b1);
        p.extend_from_slice(&self.w2);
        p.push(self.b2);
        p
    }

    /// Appends the architecture and all weights to a snapshot (sub-record of
    /// an index section).
    pub fn encode(&self, w: &mut persist::SnapshotWriter) {
        w.put_usize(self.config.input_dim);
        w.put_usize(self.config.hidden);
        w.put_f64(self.config.learning_rate);
        w.put_usize(self.config.epochs);
        w.put_usize(self.config.batch_size);
        w.put_u64(self.config.seed);
        w.put_f64s(&self.w1);
        w.put_f64s(&self.b1);
        w.put_f64s(&self.w2);
        w.put_f64(self.b2);
    }

    /// Reads a network written by [`Mlp::encode`].  The stored weights are
    /// used as-is — no retraining — after validating that their shapes match
    /// the stored architecture.
    pub fn decode(r: &mut persist::SnapshotReader<'_>) -> Result<Self, persist::PersistError> {
        let config = MlpConfig {
            input_dim: r.get_usize()?,
            hidden: r.get_usize()?,
            learning_rate: r.get_f64()?,
            epochs: r.get_usize()?,
            batch_size: r.get_usize()?,
            seed: r.get_u64()?,
        };
        if config.input_dim == 0 || config.hidden == 0 {
            return Err(persist::PersistError::Corrupt(
                "MLP with zero-sized layer".into(),
            ));
        }
        let w1 = r.get_f64s()?;
        let b1 = r.get_f64s()?;
        let w2 = r.get_f64s()?;
        let b2 = r.get_f64()?;
        if Some(w1.len()) != config.hidden.checked_mul(config.input_dim)
            || b1.len() != config.hidden
            || w2.len() != config.hidden
        {
            return Err(persist::PersistError::Corrupt(
                "MLP weight shapes do not match its architecture".into(),
            ));
        }
        Ok(Self {
            config,
            w1,
            b1,
            w2,
            b2,
        })
    }

    /// Overwrites all parameters from a flat vector (for gradient checks).
    #[doc(hidden)]
    pub fn set_parameters(&mut self, p: &[f64]) {
        let n1 = self.w1.len();
        let n2 = self.b1.len();
        let n3 = self.w2.len();
        assert_eq!(p.len(), n1 + n2 + n3 + 1);
        self.w1.copy_from_slice(&p[..n1]);
        self.b1.copy_from_slice(&p[n1..n1 + n2]);
        self.w2.copy_from_slice(&p[n1 + n2..n1 + n2 + n3]);
        self.b2 = p[n1 + n2 + n3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> MlpConfig {
        MlpConfig {
            input_dim: 2,
            hidden: 8,
            learning_rate: 0.5,
            epochs: 400,
            batch_size: 8,
            seed: 7,
        }
    }

    #[test]
    fn learns_a_linear_function() {
        // f(x, y) = 0.3 x + 0.5 y + 0.1 on the unit square.
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f64 / 19.0;
                let y = j as f64 / 19.0;
                inputs.push(vec![x, y]);
                targets.push(0.3 * x + 0.5 * y + 0.1);
            }
        }
        let mut mlp = Mlp::new(toy_config());
        let before = mlp.mse(&inputs, &targets);
        let after = mlp.train(&inputs, &targets);
        assert!(after < before, "training must reduce the loss");
        assert!(after < 1e-3, "final MSE too high: {after}");
    }

    #[test]
    fn learns_a_monotone_cdf_like_function() {
        // A CDF-shaped 1-D target, the kind of function learned indices fit.
        let n = 200;
        let inputs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0].powf(0.5)).collect();
        let cfg = MlpConfig {
            input_dim: 1,
            hidden: 16,
            learning_rate: 0.5,
            epochs: 600,
            batch_size: 16,
            seed: 3,
        };
        let mut mlp = Mlp::new(cfg);
        let mse = mlp.train(&inputs, &targets);
        assert!(mse < 3e-3, "MSE {mse} too high for a smooth CDF");
        // Predictions should be roughly monotone.
        let preds: Vec<f64> = inputs.iter().map(|x| mlp.predict(x)).collect();
        let violations = preds.windows(2).filter(|w| w[1] + 0.02 < w[0]).count();
        assert!(
            violations < n / 20,
            "too many monotonicity violations: {violations}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let cfg = MlpConfig {
            input_dim: 2,
            hidden: 4,
            learning_rate: 0.1,
            epochs: 1,
            batch_size: 1,
            seed: 11,
        };
        let mlp = Mlp::new(cfg);
        let x = vec![0.3, 0.7];
        let target = 0.42;
        let analytic = mlp.gradient(&x, target);
        let params = mlp.parameters();
        let eps = 1e-6;
        let loss = |m: &Mlp| {
            let e = m.predict(&x) - target;
            0.5 * e * e
        };
        for (i, grad_i) in analytic.iter().enumerate() {
            let mut plus = mlp.clone();
            let mut p = params.clone();
            p[i] += eps;
            plus.set_parameters(&p);
            let mut minus = mlp.clone();
            p[i] -= 2.0 * eps;
            minus.set_parameters(&p);
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (numeric - grad_i).abs() < 1e-5,
                "param {i}: numeric {numeric} vs analytic {grad_i}"
            );
        }
    }

    #[test]
    fn training_is_deterministic_for_a_fixed_seed() {
        let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0, 0.5]).collect();
        let targets: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        let mut a = Mlp::new(toy_config());
        let mut b = Mlp::new(toy_config());
        a.train(&inputs, &targets);
        b.train(&inputs, &targets);
        assert_eq!(a.parameters(), b.parameters());
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut mlp = Mlp::new(toy_config());
        let before = mlp.parameters();
        let mse = mlp.train(&[], &[]);
        assert_eq!(mse, 0.0);
        assert_eq!(mlp.parameters(), before);
    }

    #[test]
    fn size_bytes_counts_all_parameters() {
        let cfg = MlpConfig {
            input_dim: 2,
            hidden: 8,
            ..MlpConfig::default()
        };
        let mlp = Mlp::new(cfg);
        assert_eq!(mlp.size_bytes(), (8 * 2 + 8 + 8 + 1) * 8);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let mut mlp = Mlp::new(toy_config());
        mlp.train(&[vec![0.0, 0.0]], &[]);
    }

    #[test]
    fn config_constructors_follow_paper_sizing_rule() {
        let c = MlpConfig::for_coordinates(100);
        assert_eq!(c.input_dim, 2);
        assert_eq!(c.hidden, 51);
        let k = MlpConfig::for_keys(100);
        assert_eq!(k.input_dim, 1);
        assert_eq!(k.hidden, 50);
        // Clamped for tiny/huge class counts.
        assert_eq!(MlpConfig::for_coordinates(1).hidden, 4);
        assert_eq!(MlpConfig::for_coordinates(1000).hidden, 64);
    }
}
