//! Min-max normalisation of model inputs and outputs.

/// Per-dimension min-max scaler mapping raw values into `[0, 1]`.
///
/// "For ease of model training, the point coordinates and block IDs are
/// normalized into the unit range" (§6.1).  Each index sub-model owns one
/// normaliser fitted on the data it is trained on, so child models see their
/// local region stretched over the full unit square.
#[derive(Debug, Clone)]
pub struct Normalizer {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Normalizer {
    /// Fits a normaliser on column-oriented samples: `samples[i]` is the
    /// `i`-th row, every row must have the same dimensionality.
    ///
    /// Returns an identity-like normaliser for an empty sample set.
    pub fn fit(samples: &[Vec<f64>]) -> Self {
        let dim = samples.first().map_or(0, Vec::len);
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for row in samples {
            assert_eq!(row.len(), dim, "inconsistent sample dimensionality");
            for (d, &v) in row.iter().enumerate() {
                lo[d] = lo[d].min(v);
                hi[d] = hi[d].max(v);
            }
        }
        if dim == 0 {
            return Self {
                lo: vec![],
                hi: vec![],
            };
        }
        Self { lo, hi }
    }

    /// Creates a normaliser from explicit per-dimension bounds.
    pub fn from_bounds(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len());
        Self { lo, hi }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Scales one row into `[0, 1]^dim`.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim());
        row.iter()
            .enumerate()
            .map(|(d, &v)| geom_normalize(v, self.lo[d], self.hi[d]))
            .collect()
    }

    /// Scales one row in place into a caller-provided buffer (no allocation).
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.dim());
        assert_eq!(out.len(), self.dim());
        for (d, &v) in row.iter().enumerate() {
            out[d] = geom_normalize(v, self.lo[d], self.hi[d]);
        }
    }

    /// Maps a normalised value in dimension `d` back to the raw range.
    pub fn inverse(&self, d: usize, v: f64) -> f64 {
        self.lo[d] + v * (self.hi[d] - self.lo[d])
    }

    /// The fitted `[lo, hi]` bounds of dimension `d`.
    pub fn bounds(&self, d: usize) -> (f64, f64) {
        (self.lo[d], self.hi[d])
    }

    /// Approximate in-memory size, for index-size accounting.
    pub fn size_bytes(&self) -> usize {
        (self.lo.len() + self.hi.len()) * std::mem::size_of::<f64>()
    }

    /// Appends the fitted bounds to a snapshot (sub-record of an index
    /// section; the enclosing section carries the checksum).
    pub fn encode(&self, w: &mut persist::SnapshotWriter) {
        w.put_f64s(&self.lo);
        w.put_f64s(&self.hi);
    }

    /// Reads a normaliser written by [`Normalizer::encode`].
    pub fn decode(r: &mut persist::SnapshotReader<'_>) -> Result<Self, persist::PersistError> {
        let lo = r.get_f64s()?;
        let hi = r.get_f64s()?;
        if lo.len() != hi.len() {
            return Err(persist::PersistError::Corrupt(
                "normaliser bounds differ in dimensionality".into(),
            ));
        }
        Ok(Self { lo, hi })
    }
}

#[inline]
fn geom_normalize(v: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= f64::EPSILON {
        0.0
    } else {
        ((v - lo) / span).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_transform_map_extremes_to_unit_interval() {
        let samples = vec![vec![2.0, -1.0], vec![4.0, 3.0], vec![3.0, 1.0]];
        let norm = Normalizer::fit(&samples);
        assert_eq!(norm.transform(&[2.0, -1.0]), vec![0.0, 0.0]);
        assert_eq!(norm.transform(&[4.0, 3.0]), vec![1.0, 1.0]);
        let mid = norm.transform(&[3.0, 1.0]);
        assert!((mid[0] - 0.5).abs() < 1e-12);
        assert!((mid[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transform_clamps_out_of_range_values() {
        let norm = Normalizer::from_bounds(vec![0.0], vec![10.0]);
        assert_eq!(norm.transform(&[-5.0]), vec![0.0]);
        assert_eq!(norm.transform(&[50.0]), vec![1.0]);
    }

    #[test]
    fn degenerate_dimension_maps_to_zero() {
        let samples = vec![vec![3.0, 1.0], vec![3.0, 2.0]];
        let norm = Normalizer::fit(&samples);
        assert_eq!(norm.transform(&[3.0, 1.5]), vec![0.0, 0.5]);
    }

    #[test]
    fn inverse_roundtrips() {
        let norm = Normalizer::from_bounds(vec![-2.0, 10.0], vec![2.0, 20.0]);
        let raw = [1.0, 17.5];
        let t = norm.transform(&raw);
        for d in 0..2 {
            assert!((norm.inverse(d, t[d]) - raw[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_into_matches_transform() {
        let norm = Normalizer::from_bounds(vec![0.0, 0.0], vec![2.0, 4.0]);
        let row = [1.0, 1.0];
        let mut buf = [0.0; 2];
        norm.transform_into(&row, &mut buf);
        assert_eq!(buf.to_vec(), norm.transform(&row));
    }

    #[test]
    fn empty_fit_produces_zero_dim() {
        let norm = Normalizer::fit(&[]);
        assert_eq!(norm.dim(), 0);
    }
}
