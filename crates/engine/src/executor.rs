//! Scoped worker-pool helpers for build- and query-time parallelism.
//!
//! Both helpers split their input into one contiguous chunk per worker and
//! run the chunks on `std::thread::scope` threads, so results come back in
//! input order and nothing outlives the call — no queues, no shared mutable
//! state, no extra dependencies.  With `workers <= 1` (or a single chunk)
//! they degrade to plain sequential execution on the caller's thread.

use common::{QueryContext, QueryStats};

/// Applies `f` to every item, using up to `workers` scoped threads, and
/// returns the results in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let w = workers.max(1).min(n.max(1));
    if w <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(w);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(w);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
    });
    out
}

/// Runs a query workload split across up to `workers` scoped threads, one
/// fresh [`QueryContext`] per worker, and returns the per-query results in
/// input order together with the merged statistics.
///
/// This is what makes the batch entry points of a sharded index actually
/// parallel: the index is `Sync`, so every worker queries it concurrently
/// while charging costs to its own context.
pub fn run_batch<Q, R, F>(queries: &[Q], workers: usize, run: F) -> (Vec<R>, QueryStats)
where
    Q: Sync,
    R: Send,
    F: Fn(&[Q], &mut QueryContext) -> Vec<R> + Sync,
{
    let n = queries.len();
    let w = workers.max(1).min(n.max(1));
    if w <= 1 {
        let mut cx = QueryContext::new();
        let out = run(queries, &mut cx);
        return (out, cx.stats);
    }
    let chunk = n.div_ceil(w);
    let run = &run;
    let mut out = Vec::with_capacity(n);
    let mut stats = QueryStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                scope.spawn(move || {
                    let mut cx = QueryContext::new();
                    let res = run(qs, &mut cx);
                    (res, cx.stats)
                })
            })
            .collect();
        for h in handles {
            let (res, s) = h.join().expect("worker thread panicked");
            out.extend(res);
            stats += s;
        }
    });
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        for workers in [1, 2, 4, 16] {
            let out = parallel_map(items.clone(), workers, |i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        assert!(parallel_map(Vec::<u32>::new(), 4, |i| i).is_empty());
        assert_eq!(parallel_map(vec![7u32], 4, |i| i + 1), vec![8]);
    }

    #[test]
    fn run_batch_merges_worker_stats_and_keeps_order() {
        let queries: Vec<u64> = (0..50).collect();
        for workers in [1, 3, 8] {
            let (out, stats) = run_batch(&queries, workers, |qs, cx| {
                qs.iter()
                    .map(|&q| {
                        cx.count_block();
                        cx.count_candidates(2);
                        q * 10
                    })
                    .collect()
            });
            assert_eq!(out, queries.iter().map(|q| q * 10).collect::<Vec<_>>());
            assert_eq!(stats.blocks_touched, 50, "workers = {workers}");
            assert_eq!(stats.candidates_scanned, 100);
        }
    }
}
