//! Sharded, multi-threaded serving engine layered on top of any
//! [`SpatialIndex`] family.
//!
//! The RSMI paper partitions data recursively *inside* one index; "The Case
//! for Learned Spatial Indexes" (Pandey et al.) and LiLIS show the same
//! partition-then-learn recipe winning *across* workers.  This crate is that
//! serving layer:
//!
//! * [`partition`] — the learned partitioner: points are ordered by their
//!   global rank-space Hilbert key (reusing `sfc`) and cut into `S`
//!   near-equal shards, each with an MBR and a curve-key range.
//! * [`ShardedIndex`] — a [`SpatialIndex`] whose shards each hold an inner
//!   index built by a caller-supplied factory (the registry passes
//!   `registry::build_index`, keeping this crate free of index-family
//!   dependencies).  Shards build in parallel on `std::thread::scope`.
//! * A **query planner**: point queries route to exactly one shard via the
//!   frozen partitioner, window queries fan out only to shards whose MBR
//!   intersects the window, and kNN queries visit shards best-first by MBR
//!   `MINDIST` with a distance-bound cutoff and a `(distance, id)` k-way
//!   merge.  Skipped shards are charged to the new
//!   [`QueryStats::shards_pruned`](common::QueryStats) counter.
//! * [`executor`] — the batch executor: the trait's batch entry points split
//!   a workload over a scoped worker pool, one [`QueryContext`] per worker,
//!   and merge the per-worker statistics, making batch serving actually
//!   parallel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod partition;

use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use partition::Partitioner;
use persist::{PersistError, SnapshotReader, SnapshotWriter};
use sfc::CurveKind;

/// Section tag of the sharded container metadata.
const SECTION_SHARDED_META: u32 = 0x5401;
/// Section tag of the frozen partitioner routing tables.
const SECTION_SHARDED_PARTITIONER: u32 = 0x5402;
/// Section tag of one shard (MBR, key range, embedded inner snapshot);
/// repeated once per shard.
const SECTION_SHARD: u32 = 0x5403;

/// Configuration of the sharded serving layer.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards to cut the data into (clamped to at least 1 and at
    /// most the point count).
    pub shards: usize,
    /// Worker threads used by the batch entry points (1 = sequential).
    pub threads: usize,
    /// Space-filling curve ordering the rank-space partitioning keys.
    pub curve: CurveKind,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            threads: 1,
            curve: CurveKind::Hilbert,
        }
    }
}

/// The factory building one shard's inner index from its points.
pub type InnerBuilder<'a> = &'a (dyn Fn(&[Point]) -> Box<dyn SpatialIndex> + Sync);

/// The loader turning one shard's embedded snapshot bytes back into an
/// inner index — the registry passes its own snapshot loader (see
/// [`ShardedIndex::read_snapshot`]).
pub type InnerLoader<'a> = &'a dyn Fn(&[u8]) -> Result<Box<dyn SpatialIndex>, PersistError>;

struct Shard {
    index: Box<dyn SpatialIndex>,
    /// Bounding rectangle of the shard's *current* contents; expanded on
    /// insert so window/kNN pruning never cuts off live points.
    mbr: Rect,
}

/// Routing metadata of one shard as stored in the sharded container: the
/// MBR and frozen curve-key range, without the shard's data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMeta {
    /// Bounding rectangle of the shard's contents at snapshot time.
    pub mbr: Rect,
    /// Inclusive lower bound of the shard's frozen curve-key range.
    pub key_lo: u64,
    /// Exclusive upper bound of the range (`None` = open-ended last shard).
    pub key_hi: Option<u64>,
}

/// The routing-table view of a sharded snapshot: everything a distributed
/// router needs to plan queries — the frozen [`Partitioner`] plus each
/// shard's MBR and key range — **without** loading any shard's data.  This
/// is the router's whole contract with the container format: it reads the
/// meta sections and skips every embedded inner snapshot.
#[derive(Debug, Clone)]
pub struct ShardManifest {
    /// Worker threads the snapshot was configured with (ignored by routers).
    pub threads: usize,
    /// The frozen rank-space routing table.
    pub partitioner: Partitioner,
    /// Per-shard routing metadata, in shard order.
    pub shards: Vec<ShardMeta>,
}

impl ShardManifest {
    /// Reads only the routing metadata from a sharded container, skipping
    /// the embedded per-shard snapshots (their bytes are never parsed).
    pub fn read(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.begin_section(SECTION_SHARDED_META)?;
        let threads = r.get_usize()?.max(1);
        let n_shards = r.get_usize()?;
        r.end_section()?;

        r.begin_section(SECTION_SHARDED_PARTITIONER)?;
        let partitioner = Partitioner::decode(r)?;
        r.end_section()?;
        if partitioner.shard_count() != n_shards {
            return Err(PersistError::Corrupt(format!(
                "container announces {n_shards} shards, partitioner routes to {}",
                partitioner.shard_count()
            )));
        }

        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            r.begin_section(SECTION_SHARD)?;
            let meta = read_shard_meta(r, &partitioner, i)?;
            let _blob = r.get_bytes()?;
            r.end_section()?;
            shards.push(meta);
        }
        Ok(Self {
            threads,
            partitioner,
            shards,
        })
    }

    /// Number of shards the manifest routes to.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// Reads one shard section's routing metadata (MBR + key range), leaving
/// the reader positioned at the embedded inner snapshot bytes.
fn read_shard_meta(
    r: &mut SnapshotReader<'_>,
    partitioner: &Partitioner,
    i: usize,
) -> Result<ShardMeta, PersistError> {
    let mbr = r.get_rect()?;
    let key_lo = r.get_u64()?;
    let key_hi = if r.get_bool()? {
        Some(r.get_u64()?)
    } else {
        None
    };
    if (key_lo, key_hi) != partitioner.shard_key_range(i) {
        return Err(PersistError::Corrupt(format!(
            "shard {i} key range disagrees with the partitioner"
        )));
    }
    Ok(ShardMeta {
        mbr,
        key_lo,
        key_hi,
    })
}

/// Extracts shard `shard`'s embedded inner snapshot from a sharded
/// container — a complete snapshot image with its own header, loadable (or
/// servable) on its own.  Other shards' bytes are skipped, never parsed:
/// this is what lets a shard server start by reading one section of a
/// container that may hold many times its memory.
pub fn read_shard_snapshot_bytes(
    r: &mut SnapshotReader<'_>,
    shard: usize,
) -> Result<Vec<u8>, PersistError> {
    r.begin_section(SECTION_SHARDED_META)?;
    let _threads = r.get_usize()?.max(1);
    let n_shards = r.get_usize()?;
    r.end_section()?;
    if shard >= n_shards {
        return Err(PersistError::Corrupt(format!(
            "shard {shard} out of range: container holds {n_shards} shards"
        )));
    }

    r.begin_section(SECTION_SHARDED_PARTITIONER)?;
    let partitioner = Partitioner::decode(r)?;
    r.end_section()?;

    for i in 0..=shard {
        r.begin_section(SECTION_SHARD)?;
        let _meta = read_shard_meta(r, &partitioner, i)?;
        let blob = r.get_bytes()?;
        r.end_section()?;
        if i == shard {
            return Ok(blob.to_vec());
        }
    }
    unreachable!("loop returns at i == shard")
}

/// A sharded spatial index: `S` inner indices behind one [`SpatialIndex`]
/// facade, with routed point queries, pruned window/kNN fan-out, and
/// multi-threaded batch execution.
pub struct ShardedIndex {
    name: &'static str,
    partitioner: Partitioner,
    shards: Vec<Shard>,
    threads: usize,
}

impl ShardedIndex {
    /// Partitions `points`, builds one inner index per shard **in parallel**
    /// (one scoped thread per shard), and assembles the serving facade.
    ///
    /// `name` is the registered display name (e.g. `"Sharded-RSMI"`);
    /// `build_inner` constructs a shard's inner index — the registry passes
    /// its own `build_index`, so any registered family can be sharded.
    pub fn build(
        points: &[Point],
        cfg: ShardedConfig,
        name: &'static str,
        build_inner: InnerBuilder<'_>,
    ) -> Self {
        let (partitioner, slices) = Partitioner::partition(points, cfg.shards, cfg.curve);
        // One build job per shard, capped at the machine's parallelism so a
        // high shard count cannot oversubscribe cores (each job is a full
        // inner-index build — sort + packing, or model training).
        let workers = slices.len().min(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        );
        let shards = executor::parallel_map(slices, workers, |slice| Shard {
            index: build_inner(&slice.points),
            mbr: slice.mbr,
        });
        Self {
            name,
            partitioner,
            shards,
            threads: cfg.threads.max(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used by the batch entry points.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reads a sharded snapshot written by
    /// [`SpatialIndex::write_snapshot`].
    ///
    /// The container stores per-shard sections (MBR, frozen curve-key range,
    /// and the inner index as an embedded snapshot with its own header);
    /// `load_inner` turns an inner snapshot's bytes back into an index — the
    /// registry passes its own snapshot loader, so any registered leaf
    /// family round-trips without this crate depending on index families.
    /// `name` is the registered display name the loaded facade reports.
    pub fn read_snapshot(
        r: &mut SnapshotReader<'_>,
        name: &'static str,
        load_inner: InnerLoader<'_>,
    ) -> Result<Self, PersistError> {
        r.begin_section(SECTION_SHARDED_META)?;
        let threads = r.get_usize()?.max(1);
        let n_shards = r.get_usize()?;
        r.end_section()?;

        r.begin_section(SECTION_SHARDED_PARTITIONER)?;
        let partitioner = Partitioner::decode(r)?;
        r.end_section()?;
        if partitioner.shard_count() != n_shards {
            return Err(PersistError::Corrupt(format!(
                "container announces {n_shards} shards, partitioner routes to {}",
                partitioner.shard_count()
            )));
        }

        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            r.begin_section(SECTION_SHARD)?;
            let meta = read_shard_meta(r, &partitioner, i)?;
            let blob = r.get_bytes()?;
            let index = load_inner(blob)?;
            r.end_section()?;
            shards.push(Shard {
                index,
                mbr: meta.mbr,
            });
        }

        Ok(Self {
            name,
            partitioner,
            shards,
            threads,
        })
    }

    /// Merges `(distance², point)` candidates, keeping the `k` best by
    /// `(distance, id)` — the deterministic tie-break shared with
    /// `brute_force::knn_query`.  Public so the distributed router's k-way
    /// gather uses byte-identical merge semantics (its per-shard candidate
    /// streams must fold exactly like the single-process planner's).
    pub fn merge_candidate(best: &mut Vec<(f64, Point)>, k: usize, d_sq: f64, p: Point) {
        if best.len() >= k && {
            let (kd, kp) = best[k - 1];
            (d_sq, p.id) >= (kd, kp.id)
        } {
            return;
        }
        if let Err(pos) = best.binary_search_by(|(bd, bp)| {
            bd.partial_cmp(&d_sq)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(bp.id.cmp(&p.id))
        }) {
            best.insert(pos, (d_sq, p));
            best.truncate(k);
        }
    }
}

impl SpatialIndex for ShardedIndex {
    fn name(&self) -> &'static str {
        self.name
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        if self.shards.is_empty() {
            return None;
        }
        // The frozen key function sends an indexed location to exactly the
        // shard that holds it, so one shard answers the query.
        let primary = self.partitioner.route(q.x, q.y);
        cx.count_shard_visit();
        if let Some(hit) = self.shards[primary].index.point_query(q, cx) {
            cx.count_shards_pruned(self.shards.len() - 1);
            return Some(hit);
        }
        // Miss in the routed shard: only possible for locations not indexed
        // under the frozen keys (negative lookups, duplicate locations).
        // Fall back to the shards whose MBR can contain the location.
        let mut pruned = self.shards.len() - 1;
        for (i, s) in self.shards.iter().enumerate() {
            if i == primary || !s.mbr.contains(q) {
                continue;
            }
            pruned -= 1;
            cx.count_shard_visit();
            if let Some(hit) = s.index.point_query(q, cx) {
                cx.count_shards_pruned(pruned);
                return Some(hit);
            }
        }
        cx.count_shards_pruned(pruned);
        None
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        let mut pruned = 0usize;
        for s in &self.shards {
            if s.mbr.intersects(window) {
                cx.count_shard_visit();
                s.index.window_query_visit(window, cx, visit);
            } else {
                pruned += 1;
            }
        }
        cx.count_shards_pruned(pruned);
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if k == 0 {
            return;
        }
        let k_eff = k.min(self.len());
        if k_eff == 0 {
            return;
        }
        // Best-first over shards by MINDIST to the shard MBR (ties broken by
        // shard position for determinism).
        let mut order: Vec<(f64, usize)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.index.is_empty())
            .map(|(i, s)| (s.mbr.min_dist_sq(q), i))
            .collect();
        order.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let empty_shards = self.shards.len() - order.len();

        let mut best: Vec<(f64, Point)> = Vec::with_capacity(k_eff + 1);
        let mut pruned = empty_shards;
        for (i, &(mindist_sq, shard)) in order.iter().enumerate() {
            // Distance-bound cutoff: once k candidates are collected, a
            // shard whose MBR lies strictly beyond the k-th distance cannot
            // contribute — and neither can any later (farther) shard.
            if best.len() >= k_eff && mindist_sq > best[k_eff - 1].0 {
                pruned += order.len() - i;
                break;
            }
            cx.count_shard_visit();
            self.shards[shard]
                .index
                .knn_query_visit(q, k_eff, cx, &mut |p| {
                    Self::merge_candidate(&mut best, k_eff, p.dist_sq(q), *p);
                });
        }
        cx.count_shards_pruned(pruned);
        for (_, p) in &best {
            visit(p);
        }
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        // Shard-MBR fan-out: only shards whose MBR lies within the radius of
        // the centre are queried; the rest are charged as pruned.
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let mut pruned = 0usize;
        for s in &self.shards {
            if !s.index.is_empty() && s.mbr.min_dist_sq(center) <= r_sq {
                cx.count_shard_visit();
                s.index.range_query_visit(center, radius, cx, visit);
            } else {
                pruned += 1;
            }
        }
        cx.count_shards_pruned(pruned);
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        for s in &self.shards {
            s.index.for_each_point(visit);
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        // Shard-MBR fan-out: each shard joins only the probes within the
        // radius of its MBR, through its own family-specific pruning.  The
        // partitioner assigns every indexed point to exactly one shard, so
        // the union of per-shard pair sets is duplicate-free by
        // construction (test-enforced) — no cross-shard deduplication pass
        // is needed.
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let mut pruned = 0usize;
        let mut kept: Vec<Point> = Vec::new();
        for s in &self.shards {
            if s.index.is_empty() {
                pruned += 1;
                continue;
            }
            storage::kernels::probes_within(probes, &s.mbr, r_sq, &mut kept);
            if kept.is_empty() {
                pruned += 1;
                continue;
            }
            cx.count_shard_visit();
            s.index.distance_join_probes(&kept, radius, cx, visit);
        }
        cx.count_shards_pruned(pruned);
    }

    fn insert(&mut self, p: Point) {
        if self.shards.is_empty() {
            return;
        }
        let shard = self.partitioner.route(p.x, p.y);
        self.shards[shard].mbr.expand_to_point(p);
        self.shards[shard].index.insert(p);
    }

    fn delete(&mut self, p: &Point) -> bool {
        if self.shards.is_empty() {
            return false;
        }
        let primary = self.partitioner.route(p.x, p.y);
        if self.shards[primary].index.delete(p) {
            return true;
        }
        for (i, s) in self.shards.iter_mut().enumerate() {
            if i != primary && s.mbr.contains(p) && s.index.delete(p) {
                return true;
            }
        }
        false
    }

    fn rebuild(&mut self) {
        // Per-shard maintenance rebuild, parallel across the worker pool.
        // The partitioning itself is frozen; only inner layouts are
        // restored.
        let w = self.threads.min(self.shards.len()).max(1);
        if w <= 1 {
            for s in &mut self.shards {
                s.index.rebuild();
            }
            return;
        }
        let chunk = self.shards.len().div_ceil(w);
        std::thread::scope(|scope| {
            for shards in self.shards.chunks_mut(chunk) {
                scope.spawn(move || {
                    for s in shards {
                        s.index.rebuild();
                    }
                });
            }
        });
    }

    fn size_bytes(&self) -> usize {
        self.partitioner.size_bytes()
            + self
                .shards
                .iter()
                .map(|s| s.index.size_bytes())
                .sum::<usize>()
    }

    fn height(&self) -> usize {
        // One routing level above the tallest inner index.
        1 + self
            .shards
            .iter()
            .map(|s| s.index.height())
            .max()
            .unwrap_or(0)
    }

    fn model_count(&self) -> usize {
        self.shards.iter().map(|s| s.index.model_count()).sum()
    }

    fn model_error_bounds(&self) -> Option<(u64, u64)> {
        // Element-wise worst case across shards; None only when no shard
        // has a learned component.
        self.shards
            .iter()
            .filter_map(|s| s.index.model_error_bounds())
            .reduce(|(b0, a0), (b1, a1)| (b0.max(b1), a0.max(a1)))
    }

    fn maintenance_stats(&self) -> Option<common::MaintenanceStats> {
        // Aggregate over shards; None only when no shard supports
        // incremental maintenance.
        self.shards
            .iter()
            .filter_map(|s| s.index.maintenance_stats())
            .reduce(|mut acc, s| {
                acc.ops_since_train += s.ops_since_train;
                acc.widened_below += s.widened_below;
                acc.widened_above += s.widened_above;
                acc.stale_subtrees += s.stale_subtrees;
                acc.subtrees += s.subtrees;
                acc
            })
    }

    fn rebuild_partial(
        &mut self,
        budget: &common::MaintenanceBudget,
    ) -> common::MaintenanceOutcome {
        // Distribute the subtree budget across shards, most-drifted shard
        // first, charging each shard's spend against the remainder.  The
        // partitioning is frozen — partial maintenance never moves points
        // between shards (the policy layer falls back to a full rebuild on
        // skew).
        // Shards without maintenance support are skipped: the trait default
        // would turn a "partial" pass into a per-shard full rebuild.
        let mut order: Vec<(usize, u64)> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let m = s.index.maintenance_stats()?;
                let drift = m.ops_since_train + m.widened_below + m.widened_above;
                (drift > 0).then_some((i, drift))
            })
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut remaining = budget.max_subtrees;
        let mut out = common::MaintenanceOutcome::default();
        for (i, _) in order {
            if remaining == 0 {
                // Out of budget: everything still stale in the remaining
                // shards is deferred to the next pass.
                if let Some(m) = self.shards[i].index.maintenance_stats() {
                    out.subtrees_deferred += m.stale_subtrees;
                }
                continue;
            }
            let shard_budget = common::MaintenanceBudget {
                max_subtrees: remaining,
                drift_threshold: budget.drift_threshold,
            };
            let r = self.shards[i].index.rebuild_partial(&shard_budget);
            out.full_rebuild |= r.full_rebuild;
            out.subtrees_rebuilt += r.subtrees_rebuilt;
            out.subtrees_deferred += r.subtrees_deferred;
            remaining = remaining.saturating_sub(r.subtrees_rebuilt);
        }
        out
    }

    fn clone_index(&self) -> Option<Box<dyn SpatialIndex>> {
        // Cloneable iff every inner index is.
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            shards.push(Shard {
                index: s.index.clone_index()?,
                mbr: s.mbr,
            });
        }
        Some(Box::new(ShardedIndex {
            name: self.name,
            partitioner: self.partitioner.clone(),
            shards,
            threads: self.threads,
        }))
    }

    fn shard_point_counts(&self) -> Option<Vec<usize>> {
        Some(self.shards.iter().map(|s| s.index.len()).collect())
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        w.begin_section(SECTION_SHARDED_META);
        w.put_usize(self.threads);
        w.put_usize(self.shards.len());
        w.end_section();

        w.begin_section(SECTION_SHARDED_PARTITIONER);
        self.partitioner.encode(w);
        w.end_section();

        // One section per shard: serving metadata (MBR, frozen key range)
        // plus the inner index as a complete embedded snapshot, so each
        // shard round-trips independently through the registry's loader.
        for (i, shard) in self.shards.iter().enumerate() {
            w.begin_section(SECTION_SHARD);
            w.put_rect(&shard.mbr);
            let (key_lo, key_hi) = self.partitioner.shard_key_range(i);
            w.put_u64(key_lo);
            match key_hi {
                Some(hi) => {
                    w.put_bool(true);
                    w.put_u64(hi);
                }
                None => w.put_bool(false),
            }
            let mut inner = SnapshotWriter::new(shard.index.name());
            shard.index.write_snapshot(&mut inner)?;
            w.put_bytes(&inner.finish());
            w.end_section();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Batch entry points: the parallel serving path
    // ------------------------------------------------------------------

    fn point_queries(&self, qs: &[Point], cx: &mut QueryContext) -> Vec<Option<Point>> {
        let (out, stats) = executor::run_batch(qs, self.threads, |chunk, wcx| {
            chunk.iter().map(|q| self.point_query(q, wcx)).collect()
        });
        cx.stats += stats;
        out
    }

    fn window_queries(&self, windows: &[Rect], cx: &mut QueryContext) -> Vec<Vec<Point>> {
        let (out, stats) = executor::run_batch(windows, self.threads, |chunk, wcx| {
            chunk.iter().map(|w| self.window_query(w, wcx)).collect()
        });
        cx.stats += stats;
        out
    }

    fn knn_queries(&self, qs: &[Point], k: usize, cx: &mut QueryContext) -> Vec<Vec<Point>> {
        let (out, stats) = executor::run_batch(qs, self.threads, |chunk, wcx| {
            chunk.iter().map(|q| self.knn_query(q, k, wcx)).collect()
        });
        cx.stats += stats;
        out
    }

    fn range_queries(
        &self,
        centers: &[Point],
        radius: f64,
        cx: &mut QueryContext,
    ) -> Vec<Vec<Point>> {
        let (out, stats) = executor::run_batch(centers, self.threads, |chunk, wcx| {
            chunk
                .iter()
                .map(|c| self.range_query(c, radius, wcx))
                .collect()
        });
        cx.stats += stats;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force;
    use datagen::{generate, queries, Distribution};

    /// Minimal exact inner index (linear scans) so the engine's unit tests
    /// do not depend on any index family crate.
    struct Naive(Vec<Point>);

    impl SpatialIndex for Naive {
        fn name(&self) -> &'static str {
            "Naive"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
            cx.count_block_scan(self.0.len());
            brute_force::point_query(&self.0, q)
        }
        fn window_query_visit(
            &self,
            window: &Rect,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            cx.count_block_scan(self.0.len());
            for p in self.0.iter().filter(|p| window.contains(p)) {
                visit(p);
            }
        }
        fn knn_query_visit(
            &self,
            q: &Point,
            k: usize,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            cx.count_block_scan(self.0.len());
            for p in brute_force::knn_query(&self.0, q, k) {
                visit(&p);
            }
        }
        fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
            for p in &self.0 {
                visit(p);
            }
        }
        fn insert(&mut self, p: Point) {
            self.0.push(p);
        }
        fn delete(&mut self, p: &Point) -> bool {
            let before = self.0.len();
            self.0.retain(|x| !(x.same_location(p) && x.id == p.id));
            self.0.len() != before
        }
        fn size_bytes(&self) -> usize {
            self.0.len() * std::mem::size_of::<Point>()
        }
        fn height(&self) -> usize {
            1
        }
    }

    fn naive_builder() -> impl Fn(&[Point]) -> Box<dyn SpatialIndex> + Sync {
        |pts: &[Point]| Box::new(Naive(pts.to_vec())) as Box<dyn SpatialIndex>
    }

    fn build(data: &[Point], shards: usize, threads: usize) -> ShardedIndex {
        ShardedIndex::build(
            data,
            ShardedConfig {
                shards,
                threads,
                curve: CurveKind::Hilbert,
            },
            "Sharded-Naive",
            &naive_builder(),
        )
    }

    #[test]
    fn point_queries_route_to_exactly_one_shard() {
        let data = generate(Distribution::skewed_default(), 2_000, 3);
        let index = build(&data, 8, 1);
        assert_eq!(index.shard_count(), 8);
        assert_eq!(index.len(), data.len());
        let mut cx = QueryContext::new();
        for p in data.iter().step_by(17) {
            assert_eq!(index.point_query(p, &mut cx).map(|f| f.id), Some(p.id));
        }
        let n_queries = data.iter().step_by(17).count() as u64;
        let stats = cx.take_stats();
        assert_eq!(stats.shards_visited, n_queries, "routing fanned out");
        assert_eq!(stats.shards_pruned, n_queries * 7);
    }

    #[test]
    fn window_queries_prune_and_match_brute_force() {
        let data = generate(Distribution::Uniform, 3_000, 5);
        let index = build(&data, 8, 1);
        let mut cx = QueryContext::new();
        let ws = queries::window_queries(&data, queries::WindowSpec::default(), 30, 7);
        for w in &ws {
            let mut got: Vec<u64> = index
                .window_query(w, &mut cx)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut truth: Vec<u64> = brute_force::window_query(&data, w)
                .iter()
                .map(|p| p.id)
                .collect();
            got.sort_unstable();
            truth.sort_unstable();
            assert_eq!(got, truth);
        }
        let stats = cx.take_stats();
        assert!(stats.shards_pruned > 0, "small windows should prune shards");
        assert_eq!(
            stats.shards_visited + stats.shards_pruned,
            8 * ws.len() as u64
        );
    }

    #[test]
    fn knn_matches_brute_force_with_id_tiebreak() {
        let data = generate(Distribution::OsmLike, 2_500, 9);
        let index = build(&data, 6, 1);
        let mut cx = QueryContext::new();
        for q in queries::knn_queries(&data, 25, 11) {
            for k in [1usize, 7, 40] {
                let got = index.knn_query(&q, k, &mut cx);
                let truth = brute_force::knn_query(&data, &q, k);
                assert_eq!(
                    got.iter().map(|p| p.id).collect::<Vec<_>>(),
                    truth.iter().map(|p| p.id).collect::<Vec<_>>(),
                    "k = {k}"
                );
            }
        }
    }

    #[test]
    fn knn_cutoff_prunes_far_shards() {
        let data = generate(Distribution::Uniform, 4_000, 13);
        let index = build(&data, 8, 1);
        let mut cx = QueryContext::new();
        let _ = index.knn_query(&Point::new(0.5, 0.5), 5, &mut cx);
        let stats = cx.take_stats();
        assert!(stats.shards_visited >= 1);
        assert!(
            stats.shards_pruned > 0,
            "a k=5 query should not fan out to all 8 shards"
        );
    }

    #[test]
    fn batch_execution_is_identical_across_thread_counts() {
        let data = generate(Distribution::TigerLike, 2_000, 15);
        let qs = queries::point_queries(&data, 200, 17);
        let ws = queries::window_queries(&data, queries::WindowSpec::default(), 40, 19);
        let knn = queries::knn_queries(&data, 40, 21);

        let seq = build(&data, 4, 1);
        let par = build(&data, 4, 4);
        let (mut cx1, mut cx4) = (QueryContext::new(), QueryContext::new());
        assert_eq!(
            seq.point_queries(&qs, &mut cx1),
            par.point_queries(&qs, &mut cx4)
        );
        assert_eq!(
            seq.window_queries(&ws, &mut cx1),
            par.window_queries(&ws, &mut cx4)
        );
        assert_eq!(
            seq.knn_queries(&knn, 10, &mut cx1),
            par.knn_queries(&knn, 10, &mut cx4)
        );
        assert_eq!(
            cx1.stats, cx4.stats,
            "merged stats must not depend on threading"
        );
    }

    #[test]
    fn range_queries_prune_shards_and_match_brute_force() {
        let data = generate(Distribution::Uniform, 3_000, 27);
        let index = build(&data, 8, 1);
        let mut cx = QueryContext::new();
        let centers = queries::knn_queries(&data, 25, 31);
        for c in &centers {
            let mut got: Vec<u64> = index
                .range_query(c, 0.05, &mut cx)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut truth: Vec<u64> = brute_force::range_query(&data, c, 0.05)
                .iter()
                .map(|p| p.id)
                .collect();
            got.sort_unstable();
            truth.sort_unstable();
            assert_eq!(got, truth);
        }
        let stats = cx.take_stats();
        assert!(stats.shards_pruned > 0, "small circles should prune shards");
        assert_eq!(
            stats.shards_visited + stats.shards_pruned,
            8 * centers.len() as u64
        );
        // The parallel batch entry point returns identical answers.
        let par = build(&data, 8, 4);
        let (mut cx1, mut cx4) = (QueryContext::new(), QueryContext::new());
        assert_eq!(
            index.range_queries(&centers, 0.05, &mut cx1),
            par.range_queries(&centers, 0.05, &mut cx4)
        );
        assert_eq!(cx1.stats, cx4.stats);
    }

    #[test]
    fn distance_join_fans_out_by_shard_mbr_without_duplicate_pairs() {
        let data = generate(Distribution::skewed_default(), 2_000, 33);
        let probes = generate(Distribution::Uniform, 300, 35);
        let index = build(&data, 6, 1);
        let other = Naive(probes.clone());
        let mut cx = QueryContext::new();
        let mut got: Vec<(u64, u64)> = index
            .distance_join(&other, 0.02, &mut cx)
            .iter()
            .map(|(p, q)| (p.id, q.id))
            .collect();
        let mut truth: Vec<(u64, u64)> = brute_force::distance_join(&data, &probes, 0.02)
            .iter()
            .map(|(p, q)| (p.id, q.id))
            .collect();
        got.sort_unstable();
        truth.sort_unstable();
        // Shards partition the points, so pairs are already duplicate-free.
        let mut deduped = got.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), got.len(), "cross-shard duplicate pairs");
        assert_eq!(got, truth);
        // Enumeration chains the shards and covers everything once.
        let mut n = 0;
        index.for_each_point(&mut |_| n += 1);
        assert_eq!(n, data.len());
    }

    #[test]
    fn insert_delete_and_rebuild_stay_consistent() {
        let data = generate(Distribution::Normal, 1_000, 23);
        let mut index = build(&data, 4, 2);
        let mut cx = QueryContext::new();

        let extra = Point::with_id(0.987, 0.013, 777_777);
        index.insert(extra);
        assert_eq!(index.len(), 1_001);
        assert_eq!(
            index.point_query(&extra, &mut cx).map(|p| p.id),
            Some(extra.id)
        );

        // The expanded MBR keeps the inserted point visible to windows.
        let w = Rect::centered(extra.x, extra.y, 0.01, 0.01);
        assert!(index
            .window_query(&w, &mut cx)
            .iter()
            .any(|p| p.id == extra.id));

        assert!(index.delete(&extra));
        assert!(!index.delete(&extra));
        assert_eq!(index.len(), 1_000);

        index.rebuild();
        assert_eq!(index.len(), 1_000);
        assert!(index.point_query(&data[11], &mut cx).is_some());
    }

    #[test]
    fn empty_and_single_point_indices_answer_gracefully() {
        let empty = build(&[], 4, 2);
        let mut cx = QueryContext::new();
        assert!(empty.is_empty());
        assert_eq!(empty.shard_count(), 1);
        assert!(empty.point_query(&Point::new(0.5, 0.5), &mut cx).is_none());
        assert!(empty.window_query(&Rect::unit(), &mut cx).is_empty());
        assert!(empty
            .knn_query(&Point::new(0.5, 0.5), 3, &mut cx)
            .is_empty());

        let one = build(&[Point::with_id(0.4, 0.6, 9)], 4, 2);
        assert_eq!(one.len(), 1);
        assert_eq!(one.knn_query(&Point::new(0.0, 0.0), 5, &mut cx).len(), 1);
    }

    #[test]
    fn facade_reports_aggregate_structure() {
        let data = generate(Distribution::Uniform, 1_200, 25);
        let index = build(&data, 3, 1);
        assert_eq!(index.name(), "Sharded-Naive");
        assert!(index.size_bytes() > data.len() * std::mem::size_of::<Point>());
        assert_eq!(index.height(), 2); // routing level + naive level
        assert_eq!(index.model_count(), 0);
    }

    /// [`Naive`] plus the maintenance protocol: one subtree per shard whose
    /// drift is the op count since the last partial retrain.
    #[derive(Clone)]
    struct MaintNaive {
        pts: Vec<Point>,
        ops: u64,
    }

    impl SpatialIndex for MaintNaive {
        fn name(&self) -> &'static str {
            "MaintNaive"
        }
        fn len(&self) -> usize {
            self.pts.len()
        }
        fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
            cx.count_block_scan(self.pts.len());
            brute_force::point_query(&self.pts, q)
        }
        fn window_query_visit(
            &self,
            window: &Rect,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            cx.count_block_scan(self.pts.len());
            for p in self.pts.iter().filter(|p| window.contains(p)) {
                visit(p);
            }
        }
        fn knn_query_visit(
            &self,
            q: &Point,
            k: usize,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            cx.count_block_scan(self.pts.len());
            for p in brute_force::knn_query(&self.pts, q, k) {
                visit(&p);
            }
        }
        fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
            for p in &self.pts {
                visit(p);
            }
        }
        fn insert(&mut self, p: Point) {
            self.ops += 1;
            self.pts.push(p);
        }
        fn delete(&mut self, p: &Point) -> bool {
            let before = self.pts.len();
            self.pts.retain(|x| !(x.same_location(p) && x.id == p.id));
            let removed = self.pts.len() != before;
            if removed {
                self.ops += 1;
            }
            removed
        }
        fn size_bytes(&self) -> usize {
            self.pts.len() * std::mem::size_of::<Point>()
        }
        fn height(&self) -> usize {
            1
        }
        fn maintenance_stats(&self) -> Option<common::MaintenanceStats> {
            Some(common::MaintenanceStats {
                ops_since_train: self.ops,
                widened_below: 0,
                widened_above: 0,
                stale_subtrees: usize::from(self.ops > 0),
                subtrees: 1,
            })
        }
        fn rebuild_partial(
            &mut self,
            budget: &common::MaintenanceBudget,
        ) -> common::MaintenanceOutcome {
            let stale = self.ops > 0;
            let retrain = stale && budget.max_subtrees >= 1;
            if retrain {
                self.ops = 0;
            }
            common::MaintenanceOutcome {
                full_rebuild: false,
                subtrees_rebuilt: usize::from(retrain),
                subtrees_deferred: usize::from(stale && !retrain),
            }
        }
        fn clone_index(&self) -> Option<Box<dyn SpatialIndex>> {
            Some(Box::new(self.clone()))
        }
    }

    fn build_maint(data: &[Point], shards: usize) -> ShardedIndex {
        ShardedIndex::build(
            data,
            ShardedConfig {
                shards,
                threads: 1,
                curve: CurveKind::Hilbert,
            },
            "Sharded-MaintNaive",
            &|pts: &[Point]| {
                Box::new(MaintNaive {
                    pts: pts.to_vec(),
                    ops: 0,
                }) as Box<dyn SpatialIndex>
            },
        )
    }

    #[test]
    fn maintenance_aggregates_and_budgets_across_shards() {
        let data = generate(Distribution::Uniform, 2_000, 27);
        let mut index = build_maint(&data, 4);
        let fresh = index.maintenance_stats().expect("maint-capable shards");
        assert_eq!(fresh.subtrees, 4);
        assert_eq!(fresh.ops_since_train, 0);
        // Spread writes across the key space so several shards drift.
        for i in 0..80u64 {
            index.insert(Point::with_id(
                (i as f64 + 0.5) / 80.0,
                ((i as f64 * 0.37) + 0.01) % 1.0,
                900_000 + i,
            ));
        }
        let dirty = index.maintenance_stats().unwrap();
        assert_eq!(dirty.ops_since_train, 80);
        assert!(dirty.stale_subtrees >= 2, "writes all landed in one shard");
        let counts = index.shard_point_counts().expect("sharded counts");
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), index.len());

        // A budget of one subtree retrains only the most-drifted shard and
        // defers the rest; repeated passes drain the backlog.
        let tight = common::MaintenanceBudget {
            max_subtrees: 1,
            drift_threshold: 0.0,
        };
        let first = index.rebuild_partial(&tight);
        assert!(!first.full_rebuild);
        assert_eq!(first.subtrees_rebuilt, 1);
        assert_eq!(first.subtrees_deferred, dirty.stale_subtrees - 1);
        let mut guard = 0;
        while index.rebuild_partial(&tight).subtrees_rebuilt > 0 {
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(index.maintenance_stats().unwrap().ops_since_train, 0);
    }

    #[test]
    fn clone_index_requires_every_shard_to_clone() {
        let data = generate(Distribution::Uniform, 1_000, 29);
        // Naive shards opt out of cloning, so the facade does too.
        assert!(build(&data, 3, 1).clone_index().is_none());
        assert!(build(&data, 3, 1).maintenance_stats().is_none());

        let mut index = build_maint(&data, 3);
        let clone = index.clone_index().expect("maint shards clone");
        assert_eq!(clone.len(), index.len());
        let mut cx = QueryContext::new();
        for p in data.iter().step_by(101) {
            assert_eq!(
                clone.point_query(p, &mut cx).map(|f| f.id),
                index.point_query(p, &mut cx).map(|f| f.id)
            );
        }
        // The clone is independent: writes to the original do not leak in.
        index.insert(Point::with_id(0.42, 0.42, 777_777));
        assert_eq!(clone.len(), data.len());
        assert_eq!(index.len(), data.len() + 1);
        // And the clone keeps the sharded query machinery (routing prunes).
        cx.take_stats();
        clone.point_query(&data[0], &mut cx);
        assert_eq!(cx.take_stats().shards_visited, 1);
    }
}
