//! The learned partitioner: rank-space Hilbert-key range partitioning.
//!
//! Points are ordered by the curve value of their global rank-space cell
//! (the same transform RSMI uses to order points *within* an index, §3.1)
//! and cut into `S` near-equal contiguous runs.  Because the rank space is
//! equi-depth in both marginals, the cut is balanced by construction — the
//! "learned" CDF here is the exact empirical one, frozen at build time.
//!
//! Each shard records its minimum bounding rectangle (for window / kNN
//! pruning) and its curve-key range (for point routing).  Routing a query
//! location reduces to two binary searches (its x- and y-rank under the
//! frozen marginals), one curve encode, and one binary search over the
//! shard key boundaries — `O(log n)` with no per-shard work.

use geom::{Point, Rect};
use sfc::{rank_space_order, CurveKind, RankSpace};

/// How a point set was cut into shards, plus the frozen routing tables.
#[derive(Debug, Clone)]
pub struct Partitioner {
    curve: CurveKind,
    order: u32,
    /// `(x, y)` of every build point, sorted by `(x, y)`: the frozen
    /// empirical marginal used to recover a location's x-rank.
    by_x: Vec<(f64, f64)>,
    /// `(y, x)` of every build point, sorted by `(y, x)`.
    by_y: Vec<(f64, f64)>,
    /// First curve key of each shard, ascending; routing picks the last
    /// shard whose first key is `<=` the query key.
    shard_key_lo: Vec<u64>,
}

/// One shard produced by [`Partitioner::partition`]: its points (in curve
/// order) and their bounding rectangle.
#[derive(Debug, Clone)]
pub struct ShardSlice {
    /// The shard's points, sorted by rank-space curve key.
    pub points: Vec<Point>,
    /// Minimum bounding rectangle of the shard's points.
    pub mbr: Rect,
}

impl Partitioner {
    /// Partitions `points` into (up to) `shards` near-equal slices by
    /// rank-space curve key, returning the partitioner and the slices.
    ///
    /// The slice count is `min(shards, n)` but at least one, so empty and
    /// tiny data sets degrade gracefully.
    pub fn partition(points: &[Point], shards: usize, curve: CurveKind) -> (Self, Vec<ShardSlice>) {
        let n = points.len();
        let s = shards.max(1).min(n.max(1));

        let rs = RankSpace::new(points);
        let perm = rs.sorted_permutation(curve);
        let keys = rs.curve_values(curve);

        let mut by_x: Vec<(f64, f64)> = points.iter().map(|p| (p.x, p.y)).collect();
        by_x.sort_by(cmp_pair);
        let mut by_y: Vec<(f64, f64)> = points.iter().map(|p| (p.y, p.x)).collect();
        by_y.sort_by(cmp_pair);

        // Near-equal cut: the first `n % s` shards get one extra point.
        let base = n / s;
        let extra = n % s;
        let mut slices = Vec::with_capacity(s);
        let mut shard_key_lo = Vec::with_capacity(s);
        let mut pos = 0usize;
        for i in 0..s {
            let len = base + usize::from(i < extra);
            let run = &perm[pos..pos + len];
            let mut mbr = Rect::empty();
            let pts: Vec<Point> = run
                .iter()
                .map(|&idx| {
                    mbr.expand_to_point(points[idx]);
                    points[idx]
                })
                .collect();
            shard_key_lo.push(run.first().map_or(0, |&idx| keys[idx]));
            slices.push(ShardSlice { points: pts, mbr });
            pos += len;
        }

        (
            Self {
                curve,
                order: rank_space_order(n.max(1)),
                by_x,
                by_y,
                shard_key_lo,
            },
            slices,
        )
    }

    /// Number of shards this partitioner routes to.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shard_key_lo.len()
    }

    /// The shard a location belongs to under the frozen build-time key
    /// function.
    ///
    /// For any build point with a unique location this is exactly the shard
    /// the point was placed in; for locations unseen at build time (negative
    /// lookups, inserts) it is the shard whose key range the location's
    /// frozen-rank curve key falls into, so inserts and later lookups of the
    /// same location always agree.
    pub fn route(&self, x: f64, y: f64) -> usize {
        let key = self.key_of(x, y);
        self.shard_key_lo
            .partition_point(|&lo| lo <= key)
            .saturating_sub(1)
    }

    /// The rank-space curve key of a location under the frozen marginals.
    fn key_of(&self, x: f64, y: f64) -> u64 {
        let max_coord = (1u32 << self.order) - 1;
        let rx = (self.by_x.partition_point(|&(px, py)| (px, py) < (x, y)) as u32).min(max_coord);
        let ry = (self.by_y.partition_point(|&(py, px)| (py, px) < (y, x)) as u32).min(max_coord);
        self.curve.encode(rx, ry, self.order)
    }

    /// Approximate memory held by the frozen routing tables, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.by_x.len() * std::mem::size_of::<(f64, f64)>() * 2
            + self.shard_key_lo.len() * std::mem::size_of::<u64>()
    }

    /// The curve-key range `[lo, hi)` routed to shard `i` (`hi` is `None`
    /// for the last shard, which is unbounded above).
    pub fn shard_key_range(&self, i: usize) -> (u64, Option<u64>) {
        (self.shard_key_lo[i], self.shard_key_lo.get(i + 1).copied())
    }

    /// Appends the frozen routing tables to a snapshot (sub-record of the
    /// sharded container's partitioner section).
    pub fn encode(&self, w: &mut persist::SnapshotWriter) {
        w.put_u8(match self.curve {
            CurveKind::Z => 0,
            CurveKind::Hilbert => 1,
        });
        w.put_u32(self.order);
        encode_pairs(w, &self.by_x);
        encode_pairs(w, &self.by_y);
        w.put_usize(self.shard_key_lo.len());
        for &k in &self.shard_key_lo {
            w.put_u64(k);
        }
    }

    /// Reads a partitioner written by [`Partitioner::encode`].
    pub fn decode(r: &mut persist::SnapshotReader<'_>) -> Result<Self, persist::PersistError> {
        let curve = match r.get_u8()? {
            0 => CurveKind::Z,
            1 => CurveKind::Hilbert,
            other => {
                return Err(persist::PersistError::Corrupt(format!(
                    "unknown curve tag {other}"
                )))
            }
        };
        let order = r.get_u32()?;
        let by_x = decode_pairs(r)?;
        let by_y = decode_pairs(r)?;
        let n = r.get_len(8)?;
        if n == 0 {
            return Err(persist::PersistError::Corrupt(
                "partitioner with zero shards".into(),
            ));
        }
        let mut shard_key_lo = Vec::with_capacity(n);
        for _ in 0..n {
            shard_key_lo.push(r.get_u64()?);
        }
        // Routing binary-searches all three tables; unsorted data would not
        // fail loudly — it would silently route queries to the wrong shard.
        let sorted = |pairs: &[(f64, f64)]| {
            pairs
                .windows(2)
                .all(|w| cmp_pair(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        };
        if !sorted(&by_x) || !sorted(&by_y) || shard_key_lo.windows(2).any(|w| w[0] > w[1]) {
            return Err(persist::PersistError::Corrupt(
                "partitioner routing tables are not sorted".into(),
            ));
        }
        Ok(Self {
            curve,
            order,
            by_x,
            by_y,
            shard_key_lo,
        })
    }
}

fn encode_pairs(w: &mut persist::SnapshotWriter, pairs: &[(f64, f64)]) {
    w.put_usize(pairs.len());
    for &(a, b) in pairs {
        w.put_f64(a);
        w.put_f64(b);
    }
}

fn decode_pairs(
    r: &mut persist::SnapshotReader<'_>,
) -> Result<Vec<(f64, f64)>, persist::PersistError> {
    let n = r.get_len(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let a = r.get_f64()?;
        let b = r.get_f64()?;
        out.push((a, b));
    }
    Ok(out)
}

/// Total order on coordinate pairs (the data contains no NaNs).
fn cmp_pair(a: &(f64, f64), b: &(f64, f64)) -> std::cmp::Ordering {
    a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};

    #[test]
    fn partition_is_near_equal_and_covers_all_points() {
        let data = generate(Distribution::skewed_default(), 1003, 7);
        let (p, slices) = Partitioner::partition(&data, 4, CurveKind::Hilbert);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(slices.iter().map(|s| s.points.len()).sum::<usize>(), 1003);
        for s in &slices {
            assert!((250..=251).contains(&s.points.len()));
            for pt in &s.points {
                assert!(s.mbr.contains(pt));
            }
        }
    }

    #[test]
    fn every_build_point_routes_to_its_own_shard() {
        for dist in [Distribution::Uniform, Distribution::OsmLike] {
            let data = generate(dist, 2_000, 11);
            let (p, slices) = Partitioner::partition(&data, 8, CurveKind::Hilbert);
            for (i, s) in slices.iter().enumerate() {
                for pt in &s.points {
                    assert_eq!(p.route(pt.x, pt.y), i, "{dist:?} misrouted {pt:?}");
                }
            }
        }
    }

    #[test]
    fn routing_is_total_for_unseen_locations() {
        let data = generate(Distribution::Normal, 500, 3);
        let (p, _) = Partitioner::partition(&data, 4, CurveKind::Hilbert);
        for (x, y) in [(0.0, 0.0), (1.0, 1.0), (0.5, 0.123), (0.999, 0.001)] {
            assert!(p.route(x, y) < 4);
        }
    }

    #[test]
    fn degenerate_inputs_produce_at_least_one_shard() {
        let (p, slices) = Partitioner::partition(&[], 4, CurveKind::Hilbert);
        assert_eq!(p.shard_count(), 1);
        assert!(slices[0].points.is_empty());
        assert!(slices[0].mbr.is_empty());

        let one = [Point::with_id(0.5, 0.5, 1)];
        let (p, slices) = Partitioner::partition(&one, 4, CurveKind::Hilbert);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(slices[0].points.len(), 1);
        assert_eq!(p.route(0.5, 0.5), 0);
    }

    #[test]
    fn shards_are_contiguous_in_curve_key_order() {
        let data = generate(Distribution::Uniform, 600, 13);
        let rs = RankSpace::new(&data);
        let keys = rs.curve_values(CurveKind::Hilbert);
        let (_, slices) = Partitioner::partition(&data, 3, CurveKind::Hilbert);
        let mut last = 0u64;
        for s in &slices {
            for pt in &s.points {
                let idx = data.iter().position(|d| d.id == pt.id).unwrap();
                assert!(keys[idx] >= last, "curve order broken across shards");
                last = keys[idx];
            }
        }
    }

    #[test]
    fn z_curve_partitioning_also_routes_correctly() {
        let data = generate(Distribution::TigerLike, 800, 17);
        let (p, slices) = Partitioner::partition(&data, 5, CurveKind::Z);
        for (i, s) in slices.iter().enumerate() {
            for pt in s.points.iter().step_by(7) {
                assert_eq!(p.route(pt.x, pt.y), i);
            }
        }
    }
}
