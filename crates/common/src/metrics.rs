//! Recall computation and timing helpers used by tests and the harness.

use geom::Point;
use std::time::Instant;

/// Recall of an approximate result set against the ground truth: the fraction
/// of true answers that were returned.
///
/// Matching is by point id, which is unique in all generated workloads.  An
/// empty ground truth yields recall 1.0 (there was nothing to miss), matching
/// the convention used in the paper's recall plots.
pub fn recall(result: &[Point], truth: &[Point]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<u64> = truth.iter().map(|p| p.id).collect();
    let hit = result.iter().filter(|p| truth_ids.contains(&p.id)).count();
    hit as f64 / truth.len() as f64
}

/// Fraction of returned points that are *not* in the ground truth
/// (false-positive rate of the result set).  The paper's window algorithm
/// guarantees this is zero for RSMI because results are filtered against the
/// query window.
pub fn false_positive_rate(result: &[Point], truth: &[Point]) -> f64 {
    if result.is_empty() {
        return 0.0;
    }
    let truth_ids: std::collections::HashSet<u64> = truth.iter().map(|p| p.id).collect();
    let fp = result.iter().filter(|p| !truth_ids.contains(&p.id)).count();
    fp as f64 / result.len() as f64
}

/// kNN recall as defined in §6.2.4: the number of true kNN points returned
/// divided by `k` (identical to precision when exactly `k` points are
/// returned).  Because distance ties can be broken differently by different
/// indices, a returned point also counts as correct when its distance to the
/// query does not exceed the true k-th distance (plus a small tolerance).
pub fn knn_recall(result: &[Point], truth: &[Point], q: &Point, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<u64> = truth.iter().map(|p| p.id).collect();
    let kth = truth.last().map_or(f64::INFINITY, |p| p.dist(q)) + 1e-12;
    let hit = result
        .iter()
        .filter(|p| truth_ids.contains(&p.id) || p.dist(q) <= kth)
        .count()
        .min(k);
    hit as f64 / k.min(truth.len().max(1)) as f64
}

/// Times a closure and returns `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Mean of a slice (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: u64) -> Point {
        Point::with_id(id as f64 / 10.0, id as f64 / 10.0, id)
    }

    #[test]
    fn recall_counts_matching_ids() {
        let truth = vec![p(1), p(2), p(3), p(4)];
        let result = vec![p(1), p(3)];
        assert!((recall(&result, &truth) - 0.5).abs() < 1e-12);
        assert_eq!(recall(&[], &truth), 0.0);
        assert_eq!(recall(&result, &[]), 1.0);
        assert_eq!(recall(&truth, &truth), 1.0);
    }

    #[test]
    fn false_positive_rate_counts_extras() {
        let truth = vec![p(1), p(2)];
        let result = vec![p(1), p(2), p(9)];
        assert!((false_positive_rate(&result, &truth) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(false_positive_rate(&[], &truth), 0.0);
    }

    #[test]
    fn knn_recall_accepts_equidistant_substitutes() {
        let q = Point::new(0.0, 0.0);
        // Truth: ids 1 and 2 at distances 0.1 and 0.2.
        let truth = vec![Point::with_id(0.1, 0.0, 1), Point::with_id(0.2, 0.0, 2)];
        // Result returns id 3, which is exactly as far as the true 2nd NN.
        let result = vec![Point::with_id(0.1, 0.0, 1), Point::with_id(0.0, 0.2, 3)];
        assert_eq!(knn_recall(&result, &truth, &q, 2), 1.0);
        // Missing answers reduce the recall.
        let partial = vec![Point::with_id(0.1, 0.0, 1)];
        assert_eq!(knn_recall(&partial, &truth, &q, 2), 0.5);
    }

    #[test]
    fn knn_recall_handles_degenerate_inputs() {
        let q = Point::new(0.0, 0.0);
        assert_eq!(knn_recall(&[], &[], &q, 0), 1.0);
        assert_eq!(knn_recall(&[], &[p(1)], &q, 5), 0.0);
    }

    #[test]
    fn timed_returns_value_and_positive_duration() {
        let (v, secs) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
