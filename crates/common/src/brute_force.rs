//! Brute-force reference implementations of the three query types.
//!
//! These are the ground truth against which recall (window and kNN queries of
//! the learned indices) is measured, and the oracle used by correctness tests
//! of every index.

use geom::{Point, Rect};

/// Returns the indexed point with exactly the query coordinates, if any.
pub fn point_query(points: &[Point], q: &Point) -> Option<Point> {
    points.iter().copied().find(|p| p.same_location(q))
}

/// Returns all points inside the window (boundaries inclusive).
pub fn window_query(points: &[Point], window: &Rect) -> Vec<Point> {
    points
        .iter()
        .copied()
        .filter(|p| window.contains(p))
        .collect()
}

/// Returns the `k` nearest neighbours of `q`, closest first.
///
/// Ties are broken by point id so that the result is deterministic and
/// comparable across indices.
pub fn knn_query(points: &[Point], q: &Point, k: usize) -> Vec<Point> {
    let mut v: Vec<Point> = points.to_vec();
    v.sort_by(|a, b| {
        a.dist_sq(q)
            .partial_cmp(&b.dist_sq(q))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    v.truncate(k);
    v
}

/// The distance of the `k`-th nearest neighbour (used to validate approximate
/// kNN answers independently of tie-breaking).
pub fn kth_distance(points: &[Point], q: &Point, k: usize) -> f64 {
    let nn = knn_query(points, q, k);
    nn.last().map_or(f64::INFINITY, |p| p.dist(q))
}

/// Returns all points within Euclidean distance `radius` of `center`
/// (boundary inclusive), in input order — the distance-range oracle.
/// Non-finite or negative radii yield no results, matching
/// [`SpatialIndex::range_query_visit`](crate::SpatialIndex::range_query_visit).
pub fn range_query(points: &[Point], center: &Point, radius: f64) -> Vec<Point> {
    if !radius.is_finite() || radius < 0.0 {
        return Vec::new();
    }
    let r_sq = radius * radius;
    points
        .iter()
        .copied()
        .filter(|p| p.dist_sq(center) <= r_sq)
        .collect()
}

/// Returns every cross pair `(p ∈ left, q ∈ right)` with `dist(p, q) ≤
/// radius`, in nested input order — the distance-join oracle.  Each stored
/// copy on either side contributes its own pairs.
pub fn distance_join(left: &[Point], right: &[Point], radius: f64) -> Vec<(Point, Point)> {
    if !radius.is_finite() || radius < 0.0 {
        return Vec::new();
    }
    let r_sq = radius * radius;
    let mut out = Vec::new();
    for p in left {
        for q in right {
            if p.dist_sq(q) <= r_sq {
                out.push((*p, *q));
            }
        }
    }
    out
}

/// A [`SpatialIndex`](crate::SpatialIndex) that answers every query by
/// scanning a plain `Vec<Point>` — the reference semantics every real index
/// is tested against, packaged as an index so oracles, doc examples, and
/// serving-layer tests can use it wherever a `SpatialIndex` is expected.
///
/// Updates follow exact `Vec` semantics: `insert` appends, `delete` removes
/// *all* copies matching the argument's location and id, and `point_query`
/// returns the first match in `Vec` order.  Every query charges one block
/// scan over the whole vector to the caller's context.
#[derive(Debug, Clone, Default)]
pub struct ScanIndex(Vec<Point>);

impl ScanIndex {
    /// Creates a scan index over the given points (kept in the given order).
    pub fn new(points: Vec<Point>) -> Self {
        Self(points)
    }

    /// The indexed points, in `Vec` order.
    pub fn points(&self) -> &[Point] {
        &self.0
    }
}

impl crate::SpatialIndex for ScanIndex {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn point_query(&self, q: &Point, cx: &mut crate::QueryContext) -> Option<Point> {
        cx.count_block_scan(self.0.len());
        point_query(&self.0, q)
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut crate::QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        cx.count_block_scan(self.0.len());
        for p in self.0.iter().filter(|p| window.contains(p)) {
            visit(p);
        }
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut crate::QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        cx.count_block_scan(self.0.len());
        for p in knn_query(&self.0, q, k) {
            visit(&p);
        }
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut crate::QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        cx.count_block_scan(self.0.len());
        for p in range_query(&self.0, center, radius) {
            visit(&p);
        }
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        for p in &self.0 {
            visit(p);
        }
    }

    fn insert(&mut self, p: Point) {
        self.0.push(p);
    }

    fn delete(&mut self, p: &Point) -> bool {
        let before = self.0.len();
        self.0.retain(|x| !(x.same_location(p) && x.id == p.id));
        self.0.len() != before
    }

    fn size_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<Point>()
    }

    fn height(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Point> {
        vec![
            Point::with_id(0.1, 0.1, 1),
            Point::with_id(0.2, 0.2, 2),
            Point::with_id(0.8, 0.8, 3),
            Point::with_id(0.5, 0.5, 4),
            Point::with_id(0.55, 0.5, 5),
        ]
    }

    #[test]
    fn point_query_finds_exact_match_only() {
        let pts = sample();
        assert_eq!(point_query(&pts, &Point::new(0.5, 0.5)).unwrap().id, 4);
        assert!(point_query(&pts, &Point::new(0.5, 0.50001)).is_none());
    }

    #[test]
    fn window_query_respects_boundaries() {
        let pts = sample();
        let w = Rect::new(0.1, 0.1, 0.2, 0.2);
        let res = window_query(&pts, &w);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn knn_query_orders_by_distance() {
        let pts = sample();
        let res = knn_query(&pts, &Point::new(0.5, 0.5), 3);
        assert_eq!(res[0].id, 4);
        assert_eq!(res[1].id, 5);
        assert_eq!(res.len(), 3);
        // distances non-decreasing
        let q = Point::new(0.5, 0.5);
        assert!(res[0].dist(&q) <= res[1].dist(&q));
        assert!(res[1].dist(&q) <= res[2].dist(&q));
    }

    #[test]
    fn knn_with_k_larger_than_n_returns_all() {
        let pts = sample();
        assert_eq!(knn_query(&pts, &Point::new(0.0, 0.0), 100).len(), pts.len());
    }

    #[test]
    fn scan_index_follows_vec_semantics() {
        use crate::{QueryContext, SpatialIndex};
        let mut idx = ScanIndex::new(sample());
        let mut cx = QueryContext::new();
        // First match in Vec order, full-vector scan charged.
        assert_eq!(
            idx.point_query(&Point::new(0.5, 0.5), &mut cx).unwrap().id,
            4
        );
        assert_eq!(cx.take_stats().candidates_scanned, 5);
        // Insert appends; delete removes all matching copies.
        idx.insert(Point::with_id(0.5, 0.5, 9));
        assert_eq!(idx.len(), 6);
        assert!(idx.delete(&Point::with_id(0.5, 0.5, 4)));
        assert!(!idx.delete(&Point::with_id(0.5, 0.5, 4)));
        assert_eq!(
            idx.point_query(&Point::new(0.5, 0.5), &mut cx).unwrap().id,
            9
        );
        // Window and kNN agree with the free functions.
        let w = Rect::new(0.0, 0.0, 0.3, 0.3);
        assert_eq!(
            idx.window_query(&w, &mut cx),
            window_query(idx.points(), &w)
        );
        assert_eq!(
            idx.knn_query(&Point::new(0.5, 0.5), 3, &mut cx),
            knn_query(idx.points(), &Point::new(0.5, 0.5), 3)
        );
    }

    #[test]
    fn range_query_is_boundary_inclusive_and_rejects_bad_radii() {
        let pts = sample();
        let c = Point::new(0.5, 0.5);
        let got = range_query(&pts, &c, 0.1);
        assert_eq!(got.iter().map(|p| p.id).collect::<Vec<_>>(), vec![4, 5]);
        assert!(range_query(&pts, &c, -0.1).is_empty());
        assert!(range_query(&pts, &c, f64::NAN).is_empty());
        assert_eq!(range_query(&pts, &c, 2.0).len(), pts.len());
        // Boundary inclusive, with exactly representable distances: 0.25 is
        // a power-of-two fraction, so dist == radius holds bit-for-bit.
        let boundary = vec![Point::with_id(0.25, 0.5, 1), Point::with_id(1.0, 0.5, 2)];
        let got = range_query(&boundary, &c, 0.25);
        assert_eq!(got.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn distance_join_pairs_every_copy() {
        let left = vec![Point::with_id(0.1, 0.1, 1), Point::with_id(0.1, 0.1, 1)];
        let right = vec![Point::with_id(0.1, 0.12, 7), Point::with_id(0.9, 0.9, 8)];
        let pairs = distance_join(&left, &right, 0.05);
        // Both identical left copies pair with the near right point.
        assert_eq!(pairs.len(), 2);
        for (p, q) in &pairs {
            assert_eq!((p.id, q.id), (1, 7));
        }
        assert!(distance_join(&left, &right, f64::INFINITY).is_empty());
    }

    #[test]
    fn scan_index_range_and_join_match_the_free_functions() {
        use crate::{QueryContext, SpatialIndex};
        let idx = ScanIndex::new(sample());
        let other = ScanIndex::new(vec![
            Point::with_id(0.5, 0.52, 100),
            Point::with_id(0.05, 0.05, 101),
        ]);
        let mut cx = QueryContext::new();
        let c = Point::new(0.5, 0.5);
        assert_eq!(
            idx.range_query(&c, 0.1, &mut cx),
            range_query(idx.points(), &c, 0.1)
        );
        let mut got: Vec<(u64, u64)> = idx
            .distance_join(&other, 0.1, &mut cx)
            .iter()
            .map(|(p, q)| (p.id, q.id))
            .collect();
        let mut truth: Vec<(u64, u64)> = distance_join(idx.points(), other.points(), 0.1)
            .iter()
            .map(|(p, q)| (p.id, q.id))
            .collect();
        got.sort_unstable();
        truth.sort_unstable();
        assert_eq!(got, truth);
        // Enumeration is exact.
        let mut n = 0;
        idx.for_each_point(&mut |_| n += 1);
        assert_eq!(n, idx.points().len());
    }

    #[test]
    fn kth_distance_is_infinite_for_empty_sets() {
        assert_eq!(kth_distance(&[], &Point::new(0.5, 0.5), 3), f64::INFINITY);
        let pts = sample();
        let d = kth_distance(&pts, &Point::new(0.5, 0.5), 1);
        assert_eq!(d, 0.0);
    }
}
