//! Brute-force reference implementations of the three query types.
//!
//! These are the ground truth against which recall (window and kNN queries of
//! the learned indices) is measured, and the oracle used by correctness tests
//! of every index.

use geom::{Point, Rect};

/// Returns the indexed point with exactly the query coordinates, if any.
pub fn point_query(points: &[Point], q: &Point) -> Option<Point> {
    points.iter().copied().find(|p| p.same_location(q))
}

/// Returns all points inside the window (boundaries inclusive).
pub fn window_query(points: &[Point], window: &Rect) -> Vec<Point> {
    points
        .iter()
        .copied()
        .filter(|p| window.contains(p))
        .collect()
}

/// Returns the `k` nearest neighbours of `q`, closest first.
///
/// Ties are broken by point id so that the result is deterministic and
/// comparable across indices.
pub fn knn_query(points: &[Point], q: &Point, k: usize) -> Vec<Point> {
    let mut v: Vec<Point> = points.to_vec();
    v.sort_by(|a, b| {
        a.dist_sq(q)
            .partial_cmp(&b.dist_sq(q))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    v.truncate(k);
    v
}

/// The distance of the `k`-th nearest neighbour (used to validate approximate
/// kNN answers independently of tie-breaking).
pub fn kth_distance(points: &[Point], q: &Point, k: usize) -> f64 {
    let nn = knn_query(points, q, k);
    nn.last().map_or(f64::INFINITY, |p| p.dist(q))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Point> {
        vec![
            Point::with_id(0.1, 0.1, 1),
            Point::with_id(0.2, 0.2, 2),
            Point::with_id(0.8, 0.8, 3),
            Point::with_id(0.5, 0.5, 4),
            Point::with_id(0.55, 0.5, 5),
        ]
    }

    #[test]
    fn point_query_finds_exact_match_only() {
        let pts = sample();
        assert_eq!(point_query(&pts, &Point::new(0.5, 0.5)).unwrap().id, 4);
        assert!(point_query(&pts, &Point::new(0.5, 0.50001)).is_none());
    }

    #[test]
    fn window_query_respects_boundaries() {
        let pts = sample();
        let w = Rect::new(0.1, 0.1, 0.2, 0.2);
        let res = window_query(&pts, &w);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn knn_query_orders_by_distance() {
        let pts = sample();
        let res = knn_query(&pts, &Point::new(0.5, 0.5), 3);
        assert_eq!(res[0].id, 4);
        assert_eq!(res[1].id, 5);
        assert_eq!(res.len(), 3);
        // distances non-decreasing
        let q = Point::new(0.5, 0.5);
        assert!(res[0].dist(&q) <= res[1].dist(&q));
        assert!(res[1].dist(&q) <= res[2].dist(&q));
    }

    #[test]
    fn knn_with_k_larger_than_n_returns_all() {
        let pts = sample();
        assert_eq!(knn_query(&pts, &Point::new(0.0, 0.0), 100).len(), pts.len());
    }

    #[test]
    fn kth_distance_is_infinite_for_empty_sets() {
        assert_eq!(kth_distance(&[], &Point::new(0.5, 0.5), 3), f64::INFINITY);
        let pts = sample();
        let d = kth_distance(&pts, &Point::new(0.5, 0.5), 1);
        assert_eq!(d, 0.0);
    }
}
