//! Shared abstractions used by every index in the reproduction.
//!
//! * [`SpatialIndex`] — the trait all indices (RSMI and the five baselines)
//!   implement so that the experiment harness, examples, and integration
//!   tests can treat them uniformly.  Five query classes (point, window,
//!   kNN, distance-range, distance-join) come in three forms: zero-copy
//!   visitor methods (the required core), `Vec`-returning adapters, and
//!   batch entry points that amortise per-call overhead.
//! * [`QueryContext`] / [`QueryStats`] — explicit per-query cost accounting
//!   (blocks touched, nodes visited, candidates scanned).  Indices never
//!   count accesses through interior mutability, so every index is
//!   `Send + Sync` and a single index can serve many threads, each with its
//!   own context.
//! * [`brute_force`] — reference implementations of every query type,
//!   used as ground truth for recall measurements and correctness tests.
//! * [`metrics`] — recall computation and small measurement helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute_force;
pub mod metrics;

use geom::{Point, Rect};

/// Per-query cost counters, the paper's "# block accesses" axis split into
/// its components so that learned and traditional indices stay comparable.
///
/// All counters accumulate: running several queries through the same
/// [`QueryContext`] sums their costs, which is what the batch entry points
/// and the experiment harness rely on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Data blocks read.  For an external-memory deployment this is the I/O
    /// cost of the query.
    pub blocks_touched: u64,
    /// Directory / model nodes visited.  Tree baselines charge one unit per
    /// node so the totals remain comparable with the paper's accounting.
    pub nodes_visited: u64,
    /// Points examined (inside blocks) before filtering, a proxy for the CPU
    /// cost of a query.
    pub candidates_scanned: u64,
    /// Shards whose inner index was actually queried.  Zero for unsharded
    /// indices; a sharded serving layer charges one unit per shard it fans
    /// out to.
    pub shards_visited: u64,
    /// Shards skipped by the query planner (routing or MBR/mindist pruning)
    /// without touching their inner index.
    pub shards_pruned: u64,
}

impl QueryStats {
    /// The combined block + node access count — the quantity the paper
    /// reports as "# block accesses" (node accesses of the tree baselines
    /// are charged to the same axis, §6.1).
    #[inline]
    pub fn total_accesses(&self) -> u64 {
        self.blocks_touched + self.nodes_visited
    }

    /// Adds another stats record into this one.
    #[inline]
    pub fn merge(&mut self, other: &QueryStats) {
        self.blocks_touched += other.blocks_touched;
        self.nodes_visited += other.nodes_visited;
        self.candidates_scanned += other.candidates_scanned;
        self.shards_visited += other.shards_visited;
        self.shards_pruned += other.shards_pruned;
    }
}

impl std::ops::AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: Self) {
        self.merge(&rhs);
    }
}

/// Mutable state threaded through every query.
///
/// A context is cheap to create; callers typically make one per query (to
/// get per-query stats) or one per batch (to get aggregate stats).  Because
/// the context — not the index — carries the counters, indices stay free of
/// interior mutability and can be shared across threads.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    /// Cost counters accumulated by the queries run with this context.
    pub stats: QueryStats,
}

impl QueryContext {
    /// Creates a fresh context with zeroed counters.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one data-block read.
    #[inline]
    pub fn count_block(&mut self) {
        self.stats.blocks_touched += 1;
    }

    /// Charges one directory/model-node visit.
    #[inline]
    pub fn count_node(&mut self) {
        self.stats.nodes_visited += 1;
    }

    /// Charges `n` candidate points examined.
    #[inline]
    pub fn count_candidates(&mut self, n: usize) {
        self.stats.candidates_scanned += n as u64;
    }

    /// Charges one shard fan-out: the planner decided to query this shard's
    /// inner index.
    #[inline]
    pub fn count_shard_visit(&mut self) {
        self.stats.shards_visited += 1;
    }

    /// Charges `n` shards skipped by the planner without touching their
    /// inner index.
    #[inline]
    pub fn count_shards_pruned(&mut self, n: usize) {
        self.stats.shards_pruned += n as u64;
    }

    /// Charges one data-block read whose `candidates` points will all be
    /// examined — the single place that defines the charging policy of a
    /// block scan, shared by every index implementation.
    #[inline]
    pub fn count_block_scan(&mut self, candidates: usize) {
        self.stats.blocks_touched += 1;
        self.stats.candidates_scanned += candidates as u64;
    }

    /// Returns the accumulated stats and resets the counters, so one context
    /// can be reused across queries while still reading per-query costs.
    #[inline]
    pub fn take_stats(&mut self) -> QueryStats {
        std::mem::take(&mut self.stats)
    }
}

/// Budget handed to [`SpatialIndex::rebuild_partial`]: how much retraining
/// work one maintenance pass may do, and how stale a subtree must be before
/// it qualifies.
///
/// The drift of a subtree is measured as the sum of error-bound widening
/// (in native position units) plus mutations since its model was last
/// trained, normalised by the subtree's capacity — see the maintenance
/// section of `ARCHITECTURE.md` for the exact formula each family uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceBudget {
    /// Maximum number of subtrees (leaf models for RSMI) to retrain in this
    /// pass.  `usize::MAX` means "all stale subtrees".
    pub max_subtrees: usize,
    /// Minimum drift score a subtree must reach to be retrained.  Subtrees
    /// below the threshold are left untouched even if the pass has budget
    /// remaining.
    pub drift_threshold: f64,
}

impl Default for MaintenanceBudget {
    fn default() -> Self {
        Self {
            max_subtrees: usize::MAX,
            drift_threshold: 0.0,
        }
    }
}

/// Aggregate maintenance state of an index, reported by
/// [`SpatialIndex::maintenance_stats`].  The serving layer's compaction
/// policy consumes these to decide between partial and full rebuilds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Mutations (inserts + deletes) applied since the last (partial or
    /// full) rebuild touched the affected subtree.
    pub ops_since_train: u64,
    /// Total error-bound widening below predictions accumulated by in-place
    /// inserts since training (native position units).
    pub widened_below: u64,
    /// Total error-bound widening above predictions (native position units).
    pub widened_above: u64,
    /// Subtrees whose drift currently exceeds the index's own staleness
    /// heuristic (used for gauges; the policy applies its own threshold).
    pub stale_subtrees: usize,
    /// Total retrainable subtrees (leaf models for RSMI).
    pub subtrees: usize,
}

/// What a [`SpatialIndex::rebuild_partial`] call actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceOutcome {
    /// The index fell back to a full [`SpatialIndex::rebuild`] (either
    /// because it does not support partial maintenance or because it decided
    /// drift was structural).
    pub full_rebuild: bool,
    /// Subtrees retrained in place by this pass.
    pub subtrees_rebuilt: usize,
    /// Stale subtrees left for a later pass because the budget ran out.
    pub subtrees_deferred: usize,
}

/// The interface shared by every spatial index in this repository.
///
/// The first three query types are the paper's: point queries (§4.1), window
/// queries (§4.2) and k-nearest-neighbour queries (§4.3).  Indices that only
/// produce approximate window/kNN answers (RSMI, ZM) document this on their
/// concrete types; the trait itself does not promise exactness.
///
/// Two further query classes extend the paper's workloads to the
/// distance-predicate shapes of the follow-up literature ("The Case for
/// Learned Spatial Indexes", Pandey et al.):
///
/// * **Distance-range queries** ([`range_query_visit`](Self::range_query_visit)):
///   all points within Euclidean distance `r` of a centre.  Unlike
///   window/kNN, range answers are **exact for every registered family** —
///   the approximate families override the default with an MBR-guided (RSMI)
///   or bounded-sweep (ZM) traversal instead of the learned scan-range
///   prediction, and a test-enforced oracle holds all of them to the
///   brute-force answer.
/// * **Index-nested distance joins** ([`distance_join_visit`](Self::distance_join_visit)):
///   all cross-index pairs `(p ∈ self, q ∈ other)` with `dist(p, q) ≤ r`.
///   The other index is enumerated exactly once through
///   [`for_each_point`](Self::for_each_point) and joined against this
///   index's structure; families with a directory override
///   [`distance_join_probes`](Self::distance_join_probes) to prune whole
///   subtrees/blocks/shards against the probe set instead of probing point
///   by point.
///
/// # Query forms
///
/// * **Visitor methods** ([`window_query_visit`](Self::window_query_visit),
///   [`knn_query_visit`](Self::knn_query_visit),
///   [`range_query_visit`](Self::range_query_visit)) are the required core:
///   they hand each result to a callback by reference and never allocate on
///   behalf of the caller.
/// * **`Vec` adapters** ([`window_query`](Self::window_query),
///   [`knn_query`](Self::knn_query), [`range_query`](Self::range_query),
///   [`distance_join`](Self::distance_join)) are provided for ergonomics and
///   copy results into a fresh vector.
/// * **Batch entry points** ([`point_queries`](Self::point_queries),
///   [`window_queries`](Self::window_queries),
///   [`knn_queries`](Self::knn_queries),
///   [`range_queries`](Self::range_queries)) run a whole workload through
///   one context.  They are the unit sharding/parallel execution applies
///   to; implementations may override them with cache-friendlier schedules.
///
/// # Statistics
///
/// Every query charges its cost to the [`QueryContext`] passed in.  Indices
/// must not keep internal access counters: the `Send + Sync` supertrait
/// bound (and a compile-time conformance test) enforce that an index can be
/// shared across threads, each thread carrying its own context.
pub trait SpatialIndex: Send + Sync {
    /// A short human-readable name used in experiment output ("RSMI", "ZM",
    /// "Grid", "KDB", "HRR", "RR*").
    fn name(&self) -> &'static str;

    /// Number of points currently indexed.
    fn len(&self) -> usize;

    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a point with exactly the query's coordinates and returns it
    /// (with its stored identifier), or `None` if it is not indexed.
    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point>;

    /// Calls `visit` for every result of the window query.  Visit order is
    /// unspecified; results never lie outside the window.
    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    );

    /// Calls `visit` for (up to) the `k` nearest neighbours of `q`, closest
    /// first.
    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    );

    /// Visits every indexed point **exactly** (each stored copy once), in an
    /// unspecified order.
    ///
    /// This is the exact enumeration primitive the distance-join machinery
    /// builds on: the probe side of [`distance_join_visit`](Self::distance_join_visit)
    /// is materialised through it, so it must be exact even for families
    /// whose window/kNN answers are approximate (every family stores its
    /// points in blocks/leaves it can stream).  Enumeration is a
    /// maintenance-style streaming read, like rebuilds: it charges nothing
    /// to any [`QueryContext`].
    fn for_each_point(&self, visit: &mut dyn FnMut(&Point));

    /// Inserts a point.
    fn insert(&mut self, p: Point);

    /// Deletes the point with the given coordinates and id; returns whether
    /// a point was removed.
    fn delete(&mut self, p: &Point) -> bool;

    /// Rebuilds the structure from its current contents, restoring optimal
    /// layout after many updates (the paper's RSMIr maintenance policy).
    /// Indices whose layout does not degrade may leave this a no-op.
    fn rebuild(&mut self) {}

    /// Approximate total size of the structure in bytes (data blocks plus
    /// directory / models), for the paper's index-size comparisons.
    fn size_bytes(&self) -> usize;

    /// Height of the structure: number of levels above the data blocks
    /// (model levels for the learned indices, node levels for trees).
    fn height(&self) -> usize;

    /// Number of learned sub-models (zero for traditional indices).
    fn model_count(&self) -> usize {
        0
    }

    /// Worst-case prediction error of the learned models as
    /// `(max_below, max_above)` in the structure's native position unit
    /// (blocks for block-directory models, positions for leaf models).
    /// `None` for structures with no learned component — the telemetry
    /// layer reports the bounds as live gauges so model drift under
    /// updates is observable without an offline bench run.
    fn model_error_bounds(&self) -> Option<(u64, u64)> {
        None
    }

    /// Reports the index's accumulated maintenance state (ops since train,
    /// error-bound widening, stale-subtree counts).  `None` for structures
    /// with no incremental-maintenance support; the serving layer treats
    /// those as always requiring a full rebuild.
    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        None
    }

    /// Retrains only the subtrees whose drift exceeds
    /// `budget.drift_threshold`, at most `budget.max_subtrees` of them —
    /// the incremental realisation of the paper's RSMIr maintenance hook.
    /// Answers after a partial rebuild must be identical to answers after a
    /// full [`rebuild`](Self::rebuild) on the same live set (test-enforced
    /// for every family that overrides this).
    ///
    /// The default falls back to a full rebuild and reports it as such, so
    /// callers can always invoke this method and observe what happened.
    fn rebuild_partial(&mut self, budget: &MaintenanceBudget) -> MaintenanceOutcome {
        let _ = budget;
        self.rebuild();
        MaintenanceOutcome {
            full_rebuild: true,
            subtrees_rebuilt: 0,
            subtrees_deferred: 0,
        }
    }

    /// Clones the index behind the trait object, if the concrete type
    /// supports it.  The serving layer uses this to run partial compactions
    /// on a copy while readers keep the current epoch; `None` forces the
    /// fold-and-rebuild path.
    fn clone_index(&self) -> Option<Box<dyn SpatialIndex>> {
        None
    }

    /// Per-shard live point counts for sharded structures (`None` for
    /// unsharded ones).  The compaction policy uses the skew between shards
    /// as a full-rebuild trigger: partial maintenance cannot move points
    /// between shards.
    fn shard_point_counts(&self) -> Option<Vec<usize>> {
        None
    }

    /// Serialises the index's complete state into a snapshot, so that a
    /// build can be persisted and served again after a restart without
    /// reconstruction (blocks, chain links, model weights, directory — the
    /// loaded index answers every query with byte-identical results and
    /// [`QueryStats`]).
    ///
    /// Implementations append checksummed sections to the writer; the file
    /// header (magic, version, kind tag) and the load-time dispatch by kind
    /// live in the `registry` crate.  The default returns
    /// [`persist::PersistError::Unsupported`] so third-party index types
    /// opt in explicitly.
    fn write_snapshot(
        &self,
        writer: &mut persist::SnapshotWriter,
    ) -> Result<(), persist::PersistError> {
        let _ = writer;
        Err(persist::PersistError::Unsupported(self.name()))
    }

    // ------------------------------------------------------------------
    // Provided: distance-range queries
    // ------------------------------------------------------------------

    /// Calls `visit` for every point within Euclidean distance `radius` of
    /// `center` (boundary inclusive: `dist == radius` is a result).  Visit
    /// order is unspecified.  Non-finite or negative radii yield no results.
    ///
    /// The default derives the answer from the window machinery: a window
    /// query over the circle's circumscribing box, filtered by true
    /// distance.  That is exact wherever window queries are exact; the
    /// approximate families (RSMI, ZM) override this with an exact traversal
    /// of their own structure, so distance-range answers match the
    /// brute-force oracle for **every** registered family (test-enforced).
    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        let bbox = Rect::centered(center.x, center.y, 2.0 * radius, 2.0 * radius);
        let r_sq = radius * radius;
        self.window_query_visit(&bbox, cx, &mut |p| {
            if p.dist_sq(center) <= r_sq {
                visit(p);
            }
        });
    }

    /// Returns the points within `radius` of `center` as a fresh vector.
    fn range_query(&self, center: &Point, radius: f64, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::new();
        self.range_query_visit(center, radius, cx, &mut |p| out.push(*p));
        out
    }

    /// Runs a batch of distance-range queries (same radius) through one
    /// context, returning one result set per centre.
    fn range_queries(
        &self,
        centers: &[Point],
        radius: f64,
        cx: &mut QueryContext,
    ) -> Vec<Vec<Point>> {
        centers
            .iter()
            .map(|c| self.range_query(c, radius, cx))
            .collect()
    }

    // ------------------------------------------------------------------
    // Provided: index-nested distance joins
    // ------------------------------------------------------------------

    /// Calls `visit` for every pair `(p, q)` with `p` indexed here, `q`
    /// indexed in `other`, and `dist(p, q) ≤ radius`.  Pair order is
    /// unspecified; each qualifying pair is visited exactly once (per stored
    /// copy on either side).
    ///
    /// This is an **index-nested** join: `other` is enumerated exactly once
    /// through [`for_each_point`](Self::for_each_point) (uncharged, like any
    /// streaming read) and the resulting probe set is joined against this
    /// index's structure by [`distance_join_probes`](Self::distance_join_probes),
    /// which is where all pruning and cost accounting happen.
    fn distance_join_visit(
        &self,
        other: &dyn SpatialIndex,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        let mut probes = Vec::with_capacity(other.len());
        other.for_each_point(&mut |q| probes.push(*q));
        self.distance_join_probes(&probes, radius, cx, visit);
    }

    /// The join worker: calls `visit(p, q)` for every indexed point `p` and
    /// probe `q ∈ probes` with `dist(p, q) ≤ radius`.
    ///
    /// The default probes point by point (one
    /// [`range_query_visit`](Self::range_query_visit) per probe — a plain
    /// index-nested-loop join).  Families with a directory override this to
    /// prune at the block/MBR level instead: one traversal of the structure
    /// carries the whole probe set, discarding every probe farther than
    /// `radius` from a node's MBR before descending, so each data block is
    /// read **once** regardless of how many probes survive to it.
    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        for q in probes {
            self.range_query_visit(q, radius, cx, &mut |p| visit(p, q));
        }
    }

    /// Returns every qualifying `(self_point, other_point)` pair as a fresh
    /// vector (see [`distance_join_visit`](Self::distance_join_visit)).
    fn distance_join(
        &self,
        other: &dyn SpatialIndex,
        radius: f64,
        cx: &mut QueryContext,
    ) -> Vec<(Point, Point)> {
        let mut out = Vec::new();
        self.distance_join_visit(other, radius, cx, &mut |p, q| out.push((*p, *q)));
        out
    }

    // ------------------------------------------------------------------
    // Provided: Vec adapters over the visitor core
    // ------------------------------------------------------------------

    /// Returns the points inside the query window as a fresh vector.
    fn window_query(&self, window: &Rect, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::new();
        self.window_query_visit(window, cx, &mut |p| out.push(*p));
        out
    }

    /// Returns (up to) the `k` nearest neighbours of `q`, closest first, as
    /// a fresh vector.
    fn knn_query(&self, q: &Point, k: usize, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::with_capacity(k);
        self.knn_query_visit(q, k, cx, &mut |p| out.push(*p));
        out
    }

    // ------------------------------------------------------------------
    // Provided: batch entry points
    // ------------------------------------------------------------------

    /// Runs a batch of point queries through one context, returning one
    /// answer per query.  Costs accumulate in `cx`.
    fn point_queries(&self, qs: &[Point], cx: &mut QueryContext) -> Vec<Option<Point>> {
        qs.iter().map(|q| self.point_query(q, cx)).collect()
    }

    /// Runs a batch of window queries through one context, returning one
    /// result set per window.
    fn window_queries(&self, windows: &[Rect], cx: &mut QueryContext) -> Vec<Vec<Point>> {
        windows.iter().map(|w| self.window_query(w, cx)).collect()
    }

    /// Runs a batch of kNN queries (same `k`) through one context.
    fn knn_queries(&self, qs: &[Point], k: usize, cx: &mut QueryContext) -> Vec<Vec<Point>> {
        qs.iter().map(|q| self.knn_query(q, k, cx)).collect()
    }
}

/// Statistics recorded while bulk-loading an index, reported in the paper's
/// construction-time and index-size figures (Figs. 7 and 9, Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Wall-clock construction time in seconds.
    pub build_seconds: f64,
    /// Total index size in bytes.
    pub size_bytes: usize,
    /// Structure height (levels above the data blocks).
    pub height: usize,
    /// Number of learned sub-models (zero for traditional indices).
    pub model_count: usize,
}

/// Convenience: collects [`BuildStats`] for an already-built index.
pub fn build_stats_of<I: SpatialIndex + ?Sized>(index: &I, build_seconds: f64) -> BuildStats {
    BuildStats {
        build_seconds,
        size_bytes: index.size_bytes(),
        height: index.height(),
        model_count: index.model_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(Vec<Point>);

    impl SpatialIndex for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
            cx.count_block();
            cx.count_candidates(self.0.len());
            self.0.iter().copied().find(|p| p.same_location(q))
        }
        fn window_query_visit(
            &self,
            window: &Rect,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            cx.count_block();
            for p in &self.0 {
                cx.count_candidates(1);
                if window.contains(p) {
                    visit(p);
                }
            }
        }
        fn knn_query_visit(
            &self,
            q: &Point,
            k: usize,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            cx.count_block();
            cx.count_candidates(self.0.len());
            let mut v = self.0.clone();
            v.sort_by(|a, b| a.dist_sq(q).partial_cmp(&b.dist_sq(q)).unwrap());
            for p in v.iter().take(k) {
                visit(p);
            }
        }
        fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
            for p in &self.0 {
                visit(p);
            }
        }
        fn insert(&mut self, p: Point) {
            self.0.push(p);
        }
        fn delete(&mut self, p: &Point) -> bool {
            let before = self.0.len();
            self.0.retain(|x| !(x.same_location(p) && x.id == p.id));
            self.0.len() != before
        }
        fn size_bytes(&self) -> usize {
            self.0.len() * std::mem::size_of::<Point>()
        }
        fn height(&self) -> usize {
            1
        }
        fn model_count(&self) -> usize {
            7
        }
    }

    #[test]
    fn default_is_empty_follows_len() {
        let mut d = Dummy(vec![]);
        assert!(d.is_empty());
        d.insert(Point::new(0.5, 0.5));
        assert!(!d.is_empty());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn build_stats_of_reads_size_height_and_model_count() {
        let d = Dummy(vec![Point::new(0.1, 0.1); 10]);
        let s = build_stats_of(&d, 1.5);
        assert_eq!(s.size_bytes, 10 * std::mem::size_of::<Point>());
        assert_eq!(s.height, 1);
        assert_eq!(s.model_count, 7);
        assert_eq!(s.build_seconds, 1.5);
    }

    #[test]
    fn vec_adapters_match_visitor_results() {
        let d = Dummy(vec![
            Point::with_id(0.1, 0.1, 1),
            Point::with_id(0.6, 0.6, 2),
            Point::with_id(0.7, 0.7, 3),
        ]);
        let w = Rect::new(0.5, 0.5, 1.0, 1.0);
        let mut cx = QueryContext::new();
        let via_vec = d.window_query(&w, &mut cx);
        let mut via_visit = Vec::new();
        d.window_query_visit(&w, &mut cx, &mut |p| via_visit.push(*p));
        assert_eq!(via_vec, via_visit);
        let nn = d.knn_query(&Point::new(0.0, 0.0), 2, &mut cx);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].id, 1);
    }

    #[test]
    fn context_accumulates_and_take_stats_resets() {
        let d = Dummy(vec![Point::with_id(0.2, 0.2, 1); 4]);
        let mut cx = QueryContext::new();
        let _ = d.point_query(&Point::new(0.2, 0.2), &mut cx);
        assert_eq!(cx.stats.blocks_touched, 1);
        assert_eq!(cx.stats.candidates_scanned, 4);
        let _ = d.point_query(&Point::new(0.9, 0.9), &mut cx);
        assert_eq!(cx.stats.blocks_touched, 2);
        let taken = cx.take_stats();
        assert_eq!(taken.blocks_touched, 2);
        assert_eq!(cx.stats, QueryStats::default());
        assert_eq!(taken.total_accesses(), 2);
    }

    #[test]
    fn batch_entry_points_answer_every_query() {
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::with_id(i as f64 / 10.0, i as f64 / 10.0, i))
            .collect();
        let d = Dummy(pts.clone());
        let mut cx = QueryContext::new();
        let answers = d.point_queries(&pts[..5], &mut cx);
        assert_eq!(answers.len(), 5);
        assert!(answers.iter().all(|a| a.is_some()));
        assert_eq!(cx.stats.blocks_touched, 5);

        let windows = [Rect::new(0.0, 0.0, 0.5, 0.5), Rect::unit()];
        let results = d.window_queries(&windows, &mut cx);
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].len(), 10);

        let knn = d.knn_queries(&pts[..3], 2, &mut cx);
        assert!(knn.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn default_range_query_filters_the_bbox_window() {
        let d = Dummy(vec![
            Point::with_id(0.5, 0.5, 1),
            Point::with_id(0.59, 0.5, 2),  // inside the circle
            Point::with_id(0.58, 0.58, 3), // inside the bbox, outside the circle
            Point::with_id(0.9, 0.9, 4),   // outside both
        ]);
        let mut cx = QueryContext::new();
        let c = Point::new(0.5, 0.5);
        let got = d.range_query(&c, 0.1, &mut cx);
        let mut ids: Vec<u64> = got.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        // Visitor and Vec forms agree; the boundary is inclusive.
        let mut visited = Vec::new();
        d.range_query_visit(&c, 0.09, &mut cx, &mut |p| visited.push(p.id));
        visited.sort_unstable();
        assert_eq!(visited, vec![1, 2], "dist == radius must be included");
        // Degenerate radii.
        assert_eq!(d.range_query(&c, 0.0, &mut cx).len(), 1);
        assert!(d.range_query(&c, -1.0, &mut cx).is_empty());
        assert!(d.range_query(&c, f64::NAN, &mut cx).is_empty());
        assert!(d.range_query(&c, f64::INFINITY, &mut cx).is_empty());
        // Batch form answers every centre.
        let batches = d.range_queries(&[c, Point::new(0.9, 0.9)], 0.05, &mut cx);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1);
        assert_eq!(batches[1].len(), 1);
    }

    #[test]
    fn default_distance_join_pairs_both_sides() {
        let left = Dummy(vec![
            Point::with_id(0.1, 0.1, 1),
            Point::with_id(0.9, 0.9, 2),
        ]);
        let right = Dummy(vec![
            Point::with_id(0.12, 0.1, 10),
            Point::with_id(0.5, 0.5, 11),
            Point::with_id(0.9, 0.88, 12),
        ]);
        let mut cx = QueryContext::new();
        let mut pairs: Vec<(u64, u64)> = left
            .distance_join(&right, 0.05, &mut cx)
            .iter()
            .map(|(p, q)| (p.id, q.id))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 12)]);
        // A join against an empty index yields no pairs.
        let empty = Dummy(vec![]);
        assert!(left.distance_join(&empty, 1.0, &mut cx).is_empty());
        assert!(empty.distance_join(&right, 1.0, &mut cx).is_empty());
    }

    #[test]
    fn for_each_point_enumerates_every_copy_uncharged() {
        let d = Dummy(vec![Point::with_id(0.5, 0.5, 1); 3]);
        let mut n = 0;
        d.for_each_point(&mut |p| {
            assert_eq!(p.id, 1);
            n += 1;
        });
        assert_eq!(n, 3, "every stored copy must be visited");
    }

    #[test]
    fn stats_merge_and_add_assign_sum_fields() {
        let mut a = QueryStats {
            blocks_touched: 1,
            nodes_visited: 2,
            candidates_scanned: 3,
            shards_visited: 4,
            shards_pruned: 5,
        };
        let b = QueryStats {
            blocks_touched: 10,
            nodes_visited: 20,
            candidates_scanned: 30,
            shards_visited: 40,
            shards_pruned: 50,
        };
        a += b;
        assert_eq!(a.blocks_touched, 11);
        assert_eq!(a.nodes_visited, 22);
        assert_eq!(a.candidates_scanned, 33);
        assert_eq!(a.shards_visited, 44);
        assert_eq!(a.shards_pruned, 55);
        // Shard counters are engine-level fan-out metrics, not accesses.
        assert_eq!(a.total_accesses(), 33);
    }

    #[test]
    fn shard_counters_accumulate_through_the_context() {
        let mut cx = QueryContext::new();
        cx.count_shard_visit();
        cx.count_shard_visit();
        cx.count_shards_pruned(3);
        assert_eq!(cx.stats.shards_visited, 2);
        assert_eq!(cx.stats.shards_pruned, 3);
        assert_eq!(cx.stats.total_accesses(), 0);
    }
}
