//! Shared abstractions used by every index in the reproduction.
//!
//! * [`SpatialIndex`] — the trait all indices (RSMI and the five baselines)
//!   implement so that the experiment harness, examples, and integration
//!   tests can treat them uniformly.
//! * [`brute_force`] — reference implementations of the three query types,
//!   used as ground truth for recall measurements and correctness tests.
//! * [`metrics`] — recall computation and small measurement helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute_force;
pub mod metrics;

use geom::{Point, Rect};

/// The interface shared by every spatial index in this repository.
///
/// The three query types are the paper's: point queries (§4.1), window
/// queries (§4.2) and k-nearest-neighbour queries (§4.3).  Indices that only
/// produce approximate window/kNN answers (RSMI, ZM) document this on their
/// concrete types; the trait itself does not promise exactness.
pub trait SpatialIndex {
    /// A short human-readable name used in experiment output ("RSMI", "ZM",
    /// "Grid", "KDB", "HRR", "RR*").
    fn name(&self) -> &'static str;

    /// Number of points currently indexed.
    fn len(&self) -> usize;

    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a point with exactly the query's coordinates and returns it
    /// (with its stored identifier), or `None` if it is not indexed.
    fn point_query(&self, q: &Point) -> Option<Point>;

    /// Returns the points inside the query window.
    fn window_query(&self, window: &Rect) -> Vec<Point>;

    /// Returns (up to) the `k` nearest neighbours of `q`, closest first.
    fn knn_query(&self, q: &Point, k: usize) -> Vec<Point>;

    /// Inserts a point.
    fn insert(&mut self, p: Point);

    /// Deletes the point with the given coordinates and id; returns whether
    /// a point was removed.
    fn delete(&mut self, p: &Point) -> bool;

    /// Block (and node) accesses accumulated since the last
    /// [`SpatialIndex::reset_stats`].
    fn block_accesses(&self) -> u64;

    /// Resets the access statistics.
    fn reset_stats(&self);

    /// Approximate total size of the structure in bytes (data blocks plus
    /// directory / models), for the paper's index-size comparisons.
    fn size_bytes(&self) -> usize;

    /// Height of the structure: number of levels above the data blocks
    /// (model levels for the learned indices, node levels for trees).
    fn height(&self) -> usize;
}

/// Statistics recorded while bulk-loading an index, reported in the paper's
/// construction-time and index-size figures (Figs. 7 and 9, Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Wall-clock construction time in seconds.
    pub build_seconds: f64,
    /// Total index size in bytes.
    pub size_bytes: usize,
    /// Structure height (levels above the data blocks).
    pub height: usize,
    /// Number of learned sub-models (zero for traditional indices).
    pub model_count: usize,
}

/// Convenience: collects [`BuildStats`] for an already-built index.
pub fn build_stats_of<I: SpatialIndex + ?Sized>(index: &I, build_seconds: f64) -> BuildStats {
    BuildStats {
        build_seconds,
        size_bytes: index.size_bytes(),
        height: index.height(),
        model_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(Vec<Point>);

    impl SpatialIndex for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn point_query(&self, q: &Point) -> Option<Point> {
            self.0.iter().copied().find(|p| p.same_location(q))
        }
        fn window_query(&self, window: &Rect) -> Vec<Point> {
            self.0.iter().copied().filter(|p| window.contains(p)).collect()
        }
        fn knn_query(&self, q: &Point, k: usize) -> Vec<Point> {
            let mut v = self.0.clone();
            v.sort_by(|a, b| a.dist_sq(q).partial_cmp(&b.dist_sq(q)).unwrap());
            v.truncate(k);
            v
        }
        fn insert(&mut self, p: Point) {
            self.0.push(p);
        }
        fn delete(&mut self, p: &Point) -> bool {
            let before = self.0.len();
            self.0.retain(|x| !(x.same_location(p) && x.id == p.id));
            self.0.len() != before
        }
        fn block_accesses(&self) -> u64 {
            0
        }
        fn reset_stats(&self) {}
        fn size_bytes(&self) -> usize {
            self.0.len() * std::mem::size_of::<Point>()
        }
        fn height(&self) -> usize {
            1
        }
    }

    #[test]
    fn default_is_empty_follows_len() {
        let mut d = Dummy(vec![]);
        assert!(d.is_empty());
        d.insert(Point::new(0.5, 0.5));
        assert!(!d.is_empty());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn build_stats_of_reads_size_and_height() {
        let d = Dummy(vec![Point::new(0.1, 0.1); 10]);
        let s = build_stats_of(&d, 1.5);
        assert_eq!(s.size_bytes, 10 * std::mem::size_of::<Point>());
        assert_eq!(s.height, 1);
        assert_eq!(s.build_seconds, 1.5);
    }
}
