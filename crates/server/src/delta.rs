//! The write-side **delta overlay**: sequenced inserts and deletes buffered
//! between compactions, merged into every read.
//!
//! The overlay stores two coupled representations of the same ops:
//!
//! * a **log** of [`SequencedOp`]s in application order — what compaction
//!   replays into the canonical point set, and what carries leftover ops
//!   into the next epoch, and
//! * a **net per-key state** ([`DeltaState::entries`]) — what queries merge
//!   with the base index: live inserted copies (unioned into results) and
//!   masked base keys (filtered out of base results).
//!
//! Keys identify a point exactly the way [`common::SpatialIndex::delete`]
//! matches one: by bit-exact location plus id.  The net state is kept in a
//! `BTreeMap` so iteration (window unions, kNN unions) is deterministic.

use geom::{Point, Rect};
use std::collections::BTreeMap;
use storage::kernels;

/// Exact identity of a point: canonical coordinate bit patterns plus id.
///
/// `-0.0` is folded onto `+0.0` so the key relation matches
/// [`geom::Point::same_location`] (float equality) exactly.
pub(crate) type Key = (u64, u64, u64);

#[inline]
fn coord_bits(v: f64) -> u64 {
    if v == 0.0 {
        0f64.to_bits()
    } else {
        v.to_bits()
    }
}

/// The delta key of a point.
#[inline]
pub(crate) fn key_of(p: &Point) -> Key {
    (coord_bits(p.x), coord_bits(p.y), p.id)
}

/// One write operation accepted by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteOp {
    /// Insert the point (appended after all existing points, `Vec` style).
    Insert(Point),
    /// Delete every live copy of the point, matched by exact location and
    /// id — the same relation [`common::SpatialIndex::delete`] uses.
    Delete(Point),
}

/// A write operation tagged with the global sequence number under which the
/// server applied it.  Sequence numbers are dense and start at 1; a query
/// that observed sequence `s` sees exactly the effects of ops `1..=s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequencedOp {
    /// The op's position in the server's total write order.
    pub seq: u64,
    /// The operation itself.
    pub op: WriteOp,
}

/// Net effect of the delta ops on one key.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// The point (identical for every copy of the key).
    point: Point,
    /// Live inserted copies of the key.
    copies: u32,
    /// Sequence number of the earliest still-live insert; orders duplicate
    /// location matches the way `Vec` append order would.
    first_seq: u64,
    /// The key's base copy has been deleted.  Only ever set for keys the
    /// epoch's base actually contains, so masked counts stay exact.
    base_masked: bool,
}

/// An immutable-once-shared snapshot of the buffered write ops of one epoch.
///
/// The server keeps the current `DeltaState` behind `RwLock<Arc<..>>`:
/// readers clone the `Arc` (so their view is frozen) and the single writer
/// mutates through [`std::sync::Arc::make_mut`], which copies only when a
/// reader still holds the previous state.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaState {
    /// Last applied sequence number (0 = none since the epoch's base).
    seq: u64,
    /// Raw ops in application order, for compaction replay and epoch
    /// hand-over.
    log: Vec<SequencedOp>,
    /// Net per-key state, deterministic iteration order.
    entries: BTreeMap<Key, Entry>,
    /// Sorted-lane mirror of `entries` for the vectorized scan kernels:
    /// `lane_keys` repeats the map's key order, and the coordinate, id and
    /// copy-count lanes are parallel to it.  The coordinate lanes hold the
    /// *raw* point values (keys fold `-0.0` onto `+0.0`; visited points must
    /// reproduce the inserted bits exactly).
    lane_keys: Vec<Key>,
    lane_xs: Vec<f64>,
    lane_ys: Vec<f64>,
    lane_ids: Vec<u64>,
    lane_copies: Vec<u32>,
    /// Number of keys with `base_masked` set (each masks exactly one base
    /// copy).
    masked_base: usize,
    /// Total live inserted copies across all keys.
    live_inserts: usize,
}

impl DeltaState {
    /// An empty overlay that continues the sequence after `seq` (used when a
    /// fresh epoch takes over mid-stream).
    pub(crate) fn resume_at(seq: u64) -> Self {
        Self {
            seq,
            ..Self::default()
        }
    }

    /// Last applied sequence number.
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of buffered ops (the compaction trigger measure).
    pub(crate) fn op_count(&self) -> usize {
        self.log.len()
    }

    /// Whether no ops are buffered.
    pub(crate) fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The buffered ops in application order.
    pub(crate) fn log(&self) -> &[SequencedOp] {
        &self.log
    }

    /// Total number of base copies masked by deletes (a key the base holds
    /// `c` times contributes `c` once deleted, so `len` and kNN over-fetch
    /// stay exact even for duplicate identical points).
    pub(crate) fn masked_base(&self) -> usize {
        self.masked_base
    }

    /// Number of live inserted copies.
    pub(crate) fn live_inserts(&self) -> usize {
        self.live_inserts
    }

    /// Approximate memory footprint of the overlay.
    pub(crate) fn size_bytes(&self) -> usize {
        self.log.len() * std::mem::size_of::<SequencedOp>()
            + self.entries.len()
                * (2 * std::mem::size_of::<Key>()
                    + std::mem::size_of::<Entry>()
                    + 2 * std::mem::size_of::<f64>()
                    + std::mem::size_of::<u64>()
                    + std::mem::size_of::<u32>())
    }

    /// Reconciles the lane mirror with `entries` for one key after `apply`
    /// mutated it (insert, copy-count change, or removal).
    fn sync_lanes(&mut self, key: Key) {
        let entry = self.entries.get(&key).copied();
        match (entry, self.lane_keys.binary_search(&key)) {
            (Some(e), Ok(pos)) => self.lane_copies[pos] = e.copies,
            (Some(e), Err(pos)) => {
                self.lane_keys.insert(pos, key);
                self.lane_xs.insert(pos, e.point.x);
                self.lane_ys.insert(pos, e.point.y);
                self.lane_ids.insert(pos, e.point.id);
                self.lane_copies.insert(pos, e.copies);
            }
            (None, Ok(pos)) => {
                self.lane_keys.remove(pos);
                self.lane_xs.remove(pos);
                self.lane_ys.remove(pos);
                self.lane_ids.remove(pos);
                self.lane_copies.remove(pos);
            }
            (None, Err(_)) => {}
        }
    }

    /// Applies one op under sequence number `op.seq`.  `base_copies_of`
    /// reports how many copies of a key the epoch's base index holds (>1
    /// only when identical points were inserted repeatedly and then folded
    /// by compaction).  Returns whether a delete removed anything (`true`
    /// for every insert).
    pub(crate) fn apply(&mut self, op: SequencedOp, base_copies_of: &dyn Fn(&Key) -> u32) -> bool {
        debug_assert!(op.seq > self.seq, "ops must arrive in sequence order");
        self.seq = op.seq;
        self.log.push(op);
        match op.op {
            WriteOp::Insert(p) => {
                let key = key_of(&p);
                let e = self.entries.entry(key).or_insert(Entry {
                    point: p,
                    copies: 0,
                    first_seq: op.seq,
                    base_masked: false,
                });
                if e.copies == 0 {
                    e.first_seq = op.seq;
                }
                e.copies += 1;
                self.live_inserts += 1;
                self.sync_lanes(key);
                true
            }
            WriteOp::Delete(p) => {
                let key = key_of(&p);
                let e = self.entries.entry(key).or_insert(Entry {
                    point: p,
                    copies: 0,
                    first_seq: 0,
                    base_masked: false,
                });
                let mut removed = e.copies > 0;
                self.live_inserts -= e.copies as usize;
                e.copies = 0;
                if !e.base_masked {
                    let in_base = base_copies_of(&key);
                    if in_base > 0 {
                        e.base_masked = true;
                        self.masked_base += in_base as usize;
                        removed = true;
                    }
                }
                if !e.base_masked {
                    // The delete neither masked a base copy nor killed a
                    // delta copy: drop the entry so queries don't scan a
                    // dead key until compaction (the log still records the
                    // op — sequence numbers stay dense and replays agree).
                    self.entries.remove(&key);
                }
                self.sync_lanes(key);
                removed
            }
        }
    }

    /// Whether the base copy of `p` has been deleted (base query results with
    /// this key must be filtered out).
    #[inline]
    pub(crate) fn masks(&self, p: &Point) -> bool {
        self.entries.get(&key_of(p)).is_some_and(|e| e.base_masked)
    }

    /// The earliest-inserted live copy at exactly the query's location, if
    /// any — the delta side of a point query.  Returns the number of delta
    /// entries examined so the caller can charge them as candidates.
    pub(crate) fn point_lookup(&self, q: &Point) -> (Option<Point>, usize) {
        let (xb, yb) = (coord_bits(q.x), coord_bits(q.y));
        let mut best: Option<(u64, Point)> = None;
        let mut examined = 0;
        for e in self
            .entries
            .range((xb, yb, u64::MIN)..=(xb, yb, u64::MAX))
            .map(|(_, e)| e)
        {
            examined += 1;
            if e.copies > 0 && best.is_none_or(|(fs, _)| e.first_seq < fs) {
                best = Some((e.first_seq, e.point));
            }
        }
        (best.map(|(_, p)| p), examined)
    }

    /// Visits every live inserted copy inside `window` (a key with `c`
    /// copies is visited `c` times), in key order, via the chunked rect
    /// kernel over the lane mirror.  Returns the number of entries examined
    /// (every entry: the kernel tests all lanes, exactly as the old per-entry
    /// scan did).
    pub(crate) fn visit_inserts_in(&self, window: &Rect, visit: &mut dyn FnMut(&Point)) -> usize {
        let n = self.lane_keys.len();
        let mut start = 0;
        while start < n {
            let end = (start + kernels::CHUNK).min(n);
            let mut mask =
                kernels::rect_mask(&self.lane_xs[start..end], &self.lane_ys[start..end], window);
            while mask != 0 {
                let i = start + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if self.lane_copies[i] > 0 {
                    let p = Point::with_id(self.lane_xs[i], self.lane_ys[i], self.lane_ids[i]);
                    for _ in 0..self.lane_copies[i] {
                        visit(&p);
                    }
                }
            }
            start = end;
        }
        n
    }

    /// Visits every live inserted copy (for kNN unions).  Returns the number
    /// of entries examined.
    pub(crate) fn visit_inserts(&self, visit: &mut dyn FnMut(&Point)) -> usize {
        let mut examined = 0;
        for e in self.entries.values() {
            examined += 1;
            for _ in 0..e.copies {
                visit(&e.point);
            }
        }
        examined
    }

    /// Visits every live inserted copy within the circle of squared radius
    /// `r_sq` around `center` (the distance-range union), in key order, via
    /// the chunked radius kernel over the lane mirror.  Returns the number
    /// of entries examined.
    pub(crate) fn visit_inserts_within(
        &self,
        center: &Point,
        r_sq: f64,
        visit: &mut dyn FnMut(&Point),
    ) -> usize {
        let n = self.lane_keys.len();
        let mut start = 0;
        while start < n {
            let end = (start + kernels::CHUNK).min(n);
            let mut mask = kernels::within_mask(
                &self.lane_xs[start..end],
                &self.lane_ys[start..end],
                center.x,
                center.y,
                r_sq,
            );
            while mask != 0 {
                let i = start + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if self.lane_copies[i] > 0 {
                    let p = Point::with_id(self.lane_xs[i], self.lane_ys[i], self.lane_ids[i]);
                    for _ in 0..self.lane_copies[i] {
                        visit(&p);
                    }
                }
            }
            start = end;
        }
        n
    }
}

/// Applies a log of ops to a canonical point vector with exact `Vec`
/// semantics: inserts append, deletes remove all copies matching location
/// and id — the reference the delta merge must agree with, used by
/// compaction to fold an epoch's delta into the next base.
pub(crate) fn apply_log_to_points(points: &mut Vec<Point>, log: &[SequencedOp], up_to_seq: u64) {
    for op in log.iter().take_while(|o| o.seq <= up_to_seq) {
        match op.op {
            WriteOp::Insert(p) => points.push(p),
            WriteOp::Delete(p) => {
                points.retain(|x| !(x.same_location(&p) && x.id == p.id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64, id: u64) -> Point {
        Point::with_id(x, y, id)
    }

    fn apply(d: &mut DeltaState, seq: u64, op: WriteOp, base: &[Point]) -> bool {
        let keys: Vec<Key> = base.iter().map(key_of).collect();
        d.apply(SequencedOp { seq, op }, &|k| {
            keys.iter().filter(|bk| *bk == k).count() as u32
        })
    }

    #[test]
    fn insert_then_delete_then_reinsert_tracks_net_state() {
        let base = vec![p(0.1, 0.1, 1)];
        let mut d = DeltaState::default();
        assert!(apply(&mut d, 1, WriteOp::Insert(p(0.5, 0.5, 7)), &base));
        assert_eq!(d.live_inserts(), 1);
        assert!(apply(&mut d, 2, WriteOp::Delete(p(0.5, 0.5, 7)), &base));
        assert_eq!(d.live_inserts(), 0);
        assert_eq!(d.masked_base(), 0, "key was never in base");
        assert!(apply(&mut d, 3, WriteOp::Insert(p(0.5, 0.5, 7)), &base));
        let (hit, _) = d.point_lookup(&p(0.5, 0.5, 0));
        assert_eq!(hit.map(|q| q.id), Some(7));
        assert_eq!(d.seq(), 3);
        assert_eq!(d.op_count(), 3);
    }

    #[test]
    fn deleting_a_base_point_masks_exactly_one_copy() {
        let base = vec![p(0.1, 0.1, 1), p(0.2, 0.2, 2)];
        let mut d = DeltaState::default();
        assert!(apply(&mut d, 1, WriteOp::Delete(p(0.1, 0.1, 1)), &base));
        assert!(d.masks(&p(0.1, 0.1, 1)));
        assert!(!d.masks(&p(0.2, 0.2, 2)));
        assert_eq!(d.masked_base(), 1);
        // Deleting again removes nothing.
        assert!(!apply(&mut d, 2, WriteOp::Delete(p(0.1, 0.1, 1)), &base));
        assert_eq!(d.masked_base(), 1);
        // Deleting something that never existed removes nothing.
        assert!(!apply(&mut d, 3, WriteOp::Delete(p(0.9, 0.9, 9)), &base));
    }

    #[test]
    fn point_lookup_prefers_earliest_live_insert() {
        let mut d = DeltaState::default();
        assert!(apply(&mut d, 1, WriteOp::Insert(p(0.5, 0.5, 30)), &[]));
        assert!(apply(&mut d, 2, WriteOp::Insert(p(0.5, 0.5, 10)), &[]));
        // Vec order: id 30 was appended first, so it is the first match.
        let (hit, examined) = d.point_lookup(&p(0.5, 0.5, 0));
        assert_eq!(hit.map(|q| q.id), Some(30));
        assert_eq!(examined, 2);
        // Delete the earliest; the later insert becomes the first match.
        assert!(apply(&mut d, 3, WriteOp::Delete(p(0.5, 0.5, 30)), &[]));
        let (hit, _) = d.point_lookup(&p(0.5, 0.5, 0));
        assert_eq!(hit.map(|q| q.id), Some(10));
    }

    #[test]
    fn duplicate_inserts_visit_once_per_copy() {
        let mut d = DeltaState::default();
        for seq in 1..=3 {
            apply(&mut d, seq, WriteOp::Insert(p(0.3, 0.3, 5)), &[]);
        }
        let mut seen = 0;
        d.visit_inserts_in(&Rect::unit(), &mut |q| {
            assert_eq!(q.id, 5);
            seen += 1;
        });
        assert_eq!(seen, 3);
        let mut all = 0;
        d.visit_inserts(&mut |_| all += 1);
        assert_eq!(all, 3);
        assert_eq!(d.live_inserts(), 3);
    }

    #[test]
    fn apply_log_to_points_matches_vec_semantics() {
        let mut points = vec![p(0.1, 0.1, 1), p(0.2, 0.2, 2)];
        let log = vec![
            SequencedOp {
                seq: 1,
                op: WriteOp::Insert(p(0.3, 0.3, 3)),
            },
            SequencedOp {
                seq: 2,
                op: WriteOp::Delete(p(0.1, 0.1, 1)),
            },
            SequencedOp {
                seq: 3,
                op: WriteOp::Insert(p(0.4, 0.4, 4)),
            },
        ];
        apply_log_to_points(&mut points, &log, 2);
        assert_eq!(
            points.iter().map(|q| q.id).collect::<Vec<_>>(),
            vec![2, 3],
            "ops beyond the cut-off must not be applied"
        );
        apply_log_to_points(&mut points, &log[2..], u64::MAX);
        assert_eq!(
            points.iter().map(|q| q.id).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn deleting_a_duplicated_base_key_masks_every_copy() {
        // Two identical points folded into the base (same location AND id):
        // one delete removes both, and the masked count says so.
        let base = vec![p(0.4, 0.4, 8), p(0.4, 0.4, 8)];
        let mut d = DeltaState::default();
        assert!(apply(&mut d, 1, WriteOp::Delete(p(0.4, 0.4, 8)), &base));
        assert!(d.masks(&p(0.4, 0.4, 8)));
        assert_eq!(d.masked_base(), 2);
    }

    #[test]
    fn noop_deletes_leave_no_dead_entries() {
        let mut d = DeltaState::default();
        assert!(!apply(&mut d, 1, WriteOp::Delete(p(0.9, 0.9, 9)), &[]));
        // The op is logged (sequence numbers stay dense) but no entry
        // lingers for queries to scan.
        assert_eq!(d.op_count(), 1);
        assert_eq!(d.seq(), 1);
        let examined = d.visit_inserts(&mut |_| {});
        assert_eq!(examined, 0, "a no-op delete left a dead entry behind");
        // Killing a delta-only copy also leaves nothing behind.
        assert!(apply(&mut d, 2, WriteOp::Insert(p(0.8, 0.8, 8)), &[]));
        assert!(apply(&mut d, 3, WriteOp::Delete(p(0.8, 0.8, 8)), &[]));
        assert_eq!(d.visit_inserts(&mut |_| {}), 0);
    }

    #[test]
    fn lane_mirror_visits_match_a_naive_entry_scan() {
        // More entries than one kernel chunk, with interleaved deletes so
        // the lanes see inserts, copy-count updates and removals; the
        // kernel-driven visits must agree with a naive filter over the log's
        // net state, in key order.
        let mut d = DeltaState::default();
        let mut seq = 0;
        for i in 0..(storage::kernels::CHUNK as u64 * 2 + 9) {
            seq += 1;
            let x = (i as f64 * 0.37).fract();
            let y = (i as f64 * 0.71).fract();
            apply(&mut d, seq, WriteOp::Insert(p(x, y, i)), &[]);
            if i % 3 == 0 {
                seq += 1;
                apply(&mut d, seq, WriteOp::Delete(p(x, y, i)), &[]);
            }
            if i % 7 == 0 {
                seq += 1;
                apply(&mut d, seq, WriteOp::Insert(p(x, y, i)), &[]);
            }
        }
        let mut naive: Vec<(Key, Point, u32)> = Vec::new();
        for (k, e) in &d.entries {
            naive.push((*k, e.point, e.copies));
        }

        let w = Rect::new(0.2, 0.1, 0.8, 0.9);
        let mut got = Vec::new();
        assert_eq!(
            d.visit_inserts_in(&w, &mut |q| got.push(q.id)),
            d.entries.len()
        );
        let expect: Vec<u64> = naive
            .iter()
            .filter(|(_, pt, c)| *c > 0 && w.contains(pt))
            .flat_map(|(_, pt, c)| std::iter::repeat_n(pt.id, *c as usize))
            .collect();
        assert_eq!(got, expect);

        let center = p(0.5, 0.5, 0);
        let r_sq = 0.04;
        let mut got = Vec::new();
        assert_eq!(
            d.visit_inserts_within(&center, r_sq, &mut |q| got.push(q.id)),
            d.entries.len()
        );
        let expect: Vec<u64> = naive
            .iter()
            .filter(|(_, pt, c)| *c > 0 && pt.dist_sq(&center) <= r_sq)
            .flat_map(|(_, pt, c)| std::iter::repeat_n(pt.id, *c as usize))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn negative_zero_folds_onto_positive_zero() {
        let mut d = DeltaState::default();
        apply(&mut d, 1, WriteOp::Insert(p(0.0, 0.5, 1)), &[]);
        let (hit, _) = d.point_lookup(&p(-0.0, 0.5, 0));
        assert_eq!(hit.map(|q| q.id), Some(1));
    }

    #[test]
    fn resume_continues_the_sequence() {
        let mut d = DeltaState::resume_at(41);
        assert_eq!(d.seq(), 41);
        assert!(d.is_empty());
        apply(&mut d, 42, WriteOp::Insert(p(0.6, 0.6, 6)), &[]);
        assert_eq!(d.seq(), 42);
        assert_eq!(d.log().len(), 1);
        assert!(d.size_bytes() > 0);
    }
}
