//! Concurrent serving engine: epoch-swapped reads, delta-buffered writes,
//! background compaction.
//!
//! Every index in this repository is `Send + Sync` for *queries*, but writes
//! go through `&mut self` — whoever owns the index serialises everything.
//! This crate turns any [`SpatialIndex`] into a long-lived server the way
//! "The Case for Learned Spatial Indexes" (Pandey et al.) and LiLIS frame
//! learned spatial indices: a system whose metric is query throughput under
//! concurrent updates, not one-shot build-and-probe.
//!
//! # Design
//!
//! * **Epoch-swapped reads.**  The immutable base index lives inside an
//!   epoch behind an `Arc`.  A reader takes a [`Snapshot`] — two `Arc`
//!   clones under momentary read locks — and then runs any number of
//!   point/window/kNN queries against that frozen view with its own
//!   [`QueryContext`], never blocking other readers, writers, or compaction.
//! * **Delta-buffered writes.**  Inserts and deletes do not touch the base.
//!   They land in a sequenced delta overlay ([`WriteOp`] → [`SequencedOp`]);
//!   every query merges base and delta — deleted points are masked out of
//!   base results, inserted points are unioned in, and per-query statistics
//!   stay exact because delta candidates are charged to the context like any
//!   block scan.  A query's [`Snapshot::seq`] says exactly which prefix of
//!   the write stream it observes, which is what makes concurrent runs
//!   verifiable against a single-threaded replay oracle.
//! * **Background compaction.**  When the delta grows past
//!   [`CompactionPolicy::ops_trigger`], a background thread folds it into
//!   the canonical point set, refreshes the base, and atomically swaps in a
//!   new epoch.  Readers holding the old epoch keep getting correct answers
//!   from it; the swap itself is one `Arc` store.  Rebuilds happen entirely
//!   outside the read path.
//! * **Incremental maintenance.**  A full rebuild (the caller's rebuild
//!   closure — the registry passes `build_index`, so any registered family
//!   composes) is the fallback.  When the base supports it
//!   ([`SpatialIndex::clone_index`] + [`SpatialIndex::rebuild_partial`]),
//!   the [`CompactionPolicy`] instead clones the base, replays the captured
//!   delta into the clone, and retrains only the subtrees whose model drift
//!   crossed [`CompactionPolicy::drift_trigger`] — bounded per pass by a
//!   pause budget so compaction cost stays proportional to churn, not to
//!   data size.  The epoch swap discipline is identical either way.
//!
//! # Example: serve and write concurrently
//!
//! ```
//! use common::{brute_force::ScanIndex, QueryContext, SpatialIndex};
//! use geom::Point;
//! use server::{ServerConfig, SpatialServer};
//!
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::with_id(i as f64 / 100.0, (i as f64 * 0.37) % 1.0, i))
//!     .collect();
//! let server = SpatialServer::new(
//!     points,
//!     Box::new(|pts| Box::new(ScanIndex::new(pts.to_vec()))),
//!     ServerConfig::default(),
//! );
//!
//! // A writer thread inserts while this thread queries: readers take
//! // snapshots and never block on the writer or on compaction.
//! std::thread::scope(|scope| {
//!     scope.spawn(|| {
//!         for i in 0..50u64 {
//!             server.insert(Point::with_id(0.5, 0.001 * i as f64, 1_000 + i));
//!         }
//!     });
//!     let mut cx = QueryContext::new();
//!     let snap = server.snapshot();
//!     // The snapshot is frozen: it sees a definite prefix of the writes.
//!     assert!(snap.seq() <= 50);
//!     assert_eq!(
//!         snap.point_query(&Point::new(7.0 / 100.0, (7.0 * 0.37) % 1.0), &mut cx)
//!             .map(|p| p.id),
//!         Some(7),
//!     );
//! });
//!
//! // After the writer finishes, a fresh snapshot sees all 50 inserts.
//! assert_eq!(server.len(), 150);
//! let mut cx = QueryContext::new();
//! let hit = server.point_query(&Point::new(0.5, 0.001 * 13.0), &mut cx);
//! assert_eq!(hit.map(|p| p.id), Some(1_013));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;

pub use delta::{SequencedOp, WriteOp};

use common::{MaintenanceBudget, QueryContext, SpatialIndex};
use delta::{key_of, DeltaState, Key};
use geom::{Point, Rect};
use obs::{Counter, EventKind, Gauge, Histogram, Telemetry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// The closure that rebuilds the base index from the canonical point set
/// during compaction.  The registry passes its own `build_index` (with the
/// kind and config captured), so every registered family composes with the
/// server without a dependency cycle.
pub type RebuildFn = Box<dyn Fn(&[Point]) -> Box<dyn SpatialIndex> + Send + Sync>;

/// When and how the server compacts: the trigger for folding the delta,
/// and the decision between a full rebuild and an incremental (partial)
/// one.  The policy is plain data, so experiments sweep it and tests pin
/// it; [`SpatialServer`] consults it on every policy-driven compaction
/// ([`SpatialServer::maintain_now`] and the background thread).
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Number of buffered delta ops that triggers a compaction.
    pub ops_trigger: usize,
    /// Per-subtree drift at or above which a partial pass retrains the
    /// subtree (the unit is "fractions of a retrain's worth of churn"; see
    /// the drift metric in `docs/ARCHITECTURE.md`).  Subtrees below it
    /// keep their (possibly widened) models.
    pub drift_trigger: f64,
    /// Max-to-mean per-shard point-count ratio at or above which a sharded
    /// base is considered skewed enough to force a full rebuild (partial
    /// retraining cannot move points between shards).
    pub skew_trigger: f64,
    /// Budget, in microseconds, for the off-lock partial-rebuild work of
    /// one pass.  The server keeps a running estimate of per-subtree
    /// retrain cost and caps the number of subtrees per pass so the pass
    /// fits the budget; the remainder is deferred to the next pass.
    pub pause_budget_us: u64,
    /// Hard cap on subtrees retrained per partial pass, independent of the
    /// cost estimate.
    pub max_subtrees: usize,
    /// Whether partial compaction is attempted at all.  With `false` every
    /// policy-driven compaction is a full rebuild (the pre-maintenance
    /// behaviour).
    pub incremental: bool,
    /// Force a full rebuild every Nth compaction (0 = never force).  A
    /// periodic full pass bounds long-run structural decay that per-subtree
    /// retraining cannot repair (overflow chains, shard skew below the
    /// trigger).
    pub full_every: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            ops_trigger: 1_024,
            drift_trigger: 1.0,
            skew_trigger: 4.0,
            pause_budget_us: 50_000,
            max_subtrees: 64,
            incremental: true,
            full_every: 0,
        }
    }
}

impl CompactionPolicy {
    /// Returns a copy with the given ops trigger (clamped to at least 1).
    pub fn with_ops_trigger(mut self, ops: usize) -> Self {
        self.ops_trigger = ops.max(1);
        self
    }

    /// Returns a copy with the given per-subtree drift trigger.
    pub fn with_drift_trigger(mut self, drift: f64) -> Self {
        self.drift_trigger = drift;
        self
    }

    /// Returns a copy with the given pause budget in microseconds.
    pub fn with_pause_budget_us(mut self, us: u64) -> Self {
        self.pause_budget_us = us;
        self
    }

    /// Returns a copy with the given per-pass subtree cap (at least 1).
    pub fn with_max_subtrees(mut self, n: usize) -> Self {
        self.max_subtrees = n.max(1);
        self
    }

    /// Returns a copy with partial compaction enabled or disabled.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Returns a copy forcing a full rebuild every `n`th compaction.
    pub fn with_full_every(mut self, n: u64) -> Self {
        self.full_every = n;
        self
    }
}

/// Tuning knobs of a [`SpatialServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// When to compact and whether to do it incrementally.
    pub policy: CompactionPolicy,
    /// Whether the background compaction thread runs at all.  With `false`
    /// the delta only ever shrinks through explicit
    /// [`SpatialServer::compact_now`] / [`SpatialServer::maintain_now`]
    /// calls — what deterministic tests use.
    pub auto_compact: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            policy: CompactionPolicy::default(),
            auto_compact: true,
        }
    }
}

impl ServerConfig {
    /// Returns a copy with the given compaction (ops) threshold.
    pub fn with_compact_threshold(mut self, ops: usize) -> Self {
        self.policy.ops_trigger = ops.max(1);
        self
    }

    /// Returns a copy with the given compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with background compaction enabled or disabled.
    pub fn with_auto_compact(mut self, on: bool) -> Self {
        self.auto_compact = on;
        self
    }
}

/// The unified serving configuration: every knob a serving process needs —
/// compaction ([`ServerConfig`]), network admission/batching (mirroring
/// `net::NetConfig`), the bind address, and an optional snapshot warm-start
/// path — behind one builder.
///
/// This is the front door for `registry::serve_config`, `net::serve_config`,
/// the shard server, and the distributed router; construct it with the
/// `with_*` builders.  The older split surface (`ServerConfig` here,
/// `NetConfig` in `net`, positional bind addresses) remains as thin shims
/// for one release so call sites can migrate mechanically — prefer
/// `ServeConfig` in new code.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address the serving listener binds (port 0 = ephemeral).
    pub bind_addr: String,
    /// Snapshot to warm-start from instead of building fresh (`None` =
    /// build from the supplied points).
    pub warm_start: Option<std::path::PathBuf>,
    /// Compaction knobs of the wrapped [`SpatialServer`].
    pub server: ServerConfig,
    /// Acceptor threads blocking on the listener.
    pub acceptors: usize,
    /// Worker threads draining the batch queue.
    pub workers: usize,
    /// Maximum requests coalesced into one micro-batch.
    pub batch_max: usize,
    /// Bounded per-connection in-flight admission window.
    pub per_conn_inflight: usize,
    /// Bounded global in-flight admission window.
    pub global_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // The network defaults must match `net::NetConfig::default()` (a
        // test over there pins the agreement); they are restated here
        // because the dependency points the other way.
        let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
        Self {
            bind_addr: "127.0.0.1:0".to_string(),
            warm_start: None,
            server: ServerConfig::default(),
            acceptors: cores.clamp(1, 4),
            workers: cores.clamp(1, 8),
            batch_max: 32,
            per_conn_inflight: 64,
            global_inflight: 1024,
        }
    }
}

impl ServeConfig {
    /// Returns a copy binding the given address (port 0 = ephemeral).
    pub fn with_bind_addr(mut self, addr: impl Into<String>) -> Self {
        self.bind_addr = addr.into();
        self
    }

    /// Returns a copy that warm-starts from the given snapshot path.
    pub fn with_warm_start(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Returns a copy with the given compaction (ops) threshold.
    pub fn with_compact_threshold(mut self, ops: usize) -> Self {
        self.server = self.server.with_compact_threshold(ops);
        self
    }

    /// Returns a copy with the given compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.server = self.server.with_policy(policy);
        self
    }

    /// Returns a copy with background compaction enabled or disabled.
    pub fn with_auto_compact(mut self, on: bool) -> Self {
        self.server = self.server.with_auto_compact(on);
        self
    }

    /// Returns a copy with the given acceptor pool size (at least 1).
    pub fn with_acceptors(mut self, n: usize) -> Self {
        self.acceptors = n.max(1);
        self
    }

    /// Returns a copy with the given worker pool size (at least 1).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Returns a copy with the given micro-batch cap (at least 1).
    pub fn with_batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Returns a copy with the given per-connection in-flight window (0
    /// sheds everything — useful in tests).
    pub fn with_per_conn_inflight(mut self, n: usize) -> Self {
        self.per_conn_inflight = n;
        self
    }

    /// Returns a copy with the given global in-flight window (0 sheds
    /// everything — useful in tests).
    pub fn with_global_inflight(mut self, n: usize) -> Self {
        self.global_inflight = n;
        self
    }

    /// The compaction subset of the configuration, for constructing the
    /// wrapped [`SpatialServer`].
    pub fn server_config(&self) -> ServerConfig {
        self.server
    }
}

/// What a compaction pass does to the base index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionMode {
    /// Rebuild the base from scratch through the rebuild closure.
    Full,
    /// Clone the base, replay the captured delta into the clone, and
    /// retrain only drifted subtrees.  Falls back to
    /// [`Full`](CompactionMode::Full) when the base does not support cloning or
    /// the captured log contains a wildcard delete a clone cannot replay
    /// faithfully.
    Partial,
    /// Let the [`CompactionPolicy`] decide per pass.
    Auto,
}

/// One immutable generation of the server: a frozen base index plus the
/// delta overlay accumulating the writes that arrived after the base was
/// built.  Readers hold an `Arc<Epoch>`; compaction replaces the server's
/// current epoch but never mutates an existing one, so in-flight readers
/// stay correct.
/// Per-key bookkeeping of one epoch's base contents.
#[derive(Debug, Clone, Copy)]
struct BaseKeyInfo {
    /// Copies of the key in the base (>1 only when identical points were
    /// inserted repeatedly and folded by compaction).
    copies: u32,
    /// Position of the key's first occurrence in the canonical point
    /// vector, so duplicate-location lookups can honour `Vec` first-match
    /// order without asking the base.
    first_pos: u32,
}

struct Epoch {
    /// Monotone epoch counter (0 = the initial build).
    id: u64,
    /// The frozen base index.
    base: Box<dyn SpatialIndex>,
    /// Copy counts and canonical positions of every key the base contains,
    /// so deletes can decide in O(1) how many base copies they mask (keeps
    /// `len()`, kNN over-fetch, and delete results exact without querying
    /// the base) and duplicate-location point queries resolve in `Vec`
    /// order.
    base_keys: HashMap<Key, BaseKeyInfo>,
    /// Writes since this epoch's base was built.  Readers clone the `Arc`
    /// under a momentary read lock; the (single) writer appends through
    /// `Arc::make_mut` under the write lock.
    delta: RwLock<Arc<DeltaState>>,
}

/// Builds the per-key bookkeeping from the canonical point vector.
fn index_base_keys(points: &[Point]) -> HashMap<Key, BaseKeyInfo> {
    let mut keys: HashMap<Key, BaseKeyInfo> = HashMap::with_capacity(points.len());
    for (pos, p) in points.iter().enumerate() {
        keys.entry(key_of(p))
            .or_insert(BaseKeyInfo {
                copies: 0,
                first_pos: pos as u32,
            })
            .copies += 1;
    }
    keys
}

/// Counters describing a server's current state, for experiments and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Current epoch id (number of compactions folded into the base).
    pub epoch: u64,
    /// Last write sequence number handed out.
    pub seq: u64,
    /// Ops currently buffered in the delta overlay.
    pub delta_ops: usize,
    /// Completed compactions (epoch swaps), full and partial.
    pub compactions: u64,
    /// Compactions that ran as partial (incremental) passes.
    pub partial_compactions: u64,
    /// Subtrees retrained across all partial passes.
    pub subtree_rebuilds: u64,
    /// Live points (base minus masked deletes plus live inserts).
    pub len: usize,
}

/// Pre-registered telemetry handles for the hot paths, so recording a
/// write or a compaction never looks a metric name up.
struct ServerMetrics {
    /// `server.epoch`: current epoch id.
    epoch: Gauge,
    /// `server.seq`: last write sequence handed out.
    seq: Gauge,
    /// `server.delta_ops`: ops buffered in the delta overlay (= ops since
    /// the last compaction folded).
    delta_ops: Gauge,
    /// `server.points`: live points visible to a fresh snapshot (base minus
    /// masked deletes plus live inserts).  A distributed router scrapes
    /// this at startup to learn each shard's cardinality without loading
    /// shard data.
    points: Gauge,
    /// `server.model_err_below` / `server.model_err_above`: worst-case
    /// model prediction error of the live base, refreshed at every rebuild
    /// — the drift signal incremental maintenance triggers on.
    model_err_below: Gauge,
    model_err_above: Gauge,
    /// `server.compaction_pause_us`: writer-visible pause during the epoch
    /// swap.
    compaction_pause_us: Histogram,
    /// `server.compaction_rebuild_us`: off-lock rebuild duration.
    compaction_rebuild_us: Histogram,
    /// `server.compactions_full` / `server.compactions_partial`: how the
    /// swaps were produced — the soak suite asserts partial passes carried
    /// the steady-state load.
    compactions_full: Counter,
    compactions_partial: Counter,
    /// `server.subtree_rebuilds`: subtrees retrained across all partial
    /// passes.
    subtree_rebuilds: Counter,
    /// `server.partial_rebuild_us`: off-lock duration of partial passes
    /// only (full rebuilds go to `server.compaction_rebuild_us`).
    partial_rebuild_us: Histogram,
    /// `server.maint_ops_since_train`: writes absorbed by the live base's
    /// leaves since their models were trained — the raw drift signal.
    maint_ops_since_train: Gauge,
    /// `server.maint_widened`: total error-bound widening (blocks, below +
    /// above) the live base's leaves carry.
    maint_widened: Gauge,
    /// `server.maint_stale_subtrees`: subtrees currently at or past the
    /// default drift threshold.
    maint_stale_subtrees: Gauge,
}

impl ServerMetrics {
    fn register(t: &Telemetry) -> Self {
        Self {
            epoch: t.metrics.gauge("server.epoch"),
            seq: t.metrics.gauge("server.seq"),
            delta_ops: t.metrics.gauge("server.delta_ops"),
            points: t.metrics.gauge("server.points"),
            model_err_below: t.metrics.gauge("server.model_err_below"),
            model_err_above: t.metrics.gauge("server.model_err_above"),
            compaction_pause_us: t.metrics.histogram("server.compaction_pause_us"),
            compaction_rebuild_us: t.metrics.histogram("server.compaction_rebuild_us"),
            compactions_full: t.metrics.counter("server.compactions_full"),
            compactions_partial: t.metrics.counter("server.compactions_partial"),
            subtree_rebuilds: t.metrics.counter("server.subtree_rebuilds"),
            partial_rebuild_us: t.metrics.histogram("server.partial_rebuild_us"),
            maint_ops_since_train: t.metrics.gauge("server.maint_ops_since_train"),
            maint_widened: t.metrics.gauge("server.maint_widened"),
            maint_stale_subtrees: t.metrics.gauge("server.maint_stale_subtrees"),
        }
    }

    fn set_model_error(&self, base: &dyn SpatialIndex) {
        if let Some((below, above)) = base.model_error_bounds() {
            self.model_err_below.set(below.min(i64::MAX as u64) as i64);
            self.model_err_above.set(above.min(i64::MAX as u64) as i64);
        }
    }

    fn set_maintenance(&self, base: &dyn SpatialIndex) {
        if let Some(m) = base.maintenance_stats() {
            self.maint_ops_since_train
                .set(m.ops_since_train.min(i64::MAX as u64) as i64);
            self.maint_widened
                .set((m.widened_below + m.widened_above).min(i64::MAX as u64) as i64);
            self.maint_stale_subtrees.set(m.stale_subtrees as i64);
        }
    }
}

/// Shared state between the server handle and its compaction thread.
struct Core {
    /// The current epoch; replaced (never mutated) by compaction.
    epoch: RwLock<Arc<Epoch>>,
    /// Serialises writers against each other and against the epoch swap.
    /// Readers never touch it.
    write_gate: Mutex<()>,
    /// Serialises compactions and owns the canonical point set (the base's
    /// contents as a plain `Vec`, maintained fold-by-fold).
    compact_state: Mutex<Vec<Point>>,
    /// Builds a fresh base from the canonical points.
    rebuild: RebuildFn,
    cfg: ServerConfig,
    /// Completed epoch swaps (full + partial).
    compactions: AtomicU64,
    /// Epoch swaps produced by partial (incremental) passes.
    partial_compactions: AtomicU64,
    /// Subtrees retrained across all partial passes.
    subtree_rebuilds: AtomicU64,
    /// Running estimate of per-subtree retrain cost in microseconds
    /// (exponential moving average, 0 = no estimate yet).  Divides the
    /// policy's pause budget into a per-pass subtree cap.
    partial_cost_ema_us: AtomicU64,
    /// Wake-up signal for the compaction thread.
    signal: Mutex<CompactorSignal>,
    signal_cv: Condvar,
    /// Shared telemetry sink (always on; the network layer records into
    /// the same instance so one `STATS` scrape covers every layer).
    telemetry: Arc<Telemetry>,
    /// Pre-registered handles into `telemetry`.
    metrics: ServerMetrics,
}

#[derive(Default)]
struct CompactorSignal {
    kicked: bool,
    shutdown: bool,
}

impl Core {
    fn current_epoch(&self) -> Arc<Epoch> {
        self.epoch.read().expect("epoch lock poisoned").clone()
    }

    fn snapshot(&self) -> Snapshot {
        let epoch = self.current_epoch();
        let delta = epoch.delta.read().expect("delta lock poisoned").clone();
        Snapshot { epoch, delta }
    }

    /// Applies one write op; returns `(removed, seq)`.
    ///
    /// Cost note: when a reader still holds a snapshot of the current delta
    /// (`Arc` shared), `Arc::make_mut` copies the overlay before appending —
    /// bounded by [`CompactionPolicy::ops_trigger`] entries, which is the
    /// deliberate trade for readers that never take the write path's locks.
    fn apply(&self, op: WriteOp) -> (bool, u64) {
        let buffered;
        let result;
        {
            let _gate = self.write_gate.lock().expect("write gate poisoned");
            let epoch = self.current_epoch();
            let mut guard = epoch.delta.write().expect("delta lock poisoned");
            let state = Arc::make_mut(&mut guard);
            let seq = state.seq() + 1;
            let removed = state.apply(SequencedOp { seq, op }, &|k| {
                epoch.base_keys.get(k).map_or(0, |i| i.copies)
            });
            buffered = state.op_count();
            result = (removed, seq);
            self.metrics.seq.set(seq.min(i64::MAX as u64) as i64);
            self.metrics.delta_ops.set(buffered as i64);
            let live = epoch.base.len() - state.masked_base() + state.live_inserts();
            self.metrics.points.set(live as i64);
        }
        if self.cfg.auto_compact && buffered >= self.cfg.policy.ops_trigger {
            let mut sig = self.signal.lock().expect("signal lock poisoned");
            sig.kicked = true;
            self.signal_cv.notify_all();
        }
        result
    }

    /// Picks the mode a policy-driven compaction of `base` should run in.
    /// Partial is chosen only when the policy allows it, it is not a forced
    /// full round, the base reports maintenance state, and (for sharded
    /// bases) the per-shard point counts are not skewed past the trigger —
    /// per-subtree retraining cannot move points between shards, so a
    /// skewed sharding needs the full repartitioning rebuild.
    fn decide_mode(&self, base: &dyn SpatialIndex) -> CompactionMode {
        let p = &self.cfg.policy;
        if !p.incremental {
            return CompactionMode::Full;
        }
        if p.full_every > 0
            && (self.compactions.load(Ordering::Relaxed) + 1).is_multiple_of(p.full_every)
        {
            return CompactionMode::Full;
        }
        if base.maintenance_stats().is_none() {
            return CompactionMode::Full;
        }
        if let Some(counts) = base.shard_point_counts() {
            if counts.len() > 1 {
                let total: usize = counts.iter().sum();
                let mean = total as f64 / counts.len() as f64;
                let max = counts.iter().copied().max().unwrap_or(0) as f64;
                if mean > 0.0 && max / mean >= p.skew_trigger {
                    return CompactionMode::Full;
                }
            }
        }
        CompactionMode::Partial
    }

    /// How many subtrees the next partial pass may retrain: the policy's
    /// hard cap, shrunk so that `subtrees x estimated per-subtree cost`
    /// fits the pause budget once a cost estimate exists.
    fn partial_budget(&self) -> MaintenanceBudget {
        let p = &self.cfg.policy;
        let mut max_subtrees = p.max_subtrees.max(1);
        let ema = self.partial_cost_ema_us.load(Ordering::Relaxed);
        if let Some(affordable) = p.pause_budget_us.checked_div(ema) {
            let affordable = affordable.max(1);
            max_subtrees = max_subtrees.min(affordable.min(usize::MAX as u64) as usize);
        }
        MaintenanceBudget {
            max_subtrees,
            drift_threshold: p.drift_trigger,
        }
    }

    /// Folds the buffered delta into a refreshed base and swaps in a new
    /// epoch.  Returns whether an epoch swap happened (false when the delta
    /// was empty).  The expensive rebuild runs outside every lock the read
    /// or write paths use; only the final pointer swap takes the write
    /// gate.
    ///
    /// With [`CompactionMode::Partial`] (or [`CompactionMode::Auto`]
    /// resolving to it) the base is cloned, the captured ops are replayed
    /// into the clone in sequence order, and only drifted subtrees are
    /// retrained under [`Core::partial_budget`].  The canonical point
    /// vector is folded identically in both modes, so a later full rebuild
    /// always starts from the same ground truth.  Partial silently falls
    /// back to full when the base cannot be cloned or the captured log
    /// contains a wildcard delete (`id == 0` matches any id in
    /// [`SpatialIndex::delete`], which an index replay cannot reproduce
    /// faithfully against `Vec` fold semantics).
    fn compact_with(&self, mode: CompactionMode) -> bool {
        let mut points = self.compact_state.lock().expect("compact lock poisoned");
        let epoch = self.current_epoch();
        let captured = epoch.delta.read().expect("delta lock poisoned").clone();
        if captured.is_empty() {
            return false;
        }
        let fold_seq = captured.seq();
        let mode = match mode {
            CompactionMode::Auto => self.decide_mode(epoch.base.as_ref()),
            m => m,
        };
        self.telemetry.journal.record(EventKind::CompactionStart {
            epoch: epoch.id,
            delta_ops: captured.op_count() as u64,
        });
        delta::apply_log_to_points(&mut points, captured.log(), fold_seq);

        let wildcard_delete = captured
            .log()
            .iter()
            .any(|o| matches!(o.op, WriteOp::Delete(p) if p.id == 0));
        let rebuild_t0 = Instant::now();
        let mut partial_outcome = None;
        let new_base = if mode == CompactionMode::Partial && !wildcard_delete {
            match epoch.base.clone_index() {
                Some(mut clone) => {
                    for op in captured.log().iter().filter(|o| o.seq <= fold_seq) {
                        match op.op {
                            WriteOp::Insert(p) => clone.insert(p),
                            // Vec fold semantics remove every matching
                            // copy; `SpatialIndex::delete` removes one.
                            WriteOp::Delete(p) => while clone.delete(&p) {},
                        }
                    }
                    partial_outcome = Some(clone.rebuild_partial(&self.partial_budget()));
                    clone
                }
                None => (self.rebuild)(&points),
            }
        } else {
            (self.rebuild)(&points)
        };
        let rebuild_us = rebuild_t0.elapsed().as_micros() as u64;
        let new_points = points.len() as u64;
        let new_keys = index_base_keys(&points);
        debug_assert_eq!(
            new_base.len(),
            points.len(),
            "partial replay must reproduce the canonical fold"
        );
        self.metrics.set_model_error(new_base.as_ref());
        self.metrics.set_maintenance(new_base.as_ref());

        // Swap: with the write gate held no new ops can land, so the ops
        // beyond the fold point are exactly the leftover the new epoch's
        // delta must start from.  Readers are not blocked: they only take
        // the epoch read lock for the duration of an `Arc` clone.
        let new_epoch_id;
        let pause_us;
        {
            let pause_t0 = Instant::now();
            let _gate = self.write_gate.lock().expect("write gate poisoned");
            let current = self.current_epoch();
            let current_delta = current.delta.read().expect("delta lock poisoned").clone();
            let mut leftover = DeltaState::resume_at(fold_seq);
            for op in current_delta.log().iter().filter(|o| o.seq > fold_seq) {
                leftover.apply(*op, &|k| new_keys.get(k).map_or(0, |i| i.copies));
            }
            new_epoch_id = current.id + 1;
            self.metrics.delta_ops.set(leftover.op_count() as i64);
            let live = new_base.len() - leftover.masked_base() + leftover.live_inserts();
            self.metrics.points.set(live as i64);
            let next = Arc::new(Epoch {
                id: new_epoch_id,
                base: new_base,
                base_keys: new_keys,
                delta: RwLock::new(Arc::new(leftover)),
            });
            *self.epoch.write().expect("epoch lock poisoned") = next;
            pause_us = pause_t0.elapsed().as_micros() as u64;
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .epoch
            .set(new_epoch_id.min(i64::MAX as u64) as i64);
        self.metrics.compaction_pause_us.record(pause_us);
        match partial_outcome {
            // A clone whose `rebuild_partial` fell back to a full rebuild
            // still counts as a full pass: the whole structure was redone.
            Some(outcome) if !outcome.full_rebuild => {
                let subtrees = outcome.subtrees_rebuilt as u64;
                self.partial_compactions.fetch_add(1, Ordering::Relaxed);
                self.subtree_rebuilds.fetch_add(subtrees, Ordering::Relaxed);
                self.metrics.compactions_partial.inc();
                self.metrics.subtree_rebuilds.add(subtrees);
                self.metrics.partial_rebuild_us.record(rebuild_us);
                if let Some(per) = rebuild_us.checked_div(subtrees) {
                    let per = per.max(1);
                    let ema = self.partial_cost_ema_us.load(Ordering::Relaxed);
                    let next = if ema == 0 { per } else { (3 * ema + per) / 4 };
                    self.partial_cost_ema_us.store(next, Ordering::Relaxed);
                }
                self.telemetry
                    .journal
                    .record(EventKind::PartialCompactionEnd {
                        epoch: new_epoch_id,
                        pause_us,
                        rebuild_us,
                        subtrees,
                    });
            }
            _ => {
                self.metrics.compactions_full.inc();
                self.metrics.compaction_rebuild_us.record(rebuild_us);
                self.telemetry.journal.record(EventKind::CompactionEnd {
                    epoch: new_epoch_id,
                    pause_us,
                    rebuild_us,
                    points: new_points,
                });
            }
        }
        self.telemetry.journal.record(EventKind::EpochSwap {
            epoch: new_epoch_id,
            seq: fold_seq,
        });
        true
    }
}

/// A long-lived concurrent serving engine wrapping one [`SpatialIndex`].
///
/// All methods take `&self`: readers call [`snapshot`](Self::snapshot) (or
/// the convenience query methods) from any number of threads, writers call
/// [`insert`](Self::insert) / [`delete`](Self::delete) from any thread
/// (writes are serialised internally), and compaction runs in a background
/// thread owned by the server.  Dropping the server shuts the compaction
/// thread down.
///
/// The server also implements [`SpatialIndex`] itself, so it can stand
/// wherever an index is expected: trait queries read through a fresh
/// snapshot, trait updates go through the delta overlay, `rebuild` forces a
/// compaction, and `write_snapshot` persists the compacted base through the
/// ordinary registry machinery.
pub struct SpatialServer {
    core: Arc<Core>,
    compactor: Option<std::thread::JoinHandle<()>>,
}

impl SpatialServer {
    /// Builds the base index over `points` with `rebuild` and starts serving.
    pub fn new(points: Vec<Point>, rebuild: RebuildFn, cfg: ServerConfig) -> Self {
        let base = rebuild(&points);
        Self::from_parts(base, points, rebuild, cfg)
    }

    /// Starts serving an already-built base index (e.g. one loaded from a
    /// snapshot) whose contents are exactly `points` — the canonical set
    /// compaction folds writes into.
    pub fn from_parts(
        base: Box<dyn SpatialIndex>,
        points: Vec<Point>,
        rebuild: RebuildFn,
        cfg: ServerConfig,
    ) -> Self {
        debug_assert_eq!(
            base.len(),
            points.len(),
            "canonical points must match the base index contents"
        );
        let base_keys = index_base_keys(&points);
        let telemetry = Arc::new(Telemetry::new());
        let metrics = ServerMetrics::register(&telemetry);
        metrics.set_model_error(base.as_ref());
        metrics.set_maintenance(base.as_ref());
        metrics.points.set(points.len() as i64);
        telemetry.journal.record(EventKind::ServerStart {
            points: points.len() as u64,
        });
        let core = Arc::new(Core {
            epoch: RwLock::new(Arc::new(Epoch {
                id: 0,
                base,
                base_keys,
                delta: RwLock::new(Arc::new(DeltaState::default())),
            })),
            write_gate: Mutex::new(()),
            compact_state: Mutex::new(points),
            rebuild,
            cfg,
            compactions: AtomicU64::new(0),
            partial_compactions: AtomicU64::new(0),
            subtree_rebuilds: AtomicU64::new(0),
            partial_cost_ema_us: AtomicU64::new(0),
            signal: Mutex::new(CompactorSignal::default()),
            signal_cv: Condvar::new(),
            telemetry,
            metrics,
        });
        let compactor = cfg.auto_compact.then(|| {
            let worker = Arc::clone(&core);
            std::thread::Builder::new()
                .name("rsmi-compactor".into())
                .spawn(move || compactor_loop(&worker))
                .expect("failed to spawn the compaction thread")
        });
        Self { core, compactor }
    }

    /// Takes a frozen, consistent view of the server: one epoch plus the
    /// delta prefix it had at this instant.  Cheap (two `Arc` clones); hold
    /// it for as many queries as a consistent view is needed for.
    pub fn snapshot(&self) -> Snapshot {
        self.core.snapshot()
    }

    /// The server's always-on telemetry sink.  The network layer records
    /// its own metrics and lifecycle events into the same instance, so one
    /// `STATS`/`EVENTS` scrape covers every layer of the process.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.core.telemetry
    }

    /// Inserts a point; returns the sequence number the write was applied
    /// under.
    pub fn insert(&self, p: Point) -> u64 {
        self.core.apply(WriteOp::Insert(p)).1
    }

    /// Deletes every live copy matching `p`'s location and id; returns
    /// whether anything was removed, plus the write's sequence number.
    pub fn delete(&self, p: &Point) -> (bool, u64) {
        self.core.apply(WriteOp::Delete(*p))
    }

    /// Applies one [`WriteOp`]; returns `(removed, seq)` (`removed` is
    /// always `true` for inserts).
    pub fn apply(&self, op: WriteOp) -> (bool, u64) {
        self.core.apply(op)
    }

    /// Synchronously runs one policy-driven compaction: the
    /// [`CompactionPolicy`] decides between a partial pass (retrain only
    /// drifted subtrees in a clone of the base) and a full rebuild, and the
    /// resulting epoch swaps in atomically either way.  Returns whether a
    /// swap happened (`false` if the delta was empty).  This is what the
    /// background thread runs on every trigger.
    pub fn maintain_now(&self) -> bool {
        self.core.compact_with(CompactionMode::Auto)
    }

    /// Synchronously compacts in an explicit [`CompactionMode`].  Partial
    /// falls back to full when the base cannot support it.
    pub fn compact_in(&self, mode: CompactionMode) -> bool {
        self.core.compact_with(mode)
    }

    /// Synchronously folds the buffered delta into a fresh base and swaps
    /// epochs, always as a **full** rebuild — the deterministic baseline
    /// (and what trait-level `rebuild` / `write_snapshot` use).  Returns
    /// whether a swap happened (`false` if the delta was empty).  Safe to
    /// call while the background thread is running — the two serialise on
    /// the compaction lock.  See [`maintain_now`](Self::maintain_now) for
    /// the policy-driven (possibly partial) variant.
    pub fn compact_now(&self) -> bool {
        self.core.compact_with(CompactionMode::Full)
    }

    /// Current server counters (epoch, sequence, delta size, live points).
    pub fn stats(&self) -> ServerStats {
        let snap = self.snapshot();
        ServerStats {
            epoch: snap.epoch_id(),
            seq: snap.seq(),
            delta_ops: snap.delta.op_count(),
            compactions: self.core.compactions.load(Ordering::Relaxed),
            partial_compactions: self.core.partial_compactions.load(Ordering::Relaxed),
            subtree_rebuilds: self.core.subtree_rebuilds.load(Ordering::Relaxed),
            len: snap.len(),
        }
    }

    /// Live points currently visible to a fresh snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether no points are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience: a point query against a fresh snapshot.
    pub fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        self.snapshot().point_query(q, cx)
    }

    /// Convenience: a window query against a fresh snapshot.
    pub fn window_query(&self, window: &Rect, cx: &mut QueryContext) -> Vec<Point> {
        self.snapshot().window_query(window, cx)
    }

    /// Convenience: a kNN query against a fresh snapshot.
    pub fn knn_query(&self, q: &Point, k: usize, cx: &mut QueryContext) -> Vec<Point> {
        self.snapshot().knn_query(q, k, cx)
    }

    /// Convenience: a distance-range query against a fresh snapshot.
    pub fn range_query(&self, center: &Point, radius: f64, cx: &mut QueryContext) -> Vec<Point> {
        self.snapshot().range_query(center, radius, cx)
    }
}

impl Drop for SpatialServer {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.take() {
            {
                let mut sig = self.core.signal.lock().expect("signal lock poisoned");
                sig.shutdown = true;
                self.core.signal_cv.notify_all();
            }
            let _ = handle.join();
        }
    }
}

/// How long the compaction thread sleeps between trigger checks when nobody
/// kicks it (a kick from the write path wakes it immediately).
const COMPACTOR_POLL: Duration = Duration::from_millis(25);

fn compactor_loop(core: &Core) {
    loop {
        {
            let mut sig = core.signal.lock().expect("signal lock poisoned");
            while !sig.shutdown && !sig.kicked {
                let (guard, timeout) = core
                    .signal_cv
                    .wait_timeout(sig, COMPACTOR_POLL)
                    .expect("signal lock poisoned");
                sig = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if sig.shutdown {
                return;
            }
            sig.kicked = false;
        }
        let epoch = core.current_epoch();
        let buffered = epoch.delta.read().expect("delta lock poisoned").op_count();
        drop(epoch);
        if buffered >= core.cfg.policy.ops_trigger {
            core.compact_with(CompactionMode::Auto);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot: the reader-side merged view
// ---------------------------------------------------------------------

/// A frozen, consistent view of a [`SpatialServer`]: one epoch's base index
/// plus the delta overlay as of the moment the snapshot was taken.
///
/// Queries merge the two sides: base results whose key was deleted are
/// masked out, live inserted points are unioned in, and every delta entry
/// examined is charged to the caller's [`QueryContext`] as a scanned
/// candidate, so per-query statistics stay exact.  [`seq`](Self::seq) names
/// the exact prefix of the write stream this view observes — the handle a
/// replay oracle verifies concurrent runs against.
pub struct Snapshot {
    epoch: Arc<Epoch>,
    delta: Arc<DeltaState>,
}

impl Snapshot {
    /// Last write sequence number this view observes (0 = none).
    pub fn seq(&self) -> u64 {
        self.delta.seq()
    }

    /// The epoch this view reads from.
    pub fn epoch_id(&self) -> u64 {
        self.epoch.id
    }

    /// Live points in this view.
    pub fn len(&self) -> usize {
        self.epoch.base.len() - self.delta.masked_base() + self.delta.live_inserts()
    }

    /// Whether the view holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display name of the underlying base index family.
    pub fn base_name(&self) -> &'static str {
        self.epoch.base.name()
    }

    /// Looks up a live point with exactly the query's coordinates.
    ///
    /// Matches `Vec` semantics: a live base copy wins over inserted copies,
    /// and among inserted copies the earliest still-live insert wins.
    pub fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        if self.delta.is_empty() {
            return self.epoch.base.point_query(q, cx);
        }
        let (delta_hit, examined) = self.delta.point_lookup(q);
        cx.count_candidates(examined);
        let base_hit = match self.epoch.base.point_query(q, cx) {
            Some(p) if !self.delta.masks(&p) => Some(p),
            Some(_) => {
                // The base's answer at this location is deleted.  Another
                // base copy can only exist if the data had duplicate
                // locations under different ids; recover it with an
                // exhaustive degenerate-window probe, resolving ties by the
                // copies' canonical (`Vec`) positions so the answer matches
                // a plain scan's first match.
                let mut alt: Option<(u32, Point)> = None;
                self.epoch
                    .base
                    .window_query_visit(&Rect::from_point(*q), cx, &mut |p| {
                        if self.delta.masks(p) {
                            return;
                        }
                        let pos = self
                            .epoch
                            .base_keys
                            .get(&key_of(p))
                            .map_or(u32::MAX, |i| i.first_pos);
                        if alt.is_none_or(|(best, _)| pos < best) {
                            alt = Some((pos, *p));
                        }
                    });
                alt.map(|(_, p)| p)
            }
            None => None,
        };
        base_hit.or(delta_hit)
    }

    /// Calls `visit` for every live point inside `window`: unmasked base
    /// results first, then live inserted copies.
    pub fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if self.delta.is_empty() {
            self.epoch.base.window_query_visit(window, cx, visit);
            return;
        }
        self.epoch.base.window_query_visit(window, cx, &mut |p| {
            if !self.delta.masks(p) {
                visit(p);
            }
        });
        let examined = self.delta.visit_inserts_in(window, visit);
        cx.count_candidates(examined);
    }

    /// Returns the live points inside `window` as a fresh vector.
    pub fn window_query(&self, window: &Rect, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::new();
        self.window_query_visit(window, cx, &mut |p| out.push(*p));
        out
    }

    /// Calls `visit` for (up to) the `k` live nearest neighbours of `q`,
    /// closest first, ties broken by id — the same deterministic order as
    /// [`common::brute_force::knn_query`].
    pub fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if self.delta.is_empty() {
            self.epoch.base.knn_query_visit(q, k, cx, visit);
            return;
        }
        if k == 0 {
            return;
        }
        // Ask the base for enough extra neighbours to survive masking: at
        // most `masked_base` of its answers can be deleted.
        let k_base = k.saturating_add(self.delta.masked_base());
        let mut best: Vec<(f64, Point)> = Vec::with_capacity(k + 1);
        let mut push = |p: &Point| {
            let d = p.dist_sq(q);
            if best.len() >= k {
                let (wd, wp) = best[k - 1];
                if (d, p.id) >= (wd, wp.id) {
                    return;
                }
            }
            let pos = best
                .binary_search_by(|(bd, bp)| {
                    bd.partial_cmp(&d)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(bp.id.cmp(&p.id))
                })
                .unwrap_or_else(|e| e);
            best.insert(pos, (d, *p));
            best.truncate(k);
        };
        self.epoch.base.knn_query_visit(q, k_base, cx, &mut |p| {
            if !self.delta.masks(p) {
                push(p);
            }
        });
        let examined = self.delta.visit_inserts(&mut push);
        cx.count_candidates(examined);
        for (_, p) in &best {
            visit(p);
        }
    }

    /// Returns (up to) the `k` live nearest neighbours of `q` as a fresh
    /// vector, closest first.
    pub fn knn_query(&self, q: &Point, k: usize, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::with_capacity(k);
        self.knn_query_visit(q, k, cx, &mut |p| out.push(*p));
        out
    }

    /// Calls `visit` for every live point within `radius` of `center`:
    /// unmasked base results first, then live inserted copies.  Exact for
    /// every base family (distance-range queries are exact throughout the
    /// repository), so a live-served index answers exactly too.
    pub fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if self.delta.is_empty() {
            self.epoch.base.range_query_visit(center, radius, cx, visit);
            return;
        }
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        self.epoch
            .base
            .range_query_visit(center, radius, cx, &mut |p| {
                if !self.delta.masks(p) {
                    visit(p);
                }
            });
        let examined = self
            .delta
            .visit_inserts_within(center, radius * radius, visit);
        cx.count_candidates(examined);
    }

    /// Returns the live points within `radius` of `center` as a fresh
    /// vector.
    pub fn range_query(&self, center: &Point, radius: f64, cx: &mut QueryContext) -> Vec<Point> {
        let mut out = Vec::new();
        self.range_query_visit(center, radius, cx, &mut |p| out.push(*p));
        out
    }

    /// The join worker against this view: every live `(p, q)` pair with `p`
    /// in the view and `q ∈ probes` within `radius`.  Base pairs whose left
    /// side was deleted are masked out; live inserted copies pair directly
    /// against the probe set (each examined entry charged as a candidate) —
    /// the delta-overlay merge that keeps live-served joins exact.
    pub fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        if self.delta.is_empty() {
            self.epoch
                .base
                .distance_join_probes(probes, radius, cx, visit);
            return;
        }
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        self.epoch
            .base
            .distance_join_probes(probes, radius, cx, &mut |p, q| {
                if !self.delta.masks(p) {
                    visit(p, q);
                }
            });
        let examined = self.delta.visit_inserts(&mut |p| {
            for q in probes {
                if p.dist_sq(q) <= r_sq {
                    visit(p, q);
                }
            }
        });
        cx.count_candidates(examined);
    }

    /// Visits every live point exactly once: unmasked base points, then
    /// live inserted copies (uncharged, like any index enumeration).
    pub fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        if self.delta.is_empty() {
            self.epoch.base.for_each_point(visit);
            return;
        }
        self.epoch.base.for_each_point(&mut |p| {
            if !self.delta.masks(p) {
                visit(p);
            }
        });
        self.delta.visit_inserts(visit);
    }

    // -----------------------------------------------------------------
    // Micro-batch entry points.  The [`SpatialIndex`] batch defaults take
    // one snapshot *per query*; these run a whole batch against this one
    // pinned view, so every answer in the batch observes the same write
    // prefix ([`Snapshot::seq`]) — which is what a network worker that
    // coalesces concurrently-arriving requests needs to report a single
    // sequence number per batch.
    // -----------------------------------------------------------------

    /// Answers every point query against this one view.
    pub fn point_queries(&self, qs: &[Point], cx: &mut QueryContext) -> Vec<Option<Point>> {
        qs.iter().map(|q| self.point_query(q, cx)).collect()
    }

    /// Answers every window query against this one view.
    pub fn window_queries(&self, windows: &[Rect], cx: &mut QueryContext) -> Vec<Vec<Point>> {
        windows.iter().map(|w| self.window_query(w, cx)).collect()
    }

    /// Answers every kNN query (same `k`) against this one view.
    pub fn knn_queries(&self, qs: &[Point], k: usize, cx: &mut QueryContext) -> Vec<Vec<Point>> {
        qs.iter().map(|q| self.knn_query(q, k, cx)).collect()
    }

    /// Answers every distance-range query (same `radius`) against this one
    /// view.
    pub fn range_queries(
        &self,
        centers: &[Point],
        radius: f64,
        cx: &mut QueryContext,
    ) -> Vec<Vec<Point>> {
        centers
            .iter()
            .map(|c| self.range_query(c, radius, cx))
            .collect()
    }
}

// ---------------------------------------------------------------------
// The server is itself a SpatialIndex
// ---------------------------------------------------------------------

impl SpatialIndex for SpatialServer {
    fn name(&self) -> &'static str {
        self.snapshot().base_name()
    }

    fn len(&self) -> usize {
        SpatialServer::len(self)
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        self.snapshot().point_query(q, cx)
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        self.snapshot().window_query_visit(window, cx, visit)
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        self.snapshot().knn_query_visit(q, k, cx, visit)
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        self.snapshot().range_query_visit(center, radius, cx, visit)
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        self.snapshot().for_each_point(visit)
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        // One snapshot answers the whole join, so the pair set reflects a
        // single consistent write prefix even while writers keep appending.
        self.snapshot()
            .distance_join_probes(probes, radius, cx, visit)
    }

    fn insert(&mut self, p: Point) {
        SpatialServer::insert(self, p);
    }

    fn delete(&mut self, p: &Point) -> bool {
        SpatialServer::delete(self, p).0
    }

    fn rebuild(&mut self) {
        self.compact_now();
    }

    fn size_bytes(&self) -> usize {
        let snap = self.snapshot();
        snap.epoch.base.size_bytes() + snap.delta.size_bytes()
    }

    fn height(&self) -> usize {
        self.snapshot().epoch.base.height()
    }

    fn model_count(&self) -> usize {
        self.snapshot().epoch.base.model_count()
    }

    fn model_error_bounds(&self) -> Option<(u64, u64)> {
        self.snapshot().epoch.base.model_error_bounds()
    }

    fn write_snapshot(
        &self,
        writer: &mut persist::SnapshotWriter,
    ) -> Result<(), persist::PersistError> {
        // Fold pending writes first so the persisted base is complete.  A
        // concurrent writer can still append after the fold; quiesce writers
        // for an exact capture.
        self.compact_now();
        self.snapshot().epoch.base.write_snapshot(writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force::{self, ScanIndex};
    use datagen::{generate, Distribution};

    fn scan_rebuild() -> RebuildFn {
        Box::new(|pts| Box::new(ScanIndex::new(pts.to_vec())))
    }

    fn manual_cfg() -> ServerConfig {
        ServerConfig::default().with_auto_compact(false)
    }

    fn serve(n: usize, seed: u64) -> (Vec<Point>, SpatialServer) {
        let data = generate(Distribution::skewed_default(), n, seed);
        let server = SpatialServer::new(data.clone(), scan_rebuild(), manual_cfg());
        (data, server)
    }

    #[test]
    fn fresh_server_answers_like_its_base() {
        let (data, server) = serve(500, 3);
        let mut cx = QueryContext::new();
        assert_eq!(server.len(), 500);
        assert_eq!(server.stats().epoch, 0);
        assert_eq!(server.stats().seq, 0);
        for p in data.iter().step_by(41) {
            assert_eq!(server.point_query(p, &mut cx).map(|f| f.id), Some(p.id));
        }
        let w = Rect::new(0.2, 0.2, 0.6, 0.6);
        let mut got: Vec<u64> = server
            .window_query(&w, &mut cx)
            .iter()
            .map(|p| p.id)
            .collect();
        let mut truth: Vec<u64> = brute_force::window_query(&data, &w)
            .iter()
            .map(|p| p.id)
            .collect();
        got.sort_unstable();
        truth.sort_unstable();
        assert_eq!(got, truth);
    }

    #[test]
    fn inserts_and_deletes_are_sequenced_and_visible() {
        let (data, server) = serve(300, 5);
        let mut cx = QueryContext::new();
        let extra = Point::with_id(0.123, 0.456, 90_000);
        assert_eq!(server.insert(extra), 1);
        assert_eq!(
            server.point_query(&extra, &mut cx).map(|p| p.id),
            Some(extra.id)
        );
        assert_eq!(server.len(), 301);

        let victim = data[7];
        let (removed, seq) = server.delete(&victim);
        assert!(removed);
        assert_eq!(seq, 2);
        assert!(server.point_query(&victim, &mut cx).is_none());
        assert_eq!(server.len(), 300);

        // Deleting again removes nothing but still advances the sequence.
        let (removed, seq) = server.delete(&victim);
        assert!(!removed);
        assert_eq!(seq, 3);
    }

    #[test]
    fn deleted_points_are_masked_from_window_and_knn() {
        let (data, server) = serve(400, 7);
        let mut cx = QueryContext::new();
        let victim = data[11];
        server.delete(&victim);
        let w = Rect::centered(
            victim.x.clamp(0.05, 0.95),
            victim.y.clamp(0.05, 0.95),
            0.1,
            0.1,
        );
        assert!(
            !server
                .window_query(&w, &mut cx)
                .iter()
                .any(|p| p.id == victim.id),
            "deleted point leaked into a window result"
        );
        let nn = server.knn_query(&victim, 10, &mut cx);
        assert!(!nn.iter().any(|p| p.id == victim.id));
        assert_eq!(nn.len(), 10);
    }

    #[test]
    fn merged_answers_match_the_vec_oracle_through_a_compaction() {
        let (data, server) = serve(600, 11);
        let mut oracle = data.clone();
        let mut cx = QueryContext::new();

        // A burst of interleaved writes.
        for i in 0..40u64 {
            let p = Point::with_id(
                (0.05 + 0.021 * i as f64) % 1.0,
                (0.93 - 0.017 * i as f64).abs() % 1.0,
                10_000 + i,
            );
            server.insert(p);
            oracle.push(p);
            if i % 3 == 0 {
                let victim = oracle[(i as usize * 13) % oracle.len()];
                let (removed, _) = server.delete(&victim);
                assert!(removed);
                oracle.retain(|x| !(x.same_location(&victim) && x.id == victim.id));
            }
        }
        let check = |server: &SpatialServer, oracle: &[Point], cx: &mut QueryContext| {
            assert_eq!(server.len(), oracle.len());
            for q in oracle.iter().step_by(29) {
                assert_eq!(server.point_query(q, cx).map(|p| p.id), Some(q.id));
            }
            let w = Rect::new(0.0, 0.5, 0.5, 1.0);
            let mut got: Vec<u64> = server.window_query(&w, cx).iter().map(|p| p.id).collect();
            let mut truth: Vec<u64> = brute_force::window_query(oracle, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            got.sort_unstable();
            truth.sort_unstable();
            assert_eq!(got, truth);
            let q = Point::new(0.31, 0.64);
            assert_eq!(
                server
                    .knn_query(&q, 15, cx)
                    .iter()
                    .map(|p| p.id)
                    .collect::<Vec<_>>(),
                brute_force::knn_query(oracle, &q, 15)
                    .iter()
                    .map(|p| p.id)
                    .collect::<Vec<_>>()
            );
        };
        check(&server, &oracle, &mut cx);

        // Fold the delta into a fresh base; answers must not change.
        let seq_before = server.stats().seq;
        assert!(server.compact_now());
        assert_eq!(server.stats().epoch, 1);
        assert_eq!(server.stats().delta_ops, 0);
        assert_eq!(
            server.stats().seq,
            seq_before,
            "compaction must not invent writes"
        );
        check(&server, &oracle, &mut cx);

        // Nothing buffered: a second compaction is a no-op.
        assert!(!server.compact_now());
    }

    #[test]
    fn range_and_join_merge_the_delta_overlay_exactly() {
        let (data, server) = serve(400, 41);
        let mut oracle = data.clone();
        // Interleaved writes: inserts near the centre, deletes of base
        // points, one delete-reinsert.
        for i in 0..30u64 {
            let p = Point::with_id(
                (0.45 + 0.003 * i as f64) % 1.0,
                (0.55 - 0.002 * i as f64).abs() % 1.0,
                20_000 + i,
            );
            server.insert(p);
            oracle.push(p);
            if i % 5 == 0 {
                let victim = oracle[(i as usize * 7) % oracle.len()];
                server.delete(&victim);
                oracle.retain(|x| !(x.same_location(&victim) && x.id == victim.id));
            }
        }
        let probes: Vec<Point> = (0..40)
            .map(|i| Point::with_id(0.4 + 0.005 * i as f64, 0.5, 90_000 + i))
            .collect();
        let check = |server: &SpatialServer, oracle: &[Point], cx: &mut QueryContext| {
            let c = Point::new(0.5, 0.5);
            for r in [0.0, 0.04, 0.3] {
                let mut got: Vec<u64> =
                    server.range_query(&c, r, cx).iter().map(|p| p.id).collect();
                let mut truth: Vec<u64> = brute_force::range_query(oracle, &c, r)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                got.sort_unstable();
                truth.sort_unstable();
                assert_eq!(got, truth, "r = {r}");
            }
            let snap = server.snapshot();
            let mut got: Vec<(u64, u64)> = Vec::new();
            snap.distance_join_probes(&probes, 0.05, cx, &mut |p, q| got.push((p.id, q.id)));
            let mut truth: Vec<(u64, u64)> = brute_force::distance_join(oracle, &probes, 0.05)
                .iter()
                .map(|(p, q)| (p.id, q.id))
                .collect();
            got.sort_unstable();
            truth.sort_unstable();
            assert_eq!(got, truth);
            // Enumeration sees exactly the live set.
            let mut n = 0;
            snap.for_each_point(&mut |_| n += 1);
            assert_eq!(n, oracle.len());
        };
        let mut cx = QueryContext::new();
        check(&server, &oracle, &mut cx);
        // Folding the delta into a fresh base must not change any answer.
        assert!(server.compact_now());
        check(&server, &oracle, &mut cx);
        // The server also joins through the SpatialIndex facade.
        let other = ScanIndex::new(probes.clone());
        let via_trait = SpatialIndex::distance_join(&server, &other, 0.05, &mut cx);
        assert_eq!(
            via_trait.len(),
            brute_force::distance_join(&oracle, &probes, 0.05).len()
        );
    }

    #[test]
    fn snapshots_are_frozen_views() {
        let (data, server) = serve(200, 13);
        let before = server.snapshot();
        let extra = Point::with_id(0.505, 0.505, 77_000);
        server.insert(extra);
        server.delete(&data[0]);
        let after = server.snapshot();

        let mut cx = QueryContext::new();
        // The old view still sees the pre-write world.
        assert_eq!(before.seq(), 0);
        assert_eq!(before.len(), 200);
        assert!(before.point_query(&extra, &mut cx).is_none());
        assert_eq!(
            before.point_query(&data[0], &mut cx).map(|p| p.id),
            Some(data[0].id)
        );
        // The new view sees both writes.
        assert_eq!(after.seq(), 2);
        assert_eq!(after.len(), 200);
        assert_eq!(
            after.point_query(&extra, &mut cx).map(|p| p.id),
            Some(extra.id)
        );
        assert!(after.point_query(&data[0], &mut cx).is_none());
    }

    #[test]
    fn old_epoch_snapshots_survive_a_swap() {
        let (data, server) = serve(200, 17);
        server.delete(&data[3]);
        let old = server.snapshot();
        assert!(server.compact_now());
        let new = server.snapshot();
        assert_eq!(old.epoch_id(), 0);
        assert_eq!(new.epoch_id(), 1);
        let mut cx = QueryContext::new();
        // Both views agree (the old one reads base + delta, the new one a
        // folded base), and both exclude the deleted point.
        assert_eq!(old.len(), new.len());
        assert!(old.point_query(&data[3], &mut cx).is_none());
        assert!(new.point_query(&data[3], &mut cx).is_none());
        assert_eq!(
            old.point_query(&data[8], &mut cx).map(|p| p.id),
            new.point_query(&data[8], &mut cx).map(|p| p.id),
        );
    }

    #[test]
    fn background_compaction_triggers_on_threshold() {
        let data = generate(Distribution::Uniform, 400, 19);
        let server = SpatialServer::new(
            data.clone(),
            scan_rebuild(),
            ServerConfig::default().with_compact_threshold(32),
        );
        for i in 0..200u64 {
            server.insert(Point::with_id(
                (0.11 * i as f64) % 1.0,
                (0.07 * i as f64) % 1.0,
                50_000 + i,
            ));
        }
        // The background thread needs a moment; poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().compactions == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = server.stats();
        assert!(stats.compactions >= 1, "no background compaction ran");
        assert_eq!(stats.len, 600);
        assert_eq!(stats.seq, 200);
        let mut cx = QueryContext::new();
        assert_eq!(
            server.point_query(&data[5], &mut cx).map(|p| p.id),
            Some(data[5].id)
        );
    }

    #[test]
    fn concurrent_readers_and_writer_stay_consistent() {
        let (data, server) = serve(2_000, 23);
        let writes: Vec<Point> = (0..300u64)
            .map(|i| {
                Point::with_id(
                    (0.003 * i as f64 + 0.001) % 1.0,
                    (0.007 * i as f64 + 0.002) % 1.0,
                    100_000 + i,
                )
            })
            .collect();
        std::thread::scope(|scope| {
            let server = &server;
            let data = &data;
            scope.spawn(move || {
                for (i, p) in writes.iter().enumerate() {
                    server.insert(*p);
                    if i % 4 == 0 {
                        server.delete(&data[i]);
                    }
                    if i % 64 == 0 {
                        server.compact_now();
                    }
                }
            });
            for _ in 0..3 {
                scope.spawn(move || {
                    let mut cx = QueryContext::new();
                    for round in 0..200 {
                        let snap = server.snapshot();
                        let frozen_len = snap.len();
                        let q = data[(round * 7) % data.len()];
                        if let Some(hit) = snap.point_query(&q, &mut cx) {
                            assert_eq!(hit.id, q.id);
                        }
                        // A frozen view's length never changes.
                        assert_eq!(snap.len(), frozen_len);
                    }
                });
            }
        });
        assert_eq!(server.stats().seq, 300 + 75);
        assert_eq!(server.len(), 2_000 + 300 - 75);
    }

    #[test]
    fn server_implements_spatial_index() {
        let (data, mut server) = serve(300, 29);
        fn takes_index(ix: &mut dyn SpatialIndex, probe: Point) {
            let mut cx = QueryContext::new();
            assert!(ix.point_query(&probe, &mut cx).is_some());
            let n = ix.len();
            ix.insert(Point::with_id(0.42, 0.42, 123_456));
            assert_eq!(ix.len(), n + 1);
            assert!(ix.delete(&Point::with_id(0.42, 0.42, 123_456)));
            ix.rebuild();
            assert_eq!(ix.len(), n);
            assert!(ix.size_bytes() > 0);
            assert!(ix.height() >= 1);
        }
        takes_index(&mut server, data[0]);
        assert_eq!(common::SpatialIndex::name(&server), "Scan");
        // rebuild() compacted, so the write survived into epoch 1's base.
        assert!(server.stats().epoch >= 1);
    }

    #[test]
    fn masked_duplicate_locations_resolve_in_vec_order() {
        // Same location, distinct ids, in deliberately non-ascending order:
        // point queries must walk the canonical Vec order as copies are
        // deleted, exactly like a plain scan.
        let pts = vec![
            Point::with_id(0.5, 0.5, 30),
            Point::with_id(0.5, 0.5, 20),
            Point::with_id(0.5, 0.5, 10),
        ];
        let server = SpatialServer::new(pts, scan_rebuild(), manual_cfg());
        let mut cx = QueryContext::new();
        let q = Point::new(0.5, 0.5);
        assert_eq!(server.point_query(&q, &mut cx).map(|p| p.id), Some(30));
        server.delete(&Point::with_id(0.5, 0.5, 30));
        assert_eq!(
            server.point_query(&q, &mut cx).map(|p| p.id),
            Some(20),
            "next Vec-order match, not the minimum id"
        );
        server.delete(&Point::with_id(0.5, 0.5, 20));
        assert_eq!(server.point_query(&q, &mut cx).map(|p| p.id), Some(10));
        server.delete(&Point::with_id(0.5, 0.5, 10));
        assert!(server.point_query(&q, &mut cx).is_none());
        assert_eq!(server.len(), 0);
    }

    #[test]
    fn duplicate_identical_inserts_survive_compaction_and_delete_fully() {
        let server = SpatialServer::new(Vec::new(), scan_rebuild(), manual_cfg());
        let p = Point::with_id(0.5, 0.5, 1);
        server.insert(p);
        server.insert(p);
        assert_eq!(server.len(), 2);
        // Fold both identical copies into the base, then delete: one delete
        // removes every copy (Vec semantics), and len/queries agree.
        assert!(server.compact_now());
        assert_eq!(server.len(), 2);
        let (removed, _) = server.delete(&p);
        assert!(removed);
        assert_eq!(server.len(), 0);
        let mut cx = QueryContext::new();
        assert!(server.point_query(&p, &mut cx).is_none());
        assert!(server.window_query(&Rect::unit(), &mut cx).is_empty());
        assert!(server.knn_query(&p, 5, &mut cx).is_empty());
        // kNN over-fetch stays correct with other live points around.
        let q = Point::with_id(0.25, 0.25, 9);
        server.insert(q);
        assert_eq!(
            server
                .knn_query(&p, 2, &mut cx)
                .iter()
                .map(|x| x.id)
                .collect::<Vec<_>>(),
            vec![9]
        );
    }

    #[test]
    fn telemetry_traces_compactions_and_write_depth() {
        let (_, server) = serve(200, 31);
        for i in 0..10u64 {
            server.insert(Point::with_id(0.001 * i as f64, 0.5, 40_000 + i));
        }
        let t = server.telemetry();
        let snap = t.metrics.snapshot();
        assert_eq!(snap.gauge("server.delta_ops"), Some(10));
        assert_eq!(snap.gauge("server.seq"), Some(10));
        assert!(server.compact_now());
        let snap = t.metrics.snapshot();
        assert_eq!(snap.gauge("server.delta_ops"), Some(0));
        assert_eq!(snap.gauge("server.epoch"), Some(1));
        let pause = snap.histogram("server.compaction_pause_us").unwrap();
        assert_eq!(pause.count, 1);
        let events = t.journal.snapshot().events;
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(names[0], "server-start");
        assert!(names.contains(&"compaction-start"));
        assert!(names.contains(&"compaction-end"));
        assert!(names.contains(&"epoch-swap"));
        let end = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::CompactionEnd { points, .. } => Some(points),
                _ => None,
            })
            .unwrap();
        assert_eq!(end, 210);
    }

    /// A scan index that opts into the maintenance protocol: one "subtree"
    /// whose drift is the op count since the last (partial) retrain.  Lets
    /// the policy/fallback machinery be tested without a learned index.
    #[derive(Clone)]
    struct MaintScan {
        inner: ScanIndex,
        ops: u64,
    }

    impl MaintScan {
        fn new(points: Vec<Point>) -> Self {
            Self {
                inner: ScanIndex::new(points),
                ops: 0,
            }
        }
    }

    impl SpatialIndex for MaintScan {
        fn name(&self) -> &'static str {
            "MaintScan"
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
            self.inner.point_query(q, cx)
        }
        fn window_query_visit(
            &self,
            window: &Rect,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            self.inner.window_query_visit(window, cx, visit)
        }
        fn knn_query_visit(
            &self,
            q: &Point,
            k: usize,
            cx: &mut QueryContext,
            visit: &mut dyn FnMut(&Point),
        ) {
            self.inner.knn_query_visit(q, k, cx, visit)
        }
        fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
            self.inner.for_each_point(visit)
        }
        fn insert(&mut self, p: Point) {
            self.ops += 1;
            self.inner.insert(p);
        }
        fn delete(&mut self, p: &Point) -> bool {
            let removed = self.inner.delete(p);
            if removed {
                self.ops += 1;
            }
            removed
        }
        fn size_bytes(&self) -> usize {
            self.inner.size_bytes()
        }
        fn height(&self) -> usize {
            self.inner.height()
        }
        fn maintenance_stats(&self) -> Option<common::MaintenanceStats> {
            Some(common::MaintenanceStats {
                ops_since_train: self.ops,
                widened_below: 0,
                widened_above: 0,
                stale_subtrees: usize::from(self.ops > 0),
                subtrees: 1,
            })
        }
        fn rebuild_partial(&mut self, budget: &MaintenanceBudget) -> common::MaintenanceOutcome {
            let stale = self.ops > 0;
            let retrain = stale && budget.max_subtrees >= 1;
            if retrain {
                self.ops = 0;
            }
            common::MaintenanceOutcome {
                full_rebuild: false,
                subtrees_rebuilt: usize::from(retrain),
                subtrees_deferred: usize::from(stale && !retrain),
            }
        }
        fn clone_index(&self) -> Option<Box<dyn SpatialIndex>> {
            Some(Box::new(self.clone()))
        }
    }

    fn maint_rebuild() -> RebuildFn {
        Box::new(|pts| Box::new(MaintScan::new(pts.to_vec())))
    }

    #[test]
    fn policy_driven_compaction_runs_partial_passes() {
        let data = generate(Distribution::skewed_default(), 400, 37);
        let mut oracle = data.clone();
        let server = SpatialServer::new(data, maint_rebuild(), manual_cfg());
        for i in 0..50u64 {
            let p = Point::with_id(0.001 * i as f64, 0.77, 60_000 + i);
            server.insert(p);
            oracle.push(p);
        }
        assert!(server.maintain_now());
        let stats = server.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.partial_compactions, 1);
        assert_eq!(stats.subtree_rebuilds, 1);
        assert_eq!(stats.delta_ops, 0);
        assert_eq!(stats.len, oracle.len());
        // The merged view still matches the oracle after the partial swap.
        let mut cx = QueryContext::new();
        for q in oracle.iter().step_by(37) {
            assert_eq!(server.point_query(q, &mut cx).map(|p| p.id), Some(q.id));
        }
        // Journal and metrics say "partial", not "full".
        let t = server.telemetry();
        let names: Vec<&str> = t
            .journal
            .snapshot()
            .events
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert!(names.contains(&"partial-compaction-end"));
        assert!(!names.contains(&"compaction-end"));
        let m = t.metrics.snapshot();
        assert_eq!(m.counter("server.compactions_partial"), Some(1));
        assert_eq!(m.counter("server.compactions_full"), Some(0));
        assert_eq!(m.counter("server.subtree_rebuilds"), Some(1));
        assert_eq!(m.histogram("server.partial_rebuild_us").unwrap().count, 1);
        // Drift gauges were refreshed from the post-pass base.
        assert_eq!(m.gauge("server.maint_ops_since_train"), Some(0));
        assert_eq!(m.gauge("server.maint_stale_subtrees"), Some(0));
    }

    #[test]
    fn wildcard_deletes_force_a_full_pass() {
        // `SpatialIndex::delete` treats id 0 as "match any id", which a
        // clone replay cannot reconcile with the Vec fold's exact-id
        // semantics — the pass must fall back to a full rebuild.
        let server = SpatialServer::new(Vec::new(), maint_rebuild(), manual_cfg());
        server.insert(Point::with_id(0.3, 0.3, 7));
        server.insert(Point::with_id(0.6, 0.6, 8));
        server.delete(&Point::with_id(0.3, 0.3, 0));
        assert!(server.maintain_now());
        let stats = server.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.partial_compactions, 0, "wildcard delete went partial");
        assert_eq!(server.len(), 2, "exact-id fold must keep both points");
    }

    #[test]
    fn policy_full_every_and_incremental_off_force_full_rebuilds() {
        let cfg = ServerConfig::default()
            .with_auto_compact(false)
            .with_policy(CompactionPolicy::default().with_full_every(2));
        let server = SpatialServer::new(Vec::new(), maint_rebuild(), cfg);
        for round in 0..4u64 {
            server.insert(Point::with_id(0.1 * round as f64, 0.2, round));
            assert!(server.maintain_now());
        }
        let stats = server.stats();
        assert_eq!(stats.compactions, 4);
        // Rounds 2 and 4 were forced full; rounds 1 and 3 ran partial.
        assert_eq!(stats.partial_compactions, 2);

        let cfg = ServerConfig::default()
            .with_auto_compact(false)
            .with_policy(CompactionPolicy::default().with_incremental(false));
        let server = SpatialServer::new(Vec::new(), maint_rebuild(), cfg);
        server.insert(Point::with_id(0.5, 0.5, 1));
        assert!(server.maintain_now());
        assert_eq!(server.stats().partial_compactions, 0);
    }

    #[test]
    fn maintain_now_falls_back_to_full_for_plain_bases() {
        // ScanIndex reports no maintenance state, so Auto resolves to Full.
        let (_, server) = serve(100, 43);
        server.insert(Point::with_id(0.9, 0.9, 50_000));
        assert!(server.maintain_now());
        let stats = server.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.partial_compactions, 0);
    }

    #[test]
    fn delta_only_delete_does_not_resurrect_after_partial_compaction() {
        // Regression: a point that lived only in the delta overlay (insert
        // + delete both buffered, never folded) must stay dead through a
        // *partial* pass, which replays the log into a clone instead of
        // rebuilding from the canonical fold.
        let data = generate(Distribution::Uniform, 200, 47);
        let server = SpatialServer::new(data.clone(), maint_rebuild(), manual_cfg());
        let ghost = Point::with_id(0.123, 0.987, 70_001);
        server.insert(ghost);
        let (removed, _) = server.delete(&ghost);
        assert!(removed);
        // Duplicate copies of one key must also die together (Vec fold
        // deletes every matching copy; the replay must loop `delete`).
        let twin = Point::with_id(0.222, 0.333, 70_002);
        server.insert(twin);
        server.insert(twin);
        let (removed, _) = server.delete(&twin);
        assert!(removed);
        assert!(server.maintain_now());
        assert_eq!(server.stats().partial_compactions, 1);
        let mut cx = QueryContext::new();
        assert!(server.point_query(&ghost, &mut cx).is_none());
        assert!(server.point_query(&twin, &mut cx).is_none());
        assert_eq!(server.len(), 200);
        // And the same holds for every query class via the merged view.
        let w = Rect::from_point(ghost);
        assert!(server.window_query(&w, &mut cx).is_empty());
        assert!(!server
            .knn_query(&twin, 5, &mut cx)
            .iter()
            .any(|p| p.id == twin.id));
    }

    #[test]
    fn empty_server_answers_gracefully() {
        let server = SpatialServer::new(Vec::new(), scan_rebuild(), manual_cfg());
        let mut cx = QueryContext::new();
        assert!(server.is_empty());
        assert!(server.point_query(&Point::new(0.5, 0.5), &mut cx).is_none());
        assert!(server.window_query(&Rect::unit(), &mut cx).is_empty());
        assert!(server
            .knn_query(&Point::new(0.5, 0.5), 5, &mut cx)
            .is_empty());
        // Writes onto an empty base work too.
        server.insert(Point::with_id(0.5, 0.5, 1));
        assert_eq!(server.len(), 1);
        assert!(server.compact_now());
        assert_eq!(server.len(), 1);
    }
}
