//! Property-style tests for the geometry primitives, driven by a seeded
//! pseudo-random sampler (the environment has no `proptest`; see
//! `vendor/README.md`).

use geom::{bounding_rect, normalize, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen::<f64>(), rng.gen::<f64>())
}

fn rand_rect(rng: &mut StdRng) -> Rect {
    let a = rand_point(rng);
    let b = rand_point(rng);
    Rect::new(a.x, a.y, b.x, b.y)
}

#[test]
fn union_contains_both() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let a = rand_rect(&mut rng);
        let b = rand_rect(&mut rng);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
    }
}

#[test]
fn intersection_is_contained_in_both() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let a = rand_rect(&mut rng);
        let b = rand_rect(&mut rng);
        if let Some(i) = a.intersection(&b) {
            assert!(a.contains_rect(&i));
            assert!(b.contains_rect(&i));
            assert!((i.area() - a.intersection_area(&b)).abs() < 1e-9);
        } else {
            assert!(a.intersection_area(&b) == 0.0);
        }
    }
}

#[test]
fn min_dist_lower_bounds_distance_to_contained_points() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let r = rand_rect(&mut rng);
        let p = rand_point(&mut rng);
        let q = rand_point(&mut rng);
        // For any point q inside r, dist(p, q) >= min_dist(p, r).
        let clamped = r.clamp_point(&q);
        assert!(r.contains(&clamped));
        assert!(p.dist(&clamped) + 1e-9 >= r.min_dist(&p));
    }
}

#[test]
fn min_dist_zero_iff_contained() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..CASES {
        let r = rand_rect(&mut rng);
        let p = rand_point(&mut rng);
        if r.contains(&p) {
            assert_eq!(r.min_dist(&p), 0.0);
        } else {
            assert!(r.min_dist(&p) > 0.0);
        }
    }
}

#[test]
fn bounding_rect_is_minimal() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..64);
        let points: Vec<Point> = (0..n).map(|_| rand_point(&mut rng)).collect();
        let r = bounding_rect(&points).unwrap();
        for p in &points {
            assert!(r.contains(p));
        }
        // Every edge of the bounding rectangle touches at least one point.
        assert!(points.iter().any(|p| p.x == r.min_x));
        assert!(points.iter().any(|p| p.x == r.max_x));
        assert!(points.iter().any(|p| p.y == r.min_y));
        assert!(points.iter().any(|p| p.y == r.max_y));
    }
}

#[test]
fn enlargement_is_non_negative() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..CASES {
        let a = rand_rect(&mut rng);
        let b = rand_rect(&mut rng);
        assert!(a.enlargement(&b) >= -1e-12);
    }
}

#[test]
fn normalize_stays_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..CASES {
        let v = rng.gen_range(-10.0f64..10.0);
        let lo = rng.gen_range(-5.0f64..0.0);
        let hi = rng.gen_range(0.1f64..5.0);
        let n = normalize(v, lo, hi);
        assert!((0.0..=1.0).contains(&n));
    }
}
