//! Property-based tests for the geometry primitives.

use geom::{bounding_rect, normalize, Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a.x, a.y, b.x, b.y))
}

proptest! {
    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!((i.area() - a.intersection_area(&b)).abs() < 1e-9);
        } else {
            prop_assert!(a.intersection_area(&b) == 0.0);
        }
    }

    #[test]
    fn min_dist_lower_bounds_distance_to_contained_points(
        r in arb_rect(), p in arb_point(), q in arb_point()
    ) {
        // For any point q inside r, dist(p, q) >= min_dist(p, r).
        let clamped = r.clamp_point(&q);
        prop_assert!(r.contains(&clamped));
        prop_assert!(p.dist(&clamped) + 1e-9 >= r.min_dist(&p));
    }

    #[test]
    fn min_dist_zero_iff_contained(r in arb_rect(), p in arb_point()) {
        if r.contains(&p) {
            prop_assert_eq!(r.min_dist(&p), 0.0);
        } else {
            prop_assert!(r.min_dist(&p) > 0.0);
        }
    }

    #[test]
    fn bounding_rect_is_minimal(points in prop::collection::vec(arb_point(), 1..64)) {
        let r = bounding_rect(&points).unwrap();
        for p in &points {
            prop_assert!(r.contains(p));
        }
        // Every edge of the bounding rectangle touches at least one point.
        prop_assert!(points.iter().any(|p| p.x == r.min_x));
        prop_assert!(points.iter().any(|p| p.x == r.max_x));
        prop_assert!(points.iter().any(|p| p.y == r.min_y));
        prop_assert!(points.iter().any(|p| p.y == r.max_y));
    }

    #[test]
    fn enlargement_is_non_negative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= -1e-12);
    }

    #[test]
    fn normalize_stays_in_unit_interval(v in -10.0f64..10.0, lo in -5.0f64..0.0, hi in 0.1f64..5.0) {
        let n = normalize(v, lo, hi);
        prop_assert!((0.0..=1.0).contains(&n));
    }
}
