//! Geometry primitives for the RSMI spatial-index reproduction.
//!
//! The paper ("Effectively Learning Spatial Indices", VLDB 2020) operates on
//! two-dimensional point data in Euclidean space, normalised into the unit
//! square for model training.  This crate provides the small set of geometric
//! types every other crate builds on:
//!
//! * [`Point`] — a 2-D point with an application-level identifier,
//! * [`Rect`] — an axis-aligned rectangle used both as query window and as
//!   minimum bounding rectangle (MBR),
//! * distance helpers ([`Point::dist`], [`Rect::min_dist`]) used by the kNN
//!   algorithms (the `MINDIST` metric of Roussopoulos et al.),
//! * small utilities for normalising data into the unit square.
//!
//! The types are deliberately plain `Copy` structs so that hot query loops
//! never allocate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod point;
mod rect;

pub use point::{cmp_by_x, cmp_by_y, Point, PointId};
pub use rect::Rect;

/// Numeric tolerance used by approximate floating-point comparisons in tests
/// and degenerate-rectangle handling.
pub const EPSILON: f64 = 1e-12;

/// Returns the bounding rectangle of a non-empty slice of points.
///
/// Returns `None` for an empty slice.
///
/// # Examples
/// ```
/// use geom::{bounding_rect, Point};
/// let pts = [Point::new(0.1, 0.2), Point::new(0.9, 0.4)];
/// let r = bounding_rect(&pts).unwrap();
/// assert_eq!(r.min_x, 0.1);
/// assert_eq!(r.max_y, 0.4);
/// ```
pub fn bounding_rect(points: &[Point]) -> Option<Rect> {
    let first = points.first()?;
    let mut rect = Rect::from_point(*first);
    for p in &points[1..] {
        rect.expand_to_point(*p);
    }
    Some(rect)
}

/// Normalises a value `v` from the range `[lo, hi]` into `[0, 1]`.
///
/// Degenerate ranges (`hi <= lo`) map everything to `0.0`, which is the
/// behaviour the model-training code relies on (a constant feature carries no
/// information and should not produce NaNs).
#[inline]
pub fn normalize(v: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= EPSILON {
        0.0
    } else {
        ((v - lo) / span).clamp(0.0, 1.0)
    }
}

/// Inverse of [`normalize`]: maps a value in `[0, 1]` back to `[lo, hi]`.
#[inline]
pub fn denormalize(v: f64, lo: f64, hi: f64) -> f64 {
    lo + v * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_rect_of_empty_slice_is_none() {
        assert!(bounding_rect(&[]).is_none());
    }

    #[test]
    fn bounding_rect_of_single_point_is_degenerate() {
        let r = bounding_rect(&[Point::new(0.3, 0.7)]).unwrap();
        assert_eq!(r.min_x, 0.3);
        assert_eq!(r.max_x, 0.3);
        assert_eq!(r.min_y, 0.7);
        assert_eq!(r.max_y, 0.7);
        assert!(r.contains(&Point::new(0.3, 0.7)));
    }

    #[test]
    fn bounding_rect_covers_all_points() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new(i as f64 / 50.0, (49 - i) as f64 / 50.0))
            .collect();
        let r = bounding_rect(&pts).unwrap();
        for p in &pts {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn normalize_roundtrip() {
        let v = 3.25;
        let n = normalize(v, 1.0, 5.0);
        assert!((denormalize(n, 1.0, 5.0) - v).abs() < 1e-9);
    }

    #[test]
    fn normalize_clamps_out_of_range() {
        assert_eq!(normalize(-1.0, 0.0, 1.0), 0.0);
        assert_eq!(normalize(2.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn normalize_degenerate_range_is_zero() {
        assert_eq!(normalize(5.0, 2.0, 2.0), 0.0);
    }
}
