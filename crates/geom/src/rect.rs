//! Axis-aligned rectangles: query windows and minimum bounding rectangles.

use crate::point::Point;

/// An axis-aligned rectangle `[min_x, max_x] x [min_y, max_y]`.
///
/// Used for window queries (§4.2 of the paper) and as the MBR attached to
/// R-tree nodes and to RSMI sub-models (the RSMIa variant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum x-coordinate (inclusive).
    pub min_x: f64,
    /// Minimum y-coordinate (inclusive).
    pub min_y: f64,
    /// Maximum x-coordinate (inclusive).
    pub max_x: f64,
    /// Maximum y-coordinate (inclusive).
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its two corners; the corners may be given in
    /// any order.
    #[inline]
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Self {
            min_x: x1.min(x2),
            min_y: y1.min(y2),
            max_x: x1.max(x2),
            max_y: y1.max(y2),
        }
    }

    /// The degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Self {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// A rectangle centred at `(cx, cy)` with the given width and height.
    ///
    /// Window-query workloads in the paper are defined by an area (a
    /// percentage of the data space) and an aspect ratio; the generators use
    /// this constructor.
    #[inline]
    pub fn centered(cx: f64, cy: f64, width: f64, height: f64) -> Self {
        Self::new(
            cx - width / 2.0,
            cy - height / 2.0,
            cx + width / 2.0,
            cy + height / 2.0,
        )
    }

    /// The "impossible" rectangle used as the identity element when folding
    /// MBRs: expanding it by any point yields that point's rectangle.
    #[inline]
    pub fn empty() -> Self {
        Self {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// The unit square `[0,1] x [0,1]`, the default data space for synthetic
    /// data sets in the paper.
    #[inline]
    pub fn unit() -> Self {
        Self::new(0.0, 0.0, 1.0, 1.0)
    }

    /// Whether this is the empty rectangle produced by [`Rect::empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Rectangle width (zero for empty rectangles).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Rectangle height (zero for empty rectangles).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (margin), used by the R*-tree split heuristic.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether the rectangle contains the point (boundaries inclusive).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether this rectangle fully contains another.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// Whether two rectangles intersect (boundaries inclusive).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Area of the intersection of two rectangles (zero when disjoint).
    #[inline]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.max_x.min(other.max_x) - self.min_x.max(other.min_x)).max(0.0);
        let h = (self.max_y.min(other.max_y) - self.min_y.max(other.min_y)).max(0.0);
        w * h
    }

    /// The smallest rectangle containing both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the rectangle in place so that it contains `p`.
    #[inline]
    pub fn expand_to_point(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grows the rectangle in place so that it contains `other`.
    #[inline]
    pub fn expand_to_rect(&mut self, other: &Rect) {
        *self = self.union(other);
    }

    /// How much the area would grow if the rectangle were enlarged to contain
    /// `other`.  Used by R-tree `ChooseSubtree`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The `MINDIST` metric of Roussopoulos et al.: the minimum Euclidean
    /// distance from point `p` to any point in the rectangle (zero when the
    /// point lies inside).
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared `MINDIST`; cheaper for comparisons.
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// The four corner points of the rectangle, in the order
    /// (bottom-left, bottom-right, top-left, top-right).
    ///
    /// The window-query algorithm for Hilbert-ordered data uses all four
    /// corners as the heuristic anchor points (§4.2).
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.min_x, self.max_y),
            Point::new(self.max_x, self.max_y),
        ]
    }

    /// Intersection of two rectangles, or `None` when they are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// Clamps a point to lie within this rectangle.
    #[inline]
    pub fn clamp_point(&self, p: &Point) -> Point {
        Point::with_id(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
            p.id,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_corners() {
        let r = Rect::new(0.9, 0.8, 0.1, 0.2);
        assert_eq!(r.min_x, 0.1);
        assert_eq!(r.min_y, 0.2);
        assert_eq!(r.max_x, 0.9);
        assert_eq!(r.max_y, 0.8);
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(1.0001, 0.5)));
    }

    #[test]
    fn intersects_detects_overlap_and_touch() {
        let a = Rect::new(0.0, 0.0, 0.5, 0.5);
        let b = Rect::new(0.4, 0.4, 0.9, 0.9);
        let c = Rect::new(0.5, 0.5, 0.9, 0.9); // touches at a corner
        let d = Rect::new(0.6, 0.6, 0.9, 0.9);
        assert!(a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn empty_rect_never_intersects() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert!(!e.intersects(&Rect::unit()));
        assert!(!Rect::unit().intersects(&e));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let r = Rect::new(0.1, 0.2, 0.3, 0.4);
        assert_eq!(r.union(&Rect::empty()), r);
        assert_eq!(Rect::empty().union(&r), r);
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 0.2, 0.2);
        let b = Rect::new(0.5, 0.6, 0.9, 0.7);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u.area(), 0.9 * 0.7);
    }

    #[test]
    fn min_dist_is_zero_inside_and_positive_outside() {
        let r = Rect::new(0.2, 0.2, 0.6, 0.6);
        assert_eq!(r.min_dist(&Point::new(0.3, 0.5)), 0.0);
        // Directly to the right: distance is horizontal only.
        assert!((r.min_dist(&Point::new(0.8, 0.4)) - 0.2).abs() < 1e-12);
        // Diagonal from the corner.
        let d = r.min_dist(&Point::new(0.9, 0.9));
        assert!((d - (0.3f64 * 0.3 + 0.3 * 0.3).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn enlargement_is_zero_for_contained_rect() {
        let big = Rect::new(0.0, 0.0, 1.0, 1.0);
        let small = Rect::new(0.2, 0.2, 0.4, 0.4);
        assert_eq!(big.enlargement(&small), 0.0);
        assert!(small.enlargement(&big) > 0.0);
    }

    #[test]
    fn intersection_area_matches_intersection_rect() {
        let a = Rect::new(0.0, 0.0, 0.5, 0.5);
        let b = Rect::new(0.25, 0.25, 0.75, 0.75);
        let inter = a.intersection(&b).unwrap();
        assert!((a.intersection_area(&b) - inter.area()).abs() < 1e-12);
        assert!((inter.area() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn centered_window_has_requested_dimensions() {
        let w = Rect::centered(0.5, 0.5, 0.2, 0.1);
        assert!((w.width() - 0.2).abs() < 1e-12);
        assert!((w.height() - 0.1).abs() < 1e-12);
        assert_eq!(w.center(), Point::new(0.5, 0.5));
    }

    #[test]
    fn corners_are_all_contained() {
        let r = Rect::new(0.1, 0.2, 0.8, 0.9);
        for c in r.corners() {
            assert!(r.contains(&c));
        }
    }

    #[test]
    fn clamp_point_projects_outside_points_onto_boundary() {
        let r = Rect::new(0.2, 0.2, 0.6, 0.6);
        let p = r.clamp_point(&Point::new(0.9, 0.1));
        assert_eq!(p.x, 0.6);
        assert_eq!(p.y, 0.2);
        assert!(r.contains(&p));
    }

    #[test]
    fn margin_is_half_perimeter() {
        let r = Rect::new(0.0, 0.0, 0.3, 0.4);
        assert!((r.margin() - 0.7).abs() < 1e-12);
    }
}
