//! 2-D points with identifiers.

/// Identifier type carried by every data point.
///
/// In the paper a point query returns "a pointer to the point indexed in the
/// RSMI structure"; here the identifier plays that role so that callers can
/// map results back to their own records.
pub type PointId = u64;

/// A two-dimensional point.
///
/// Coordinates are `f64` in the original data space.  The paper normalises
/// coordinates into the unit square before training, which is handled by the
/// model layers, not by this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// x-coordinate in the original space.
    pub x: f64,
    /// y-coordinate in the original space.
    pub y: f64,
    /// Application-level identifier of the point.
    pub id: PointId,
}

impl Point {
    /// Creates a point with identifier `0`.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y, id: 0 }
    }

    /// Creates a point with an explicit identifier.
    #[inline]
    pub fn with_id(x: f64, y: f64, id: PointId) -> Self {
        Self { x, y, id }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Prefer this in comparisons on hot paths; it avoids the square root.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Returns `true` when both coordinates are identical bit-for-bit after
    /// the usual float comparison (used to detect duplicates; the paper
    /// assumes no two points share both coordinates).
    #[inline]
    pub fn same_location(&self, other: &Point) -> bool {
        self.x == other.x && self.y == other.y
    }
}

impl Default for Point {
    fn default() -> Self {
        Self::new(0.0, 0.0)
    }
}

/// Ordering helper used by the rank-space transform: sort by x, break ties by
/// y (and finally by id for full determinism on duplicate locations).
pub fn cmp_by_x(a: &Point, b: &Point) -> std::cmp::Ordering {
    a.x.partial_cmp(&b.x)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
        .then(a.id.cmp(&b.id))
}

/// Ordering helper used by the rank-space transform: sort by y, break ties by
/// x (and finally by id).
pub fn cmp_by_y(a: &Point, b: &Point) -> std::cmp::Ordering {
    a.y.partial_cmp(&b.y)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal))
        .then(a.id.cmp(&b.id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.4, 0.6);
        assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-15);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cmp_by_x_breaks_ties_with_y() {
        let a = Point::with_id(0.5, 0.1, 1);
        let b = Point::with_id(0.5, 0.9, 2);
        assert_eq!(cmp_by_x(&a, &b), std::cmp::Ordering::Less);
        assert_eq!(cmp_by_x(&b, &a), std::cmp::Ordering::Greater);
    }

    #[test]
    fn cmp_by_y_breaks_ties_with_x() {
        let a = Point::with_id(0.1, 0.5, 1);
        let b = Point::with_id(0.9, 0.5, 2);
        assert_eq!(cmp_by_y(&a, &b), std::cmp::Ordering::Less);
    }

    #[test]
    fn cmp_is_deterministic_for_identical_locations() {
        let a = Point::with_id(0.5, 0.5, 1);
        let b = Point::with_id(0.5, 0.5, 2);
        assert_eq!(cmp_by_x(&a, &b), std::cmp::Ordering::Less);
        assert_eq!(cmp_by_y(&a, &b), std::cmp::Ordering::Less);
    }

    #[test]
    fn same_location_ignores_id() {
        let a = Point::with_id(0.5, 0.5, 1);
        let b = Point::with_id(0.5, 0.5, 99);
        assert!(a.same_location(&b));
        assert!(!a.same_location(&Point::new(0.5, 0.50001)));
    }
}
