//! Named atomic counters/gauges and fixed-bucket log-scale histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of histogram buckets.  Values 0–7 get exact buckets; every
/// larger value lands in one of 8 linear sub-buckets per power-of-two
/// octave (3 significant bits), so the relative quantisation error is at
/// most 12.5 % across the full `u64` range — plenty for tail-latency
/// telemetry, small enough that a histogram is 4 KiB of atomics.
pub const HIST_BUCKETS: usize = 496;

/// Bits of sub-bucket resolution within one octave.
const SUB_BITS: u32 = 3;

/// Maps a recorded value to its bucket index (0-based, `< HIST_BUCKETS`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    (group << SUB_BITS) | sub
}

/// The largest value mapping to bucket `idx` — the conservative
/// (upper-edge) representative percentile extraction reports.
#[inline]
pub fn bucket_upper_bound(idx: usize) -> u64 {
    debug_assert!(idx < HIST_BUCKETS);
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let group = (idx >> SUB_BITS) as u32;
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    let msb = group + SUB_BITS - 1;
    let shift = msb - SUB_BITS;
    let lower = (1u64 << msb) | (sub << shift);
    lower + ((1u64 << shift) - 1)
}

/// Shared histogram state: per-bucket counts plus count/sum/min/max, all
/// plain atomics so recording never takes a lock.
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u16, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A monotone counter handle; cloning shares the underlying atomic.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down); cloning shares the
/// underlying atomic.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `d` (negative to decrease).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency-histogram handle; cloning shares the underlying buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation (any unit; the serving stack records
    /// microseconds for latencies and plain counts for depths).
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// The registry of named metrics.  Handles are registered once (short
/// write lock) and then recorded through without any lock; looking up an
/// already-registered name takes only a read lock.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCore>>>,
}

fn get_or_insert<T, F: FnOnce() -> T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: F,
) -> Arc<T> {
    if let Some(v) = map.read().expect("metrics lock poisoned").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("metrics lock poisoned");
    Arc::clone(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(get_or_insert(&self.counters, name, || AtomicU64::new(0)))
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(get_or_insert(&self.gauges, name, || AtomicI64::new(0)))
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(get_or_insert(&self.histograms, name, HistogramCore::new))
    }

    /// A point-in-time snapshot of every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of one histogram: total count/sum, observed
/// min/max, and the non-empty buckets as `(bucket index, count)` pairs
/// sorted by index (the sparse form keeps wire snapshots small).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile (same convention as the load generator's
    /// `netload::percentile`): the value at rank `ceil(q/100 * count)`,
    /// reported as the containing bucket's upper edge clamped to the
    /// observed max — conservative for tail latencies.  0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum = cum.saturating_add(n);
            if cum >= rank {
                return bucket_upper_bound(idx as usize).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another snapshot into this one (bucket-wise addition) — how
    /// per-shard or per-process histograms aggregate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.sum += other.sum;
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        let mut merged: BTreeMap<u16, u64> = self.buckets.iter().copied().collect();
        for &(idx, n) in &other.buckets {
            *merged.entry(idx).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`], name-sorted; the
/// payload the wire `STATS` response carries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values: Vec<u64> = (0..=1024).collect();
        for shift in 10u32..64 {
            for off in [0u64, 1, 3, 7] {
                values.push((1u64 << shift).saturating_add(off << (shift - 4)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < HIST_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "v={v}: index went backwards");
            last = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn every_value_is_at_most_its_bucket_upper_bound() {
        for v in [0u64, 1, 7, 8, 9, 100, 1000, 123_456, u64::MAX / 3, u64::MAX] {
            let idx = bucket_index(v);
            let upper = bucket_upper_bound(idx);
            assert!(v <= upper, "v={v} > upper={upper}");
            // The quantisation error of the upper edge is bounded by 12.5 %.
            if v >= 8 {
                assert!(
                    (upper - v) as f64 <= v as f64 * 0.125 + 1.0,
                    "v={v} upper={upper}"
                );
            }
        }
        // Upper bounds are the last value of each bucket: the next value
        // maps to the next bucket.
        for idx in 0..HIST_BUCKETS - 1 {
            let upper = bucket_upper_bound(idx);
            assert_eq!(bucket_index(upper), idx);
            assert_eq!(bucket_index(upper + 1), idx + 1);
        }
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("reqs");
        c.inc();
        c.add(4);
        // Same name, same underlying atomic.
        reg.counter("reqs").inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(reg.gauge("depth").get(), 7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("reqs"), Some(6));
        assert_eq!(snap.gauge("depth"), Some(7));
        assert_eq!(snap.counter("nope"), None);
    }

    #[test]
    fn histogram_percentiles_follow_nearest_rank() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 5050);
        // Nearest-rank p50 of 1..=100 is the 50th value; bucketed
        // resolution may round up by at most 12.5 %.
        let p50 = s.percentile(50.0);
        assert!((50..=57).contains(&p50), "p50={p50}");
        let p99 = s.percentile(99.0);
        assert!((99..=100).contains(&p99), "p99={p99}");
        assert_eq!(s.percentile(100.0), 100);
        // Degenerate cases.
        assert_eq!(HistogramSnapshot::default().percentile(99.0), 0);
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn histograms_merge_bucketwise() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("a");
        let b = reg.histogram("b");
        for v in [1u64, 5, 100] {
            a.record(v);
        }
        for v in [2u64, 100, 9000] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 6);
        assert_eq!(m.sum, 1 + 5 + 100 + 2 + 100 + 9000);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 9000);
        // The shared bucket (value 100 on both sides) folded into one pair.
        let idx100 = bucket_index(100) as u16;
        assert_eq!(
            m.buckets
                .iter()
                .find(|(i, _)| *i == idx100)
                .map(|(_, n)| *n),
            Some(2)
        );
        // Merging into an empty snapshot copies the other side.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&b.snapshot());
        assert_eq!(empty.min, 2);
        assert_eq!(empty.count, 3);
    }
}
