//! Bounded ring-buffer journal of structured lifecycle events.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One structured lifecycle event.  All payload fields are `u64` so the
/// wire encoding stays fixed-width per tag and trivially versionable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The serving process came up with `points` initially indexed.
    ServerStart {
        /// Points in the freshly built base index.
        points: u64,
    },
    /// A persisted snapshot was loaded and is now serving.
    SnapshotLoad {
        /// Points in the loaded index.
        points: u64,
    },
    /// Background compaction began folding the delta into the base.
    CompactionStart {
        /// Epoch id being compacted away.
        epoch: u64,
        /// Buffered delta operations at capture time.
        delta_ops: u64,
    },
    /// Background compaction finished and the new epoch is live.
    CompactionEnd {
        /// New epoch id now serving.
        epoch: u64,
        /// Writer-visible pause while the epoch swapped, microseconds.
        pause_us: u64,
        /// Off-lock rebuild duration, microseconds.
        rebuild_us: u64,
        /// Points in the rebuilt base index.
        points: u64,
    },
    /// Readers were switched to a new epoch.
    EpochSwap {
        /// Epoch id now serving reads.
        epoch: u64,
        /// Operation sequence number at the swap.
        seq: u64,
    },
    /// Admission control shed load (rate-limited by the recorder; the
    /// exact shed totals live in the metrics counters).
    OverloadShed {
        /// Cumulative sheds at the time of this event.
        shed_total: u64,
    },
    /// A client connection was accepted.
    ConnOpen {
        /// Server-assigned connection id.
        conn: u64,
    },
    /// A client connection closed.
    ConnClose {
        /// Server-assigned connection id.
        conn: u64,
    },
    /// The serving process shut down cleanly.
    Shutdown {
        /// Process uptime, microseconds.
        uptime_us: u64,
        /// In-flight requests drained during shutdown.
        drained: u64,
    },
    /// A distributed router stopped routing to one shard replica after a
    /// connection failure and failed over to the remaining replicas (read
    /// capacity degrades; correctness does not).
    ReplicaFailover {
        /// Shard whose replica set degraded.
        shard: u64,
        /// Index of the replica taken out of rotation.
        replica: u64,
    },
    /// An incremental (partial) compaction finished: stale subtrees were
    /// retrained in place and the delta folded, without rebuilding the base
    /// structure.
    PartialCompactionEnd {
        /// New epoch id now serving.
        epoch: u64,
        /// Writer-visible pause while the epoch swapped, microseconds.
        pause_us: u64,
        /// Off-lock partial-rebuild duration, microseconds.
        rebuild_us: u64,
        /// Subtrees retrained by this pass.
        subtrees: u64,
    },
}

impl EventKind {
    /// Stable wire tag for this kind (also the schema documented in
    /// `docs/ARCHITECTURE.md`).
    pub fn tag(&self) -> u8 {
        match self {
            EventKind::ServerStart { .. } => 1,
            EventKind::SnapshotLoad { .. } => 2,
            EventKind::CompactionStart { .. } => 3,
            EventKind::CompactionEnd { .. } => 4,
            EventKind::EpochSwap { .. } => 5,
            EventKind::OverloadShed { .. } => 6,
            EventKind::ConnOpen { .. } => 7,
            EventKind::ConnClose { .. } => 8,
            EventKind::Shutdown { .. } => 9,
            EventKind::PartialCompactionEnd { .. } => 10,
            EventKind::ReplicaFailover { .. } => 11,
        }
    }

    /// Short stable name, e.g. for table rendering.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ServerStart { .. } => "server-start",
            EventKind::SnapshotLoad { .. } => "snapshot-load",
            EventKind::CompactionStart { .. } => "compaction-start",
            EventKind::CompactionEnd { .. } => "compaction-end",
            EventKind::EpochSwap { .. } => "epoch-swap",
            EventKind::OverloadShed { .. } => "overload-shed",
            EventKind::ConnOpen { .. } => "conn-open",
            EventKind::ConnClose { .. } => "conn-close",
            EventKind::Shutdown { .. } => "shutdown",
            EventKind::PartialCompactionEnd { .. } => "partial-compaction-end",
            EventKind::ReplicaFailover { .. } => "replica-failover",
        }
    }

    /// Human-readable one-line description of the payload.
    pub fn describe(&self) -> String {
        match *self {
            EventKind::ServerStart { points } => format!("points={points}"),
            EventKind::SnapshotLoad { points } => format!("points={points}"),
            EventKind::CompactionStart { epoch, delta_ops } => {
                format!("epoch={epoch} delta_ops={delta_ops}")
            }
            EventKind::CompactionEnd {
                epoch,
                pause_us,
                rebuild_us,
                points,
            } => {
                format!("epoch={epoch} pause_us={pause_us} rebuild_us={rebuild_us} points={points}")
            }
            EventKind::EpochSwap { epoch, seq } => format!("epoch={epoch} seq={seq}"),
            EventKind::OverloadShed { shed_total } => format!("shed_total={shed_total}"),
            EventKind::ConnOpen { conn } => format!("conn={conn}"),
            EventKind::ConnClose { conn } => format!("conn={conn}"),
            EventKind::Shutdown { uptime_us, drained } => {
                format!("uptime_us={uptime_us} drained={drained}")
            }
            EventKind::PartialCompactionEnd {
                epoch,
                pause_us,
                rebuild_us,
                subtrees,
            } => {
                format!(
                    "epoch={epoch} pause_us={pause_us} rebuild_us={rebuild_us} subtrees={subtrees}"
                )
            }
            EventKind::ReplicaFailover { shard, replica } => {
                format!("shard={shard} replica={replica}")
            }
        }
    }
}

/// One journal entry: a monotone sequence number, microseconds since the
/// journal was created, and the event payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotone per-journal sequence number, starting at 1.
    pub seq: u64,
    /// Microseconds since journal creation (≈ process start).
    pub at_us: u64,
    /// The structured payload.
    pub kind: EventKind,
}

struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`Event`]s.  Lifecycle events are rare (a few
/// per compaction cycle, one per connection), so a mutex-guarded ring is
/// honest and cheap; when full, the oldest events are evicted and counted
/// in `dropped`.
pub struct EventJournal {
    start: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl EventJournal {
    /// Creates an empty journal retaining at most `capacity` events
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            start: Instant::now(),
            capacity,
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(64)),
                next_seq: 1,
                dropped: 0,
            }),
        }
    }

    /// Microseconds elapsed since the journal (≈ the process) started.
    pub fn uptime_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Appends an event, evicting the oldest if the ring is full.  Returns
    /// the assigned sequence number.
    pub fn record(&self, kind: EventKind) -> u64 {
        let at_us = self.uptime_us();
        let mut ring = self.ring.lock().expect("journal lock poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(Event { seq, at_us, kind });
        seq
    }

    /// A copy of everything currently retained.
    pub fn snapshot(&self) -> EventsSnapshot {
        self.since(0)
    }

    /// A copy of retained events with `seq > after_seq` — lets a poller
    /// fetch only what it has not seen yet.
    pub fn since(&self, after_seq: u64) -> EventsSnapshot {
        let ring = self.ring.lock().expect("journal lock poisoned");
        EventsSnapshot {
            dropped: ring.dropped,
            events: ring
                .events
                .iter()
                .filter(|e| e.seq > after_seq)
                .copied()
                .collect(),
        }
    }
}

/// A point-in-time copy of the journal; the payload the wire `EVENTS`
/// response carries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventsSnapshot {
    /// Events evicted from the ring before this snapshot was taken.
    pub dropped: u64,
    /// Retained events, ascending by `seq`.
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotone_seq() {
        let j = EventJournal::with_capacity(16);
        assert_eq!(j.record(EventKind::ServerStart { points: 5 }), 1);
        assert_eq!(j.record(EventKind::EpochSwap { epoch: 1, seq: 10 }), 2);
        let snap = j.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].seq, 1);
        assert_eq!(snap.events[1].seq, 2);
        assert!(snap.events[0].at_us <= snap.events[1].at_us);
        assert_eq!(snap.events[0].kind, EventKind::ServerStart { points: 5 });
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let j = EventJournal::with_capacity(3);
        for i in 0..5u64 {
            j.record(EventKind::ConnOpen { conn: i });
        }
        let snap = j.snapshot();
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.events.len(), 3);
        // Oldest two evicted: seqs 3, 4, 5 remain.
        assert_eq!(
            snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn since_filters_already_seen_events() {
        let j = EventJournal::with_capacity(8);
        for i in 0..4u64 {
            j.record(EventKind::ConnClose { conn: i });
        }
        let tail = j.since(2);
        assert_eq!(
            tail.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(j.since(100).events.is_empty());
    }

    #[test]
    fn tags_and_names_are_stable() {
        let kinds = [
            EventKind::ServerStart { points: 0 },
            EventKind::SnapshotLoad { points: 0 },
            EventKind::CompactionStart {
                epoch: 0,
                delta_ops: 0,
            },
            EventKind::CompactionEnd {
                epoch: 0,
                pause_us: 0,
                rebuild_us: 0,
                points: 0,
            },
            EventKind::EpochSwap { epoch: 0, seq: 0 },
            EventKind::OverloadShed { shed_total: 0 },
            EventKind::ConnOpen { conn: 0 },
            EventKind::ConnClose { conn: 0 },
            EventKind::Shutdown {
                uptime_us: 0,
                drained: 0,
            },
            EventKind::PartialCompactionEnd {
                epoch: 0,
                pause_us: 0,
                rebuild_us: 0,
                subtrees: 0,
            },
            EventKind::ReplicaFailover {
                shard: 0,
                replica: 0,
            },
        ];
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.tag() as usize, i + 1);
            assert!(!k.name().is_empty());
            assert!(!k.describe().is_empty());
        }
    }
}
