//! Always-on runtime telemetry for the serving stack.
//!
//! The serving layers (`server`, `net`, `engine` via the batch executor's
//! `common::QueryStats` — see the crates that depend on this one) record
//! into three primitives, all designed so the hot path touches only
//! atomics:
//!
//! * [`MetricsRegistry`] — named monotone counters, gauges, and
//!   fixed-bucket log-scale latency [`Histogram`]s.  Registration takes a
//!   short-lived lock once; recording through the returned handles is
//!   lock-free (`AtomicU64` adds).  A [`MetricsSnapshot`] is a consistent
//!   *per-metric* point-in-time read (counters are monotone, so totals read
//!   after writers quiesce are exact).
//! * [`EventJournal`] — a bounded ring buffer of structured lifecycle
//!   [`Event`]s (epoch swaps, compaction start/end with pause duration,
//!   overload sheds, connection open/close, snapshot loads).  Lifecycle
//!   events are rare, so a plain mutex-guarded ring is honest and cheap;
//!   when the ring overflows, the oldest events are dropped and counted.
//! * A versioned binary codec ([`MetricsSnapshot::encode`] /
//!   [`MetricsSnapshot::decode`], and the same pair on
//!   [`EventsSnapshot`]) so snapshots travel over the `net` wire protocol
//!   (`STATS` / `EVENTS` request tags) and decode defensively: element
//!   counts are validated against the bytes present before any allocation,
//!   and every malformed input maps to a typed [`ObsError`].
//!
//! Percentile extraction ([`HistogramSnapshot::percentile`]) follows the
//! same nearest-rank convention as the load generator in
//! `crates/bench/src/netload.rs`, so a histogram p99 scraped over the wire
//! is directly comparable with the client-side measured p99.
//!
//! This crate is hand-rolled and dependency-free by design: the build
//! environment is offline (no `prometheus`, no `tracing`), and sitting at
//! the bottom of the dependency graph lets `server`, `net`, and the CLI all
//! share one [`Telemetry`] instance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod journal;
mod metrics;

pub use codec::{ObsError, OBS_SNAPSHOT_VERSION};
pub use journal::{Event, EventJournal, EventKind, EventsSnapshot};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, HIST_BUCKETS,
};

/// The shared telemetry sink of one serving process: one metrics registry
/// plus one event journal.  The `SpatialServer` owns an
/// `Arc<Telemetry>`; the network layer and the CLI record into (and
/// snapshot from) the same instance, so a single `STATS` scrape sees every
/// layer.
pub struct Telemetry {
    /// Named counters, gauges, and histograms.
    pub metrics: MetricsRegistry,
    /// Structured lifecycle events.
    pub journal: EventJournal,
}

/// Default bound on retained journal events; old events are dropped (and
/// counted) once a process has produced more lifecycle events than this.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

impl Telemetry {
    /// Creates an empty telemetry sink with the default journal capacity.
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates an empty telemetry sink retaining at most `capacity` journal
    /// events.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self {
            metrics: MetricsRegistry::new(),
            journal: EventJournal::with_capacity(capacity),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_bundles_a_registry_and_a_journal() {
        let t = Telemetry::new();
        t.metrics.counter("x").inc();
        t.journal.record(EventKind::ServerStart { points: 10 });
        assert_eq!(t.metrics.snapshot().counter("x"), Some(1));
        assert_eq!(t.journal.snapshot().events.len(), 1);
    }

    #[test]
    fn telemetry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
    }
}
