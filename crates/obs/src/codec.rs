//! Versioned binary codec for telemetry snapshots.
//!
//! The layout mirrors the defensive conventions of the `net` wire module:
//! little-endian fixed-width integers, length-prefixed strings, and element
//! counts validated against the bytes actually present *before* any
//! allocation, so a hostile length field can never trigger a huge reserve.

use crate::journal::{Event, EventKind, EventsSnapshot};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot, HIST_BUCKETS};

/// Version stamp leading every encoded snapshot payload.
pub const OBS_SNAPSHOT_VERSION: u16 = 1;

/// Longest metric name the codec accepts (defensive bound; real names are
/// short dotted paths like `net.latency_us.knn`).
const MAX_NAME_LEN: usize = 256;

/// Decode failures for telemetry snapshot payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// The payload ended before the announced structure was complete.
    Truncated,
    /// The payload announced a snapshot version this build cannot read.
    UnsupportedVersion(u16),
    /// The payload was structurally invalid (bad counts, out-of-range
    /// bucket indices, trailing bytes, ...).
    Corrupt(String),
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Truncated => write!(f, "telemetry snapshot truncated"),
            ObsError::UnsupportedVersion(v) => {
                write!(f, "unsupported telemetry snapshot version {v}")
            }
            ObsError::Corrupt(msg) => write!(f, "corrupt telemetry snapshot: {msg}"),
        }
    }
}

impl std::error::Error for ObsError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&OBS_SNAPSHOT_VERSION.to_le_bytes());
        Self { buf }
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_str(&mut self, s: &str) {
        debug_assert!(s.len() <= MAX_NAME_LEN);
        self.put_u16(s.len().min(MAX_NAME_LEN) as u16);
        self.buf
            .extend_from_slice(&s.as_bytes()[..s.len().min(MAX_NAME_LEN)]);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Result<Self, ObsError> {
        let mut r = Self { buf, pos: 0 };
        let version = r.get_u16()?;
        if version != OBS_SNAPSHOT_VERSION {
            return Err(ObsError::UnsupportedVersion(version));
        }
        Ok(r)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ObsError> {
        if self.remaining() < n {
            return Err(ObsError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, ObsError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16(&mut self) -> Result<u16, ObsError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn get_u32(&mut self) -> Result<u32, ObsError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64(&mut self) -> Result<u64, ObsError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_i64(&mut self) -> Result<i64, ObsError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an element count and validates it against the bytes left,
    /// assuming each element occupies at least `min_elem_bytes`; rejects
    /// impossible counts before the caller allocates.
    fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, ObsError> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(ObsError::Corrupt(format!(
                "element count {n} exceeds available bytes"
            )));
        }
        Ok(n)
    }

    fn get_str(&mut self) -> Result<String, ObsError> {
        let len = self.get_u16()? as usize;
        if len > MAX_NAME_LEN {
            return Err(ObsError::Corrupt(format!("name length {len} too large")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ObsError::Corrupt("metric name is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), ObsError> {
        if self.remaining() != 0 {
            return Err(ObsError::Corrupt(format!(
                "{} trailing bytes after snapshot",
                self.remaining()
            )));
        }
        Ok(())
    }
}

impl MetricsSnapshot {
    /// Encodes the snapshot to the versioned binary payload carried by the
    /// wire `STATS` response.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.counters.len() as u32);
        for (name, v) in &self.counters {
            w.put_str(name);
            w.put_u64(*v);
        }
        w.put_u32(self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            w.put_str(name);
            w.put_i64(*v);
        }
        w.put_u32(self.histograms.len() as u32);
        for (name, h) in &self.histograms {
            w.put_str(name);
            w.put_u64(h.count);
            w.put_u64(h.sum);
            w.put_u64(h.min);
            w.put_u64(h.max);
            w.put_u32(h.buckets.len() as u32);
            for (idx, n) in &h.buckets {
                w.put_u16(*idx);
                w.put_u64(*n);
            }
        }
        w.buf
    }

    /// Decodes a payload produced by [`MetricsSnapshot::encode`],
    /// validating every count against the bytes present and rejecting
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<MetricsSnapshot, ObsError> {
        let mut r = Reader::new(bytes)?;
        // Minimum element sizes: name length prefix (2) + value.
        let n_counters = r.get_len(2 + 8)?;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let name = r.get_str()?;
            let v = r.get_u64()?;
            counters.push((name, v));
        }
        let n_gauges = r.get_len(2 + 8)?;
        let mut gauges = Vec::with_capacity(n_gauges);
        for _ in 0..n_gauges {
            let name = r.get_str()?;
            let v = r.get_i64()?;
            gauges.push((name, v));
        }
        // Histogram header: name prefix (2) + count/sum/min/max (32) +
        // bucket count (4).
        let n_hists = r.get_len(2 + 32 + 4)?;
        let mut histograms = Vec::with_capacity(n_hists);
        for _ in 0..n_hists {
            let name = r.get_str()?;
            let count = r.get_u64()?;
            let sum = r.get_u64()?;
            let min = r.get_u64()?;
            let max = r.get_u64()?;
            let n_buckets = r.get_len(2 + 8)?;
            if n_buckets > HIST_BUCKETS {
                return Err(ObsError::Corrupt(format!(
                    "histogram {name:?} announces {n_buckets} buckets (max {HIST_BUCKETS})"
                )));
            }
            let mut buckets = Vec::with_capacity(n_buckets);
            let mut last_idx: Option<u16> = None;
            for _ in 0..n_buckets {
                let idx = r.get_u16()?;
                let n = r.get_u64()?;
                if idx as usize >= HIST_BUCKETS {
                    return Err(ObsError::Corrupt(format!(
                        "histogram {name:?} bucket index {idx} out of range"
                    )));
                }
                if let Some(last) = last_idx {
                    if idx <= last {
                        return Err(ObsError::Corrupt(format!(
                            "histogram {name:?} bucket indices not strictly ascending"
                        )));
                    }
                }
                last_idx = Some(idx);
                buckets.push((idx, n));
            }
            histograms.push((
                name,
                HistogramSnapshot {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            ));
        }
        r.finish()?;
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

/// Fixed payload width (in `u64`s) for each event tag.
fn event_field_count(tag: u8) -> Option<usize> {
    match tag {
        1 | 2 => Some(1), // ServerStart, SnapshotLoad
        3 => Some(2),     // CompactionStart
        4 => Some(4),     // CompactionEnd
        5 => Some(2),     // EpochSwap
        6 => Some(1),     // OverloadShed
        7 | 8 => Some(1), // ConnOpen, ConnClose
        9 => Some(2),     // Shutdown
        10 => Some(4),    // PartialCompactionEnd
        11 => Some(2),    // ReplicaFailover
        _ => None,
    }
}

fn encode_kind(w: &mut Writer, kind: &EventKind) {
    w.put_u8(kind.tag());
    match *kind {
        EventKind::ServerStart { points } | EventKind::SnapshotLoad { points } => {
            w.put_u64(points);
        }
        EventKind::CompactionStart { epoch, delta_ops } => {
            w.put_u64(epoch);
            w.put_u64(delta_ops);
        }
        EventKind::CompactionEnd {
            epoch,
            pause_us,
            rebuild_us,
            points,
        } => {
            w.put_u64(epoch);
            w.put_u64(pause_us);
            w.put_u64(rebuild_us);
            w.put_u64(points);
        }
        EventKind::EpochSwap { epoch, seq } => {
            w.put_u64(epoch);
            w.put_u64(seq);
        }
        EventKind::OverloadShed { shed_total } => w.put_u64(shed_total),
        EventKind::ConnOpen { conn } | EventKind::ConnClose { conn } => w.put_u64(conn),
        EventKind::PartialCompactionEnd {
            epoch,
            pause_us,
            rebuild_us,
            subtrees,
        } => {
            w.put_u64(epoch);
            w.put_u64(pause_us);
            w.put_u64(rebuild_us);
            w.put_u64(subtrees);
        }
        EventKind::Shutdown { uptime_us, drained } => {
            w.put_u64(uptime_us);
            w.put_u64(drained);
        }
        EventKind::ReplicaFailover { shard, replica } => {
            w.put_u64(shard);
            w.put_u64(replica);
        }
    }
}

fn decode_kind(r: &mut Reader<'_>) -> Result<EventKind, ObsError> {
    let tag = r.get_u8()?;
    let n_fields = event_field_count(tag)
        .ok_or_else(|| ObsError::Corrupt(format!("unknown event tag {tag}")))?;
    let mut f = [0u64; 4];
    for slot in f.iter_mut().take(n_fields) {
        *slot = r.get_u64()?;
    }
    Ok(match tag {
        1 => EventKind::ServerStart { points: f[0] },
        2 => EventKind::SnapshotLoad { points: f[0] },
        3 => EventKind::CompactionStart {
            epoch: f[0],
            delta_ops: f[1],
        },
        4 => EventKind::CompactionEnd {
            epoch: f[0],
            pause_us: f[1],
            rebuild_us: f[2],
            points: f[3],
        },
        5 => EventKind::EpochSwap {
            epoch: f[0],
            seq: f[1],
        },
        6 => EventKind::OverloadShed { shed_total: f[0] },
        7 => EventKind::ConnOpen { conn: f[0] },
        8 => EventKind::ConnClose { conn: f[0] },
        9 => EventKind::Shutdown {
            uptime_us: f[0],
            drained: f[1],
        },
        10 => EventKind::PartialCompactionEnd {
            epoch: f[0],
            pause_us: f[1],
            rebuild_us: f[2],
            subtrees: f[3],
        },
        11 => EventKind::ReplicaFailover {
            shard: f[0],
            replica: f[1],
        },
        _ => unreachable!("tag validated above"),
    })
}

impl EventsSnapshot {
    /// Encodes the snapshot to the versioned binary payload carried by the
    /// wire `EVENTS` response.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.dropped);
        w.put_u32(self.events.len() as u32);
        for e in &self.events {
            w.put_u64(e.seq);
            w.put_u64(e.at_us);
            encode_kind(&mut w, &e.kind);
        }
        w.buf
    }

    /// Decodes a payload produced by [`EventsSnapshot::encode`].
    pub fn decode(bytes: &[u8]) -> Result<EventsSnapshot, ObsError> {
        let mut r = Reader::new(bytes)?;
        let dropped = r.get_u64()?;
        // Minimum event size: seq (8) + at_us (8) + tag (1) + one field (8).
        let n_events = r.get_len(8 + 8 + 1 + 8)?;
        let mut events = Vec::with_capacity(n_events);
        let mut last_seq: Option<u64> = None;
        for _ in 0..n_events {
            let seq = r.get_u64()?;
            let at_us = r.get_u64()?;
            let kind = decode_kind(&mut r)?;
            if let Some(last) = last_seq {
                if seq <= last {
                    return Err(ObsError::Corrupt(
                        "event sequence numbers not strictly ascending".into(),
                    ));
                }
            }
            last_seq = Some(seq);
            events.push(Event { seq, at_us, kind });
        }
        r.finish()?;
        Ok(EventsSnapshot { dropped, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::EventJournal;

    fn sample_metrics() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("net.requests.point").add(42);
        reg.counter("net.shed.knn").add(3);
        reg.gauge("server.delta_ops").set(-7);
        let h = reg.histogram("net.latency_us.window");
        for v in [1u64, 5, 800, 80_000, 1_000_000] {
            h.record(v);
        }
        reg.snapshot()
    }

    fn sample_events() -> EventsSnapshot {
        let j = EventJournal::with_capacity(8);
        j.record(EventKind::ServerStart { points: 100 });
        j.record(EventKind::CompactionStart {
            epoch: 1,
            delta_ops: 50,
        });
        j.record(EventKind::CompactionEnd {
            epoch: 2,
            pause_us: 120,
            rebuild_us: 9000,
            points: 150,
        });
        j.record(EventKind::EpochSwap { epoch: 2, seq: 150 });
        j.record(EventKind::OverloadShed { shed_total: 12 });
        j.record(EventKind::ConnOpen { conn: 1 });
        j.record(EventKind::ConnClose { conn: 1 });
        j.record(EventKind::Shutdown {
            uptime_us: 1_000_000,
            drained: 4,
        });
        j.record(EventKind::ReplicaFailover {
            shard: 1,
            replica: 0,
        });
        j.snapshot()
    }

    #[test]
    fn metrics_roundtrip_is_byte_identical() {
        let snap = sample_metrics();
        let bytes = snap.encode();
        let back = MetricsSnapshot::decode(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn events_roundtrip_is_byte_identical() {
        let snap = sample_events();
        let bytes = snap.encode();
        let back = EventsSnapshot::decode(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn empty_snapshots_roundtrip() {
        let m = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::decode(&m.encode()).unwrap(), m);
        let e = EventsSnapshot::default();
        assert_eq!(EventsSnapshot::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        for bytes in [sample_metrics().encode(), sample_events().encode()] {
            for cut in 0..bytes.len() {
                let m = MetricsSnapshot::decode(&bytes[..cut]);
                let e = EventsSnapshot::decode(&bytes[..cut]);
                assert!(m.is_err() || e.is_err(), "cut={cut} decoded on both paths");
            }
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample_metrics().encode();
        bytes[0] = 0xFF;
        bytes[1] = 0xFF;
        assert!(matches!(
            MetricsSnapshot::decode(&bytes),
            Err(ObsError::UnsupportedVersion(0xFFFF))
        ));
    }

    #[test]
    fn bogus_counts_never_allocate() {
        // Announce u32::MAX counters with only a version header present.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&OBS_SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            MetricsSnapshot::decode(&bytes),
            Err(ObsError::Corrupt(_))
        ));
        // Same for events: dropped + huge count.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&OBS_SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            EventsSnapshot::decode(&bytes),
            Err(ObsError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_bucket_index_is_corrupt() {
        let reg = MetricsRegistry::new();
        reg.histogram("h").record(10);
        let mut snap = reg.snapshot();
        snap.histograms[0].1.buckets[0].0 = HIST_BUCKETS as u16;
        let bytes = snap.encode();
        assert!(matches!(
            MetricsSnapshot::decode(&bytes),
            Err(ObsError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_event_tag_is_corrupt() {
        let j = EventJournal::with_capacity(4);
        j.record(EventKind::ConnOpen { conn: 9 });
        let mut bytes = j.snapshot().encode();
        // Tag byte sits after version(2) + dropped(8) + count(4) + seq(8) + at_us(8).
        let tag_pos = 2 + 8 + 4 + 8 + 8;
        bytes[tag_pos] = 0xEE;
        assert!(matches!(
            EventsSnapshot::decode(&bytes),
            Err(ObsError::Corrupt(msg)) if msg.contains("unknown event tag")
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_metrics().encode();
        bytes.push(0);
        assert!(matches!(
            MetricsSnapshot::decode(&bytes),
            Err(ObsError::Corrupt(msg)) if msg.contains("trailing")
        ));
        let mut bytes = sample_events().encode();
        bytes.push(0);
        assert!(matches!(
            EventsSnapshot::decode(&bytes),
            Err(ObsError::Corrupt(_))
        ));
    }

    #[test]
    fn non_ascending_event_seq_is_corrupt() {
        let j = EventJournal::with_capacity(4);
        j.record(EventKind::ConnOpen { conn: 1 });
        j.record(EventKind::ConnOpen { conn: 2 });
        let mut snap = j.snapshot();
        snap.events[1].seq = snap.events[0].seq;
        assert!(matches!(
            EventsSnapshot::decode(&snap.encode()),
            Err(ObsError::Corrupt(_))
        ));
    }
}
